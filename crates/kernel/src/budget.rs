//! Resource governor for the long-running verification sweeps.
//!
//! Every obligation checker in this workspace is a bounded search over an
//! unbounded space: rewriting may diverge (only fuel stops it), reachability
//! closures grow geometrically, and PDL denotations scale with the universe.
//! A [`Budget`] bounds the work done per request along three axes:
//!
//! - a **wall-clock deadline** measured from a monotonic start instant,
//! - a **node cap** backed by the term arena's chunk accounting
//!   ([`Interner::len`](crate::Interner::len) — the number of hash-consed
//!   nodes allocated so far),
//! - a **relation-memory cap** polled by the relation kernels with the
//!   estimated *bytes* a single governed operation has allocated (8 per
//!   dense `u64` word, 4 per sparse adjacency entry, the container byte
//!   formula for the compressed backend) — one currency across all
//!   backends, so the cap means the same thing whichever representation
//!   the policy picks, and a materialization that would exhaust memory
//!   trips [`Exhaustion`] instead of OOMing, and
//! - a cooperative [`CancelToken`] (an `Arc<AtomicBool>`) that an external
//!   caller may flip at any time.
//!
//! Budgets are polled cooperatively at *deterministic* boundaries —
//! frontier levels in the BFS closures, per-unit stride slots in the
//! embarrassingly parallel sweeps — so that exhaustion produces the same
//! partial report at every thread count: the node axis is checked first
//! (it depends only on serial-order progress, never on the scheduler), and
//! an exhausted sweep reports an [`Exhaustion`] that echoes the *configured*
//! limits rather than observed counters, making reports comparable with
//! `==` across runs.
//!
//! Cheapness matters: `Budget::check` on an unlimited budget is three
//! `Option` tests and no syscall; `Instant::now()` is only consulted when a
//! deadline is actually set.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative cancellation flag, cheaply cloneable and shareable across
/// worker threads. Flipping it does not interrupt anything by itself; the
/// governed sweeps poll it at their serial-order boundaries and wind down
/// with a partial report.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has [`cancel`](Self::cancel) been called on any clone?
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Which budget axis tripped.
///
/// The variants are ordered by check priority: node caps are examined
/// before cancellation and deadlines because the node axis is a pure
/// function of serial-order progress — checking it first keeps exhaustion
/// reports bit-identical across thread counts even when a deadline is also
/// configured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BudgetExceeded {
    /// The hash-consed node count reached the configured cap.
    Nodes,
    /// A governed relation operation reached the configured cap on
    /// estimated backend bytes (dense words × 8 / sparse entries × 4 /
    /// compressed container bytes). Like the deadline this is a safety
    /// axis, not a serial-order one: a parallel sweep may notice it at a
    /// schedule-dependent unit.
    RelMemory,
    /// A [`CancelToken`] was flipped.
    Cancelled,
    /// The wall-clock deadline elapsed.
    Deadline,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetExceeded::Nodes => "node cap reached",
            BudgetExceeded::RelMemory => "relation memory cap reached",
            BudgetExceeded::Cancelled => "cancelled",
            BudgetExceeded::Deadline => "deadline elapsed",
        })
    }
}

/// A shareable work budget. Clones share the same start instant and cancel
/// token, so a single budget built at the top of `verify` governs every
/// stage: once one axis trips, every later stage trips at entry and returns
/// an empty partial report instead of doing more work.
#[derive(Clone, Debug)]
pub struct Budget {
    start: Instant,
    deadline: Option<Duration>,
    max_nodes: Option<usize>,
    max_rel_entries: Option<usize>,
    cancel: Option<CancelToken>,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Budget {
    /// A budget with no limits on any axis. `check` never trips.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget {
            start: Instant::now(),
            deadline: None,
            max_nodes: None,
            max_rel_entries: None,
            cancel: None,
        }
    }

    /// Set a wall-clock deadline, measured from the instant the budget was
    /// constructed (not from this call).
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// Cap the number of hash-consed term nodes (or, on sweeps that do not
    /// allocate terms, the number of completed serial-order units). The cap
    /// trips when the count *reaches* the cap, so a cap of 0 trips before
    /// any work is done.
    #[must_use]
    pub fn with_max_nodes(mut self, nodes: usize) -> Self {
        self.max_nodes = Some(nodes);
        self
    }

    /// Cap the estimated bytes a single governed relation operation may
    /// materialize (each backend reports its own honest estimate: dense
    /// words × 8, sparse entries × 4, compressed container bytes). Polled
    /// by the relation kernels via [`check_rel`](Self::check_rel); trips
    /// when the estimate *reaches* the cap. The cap survives
    /// [`without_node_cap`](Self::without_node_cap), so strided sweeps
    /// keep their memory protection while the node axis stays
    /// caller-enforced. The method name keeps the historical `entries`
    /// wording for compatibility; the unit is bytes, and the documented
    /// environment spelling is `ECLECTIC_MAX_REL_BYTES` (the legacy
    /// `ECLECTIC_MAX_REL_ENTRIES` still works, with a one-time warning).
    #[must_use]
    pub fn with_max_rel_entries(mut self, entries: usize) -> Self {
        self.max_rel_entries = Some(entries);
        self
    }

    /// Attach a cooperative cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// A copy of this budget with the node cap removed — the form handed to
    /// per-worker rewriters inside strided sweeps. The sweep itself enforces
    /// the node axis at serial-order slot boundaries; letting workers also
    /// poll their *private* store sizes would make node-cap stops depend on
    /// the schedule. The relation-memory cap is *kept*: it guards against a
    /// single runaway materialization inside a worker, like the deadline.
    #[must_use]
    pub fn without_node_cap(&self) -> Budget {
        Budget {
            max_nodes: None,
            ..self.clone()
        }
    }

    /// Read `ECLECTIC_DEADLINE_MS` / `ECLECTIC_MAX_NODES` /
    /// `ECLECTIC_MAX_REL_BYTES` from the environment; unset or
    /// unparseable values leave that axis unlimited. The relation-memory
    /// axis also accepts its legacy `ECLECTIC_MAX_REL_ENTRIES` spelling
    /// (same byte unit, one-time deprecation warning) — see
    /// [`crate::envcfg`].
    #[must_use]
    pub fn from_env() -> Self {
        let mut b = Budget::unlimited();
        if let Some(ms) = env_u64("ECLECTIC_DEADLINE_MS") {
            b = b.with_deadline_ms(ms);
        }
        if let Some(n) = env_u64("ECLECTIC_MAX_NODES") {
            b = b.with_max_nodes(n as usize);
        }
        if let Some(n) = crate::envcfg::env_max_rel_bytes() {
            b = b.with_max_rel_entries(n);
        }
        b
    }

    /// The configured deadline in milliseconds, if any.
    #[must_use]
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline.map(|d| d.as_millis() as u64)
    }

    /// The configured node cap, if any.
    #[must_use]
    pub fn max_nodes(&self) -> Option<usize> {
        self.max_nodes
    }

    /// The configured relation-memory cap (estimated bytes), if any.
    #[must_use]
    pub fn max_rel_entries(&self) -> Option<usize> {
        self.max_rel_entries
    }

    /// True when no axis is limited — `check` can never trip.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_nodes.is_none()
            && self.max_rel_entries.is_none()
            && self.cancel.is_none()
    }

    /// Wall-clock time since the budget was constructed.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Poll the budget with the current node count. Returns the first axis
    /// that tripped, in [`BudgetExceeded`] priority order (nodes, then
    /// cancellation, then deadline). `Instant::now()` is only consulted
    /// when a deadline is configured.
    #[must_use]
    pub fn check(&self, nodes: usize) -> Option<BudgetExceeded> {
        if let Some(cap) = self.max_nodes {
            if nodes >= cap {
                return Some(BudgetExceeded::Nodes);
            }
        }
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return Some(BudgetExceeded::Cancelled);
            }
        }
        if let Some(limit) = self.deadline {
            if self.start.elapsed() >= limit {
                return Some(BudgetExceeded::Deadline);
            }
        }
        None
    }

    /// Poll the budget from inside a governed relation operation with the
    /// estimated bytes (dense words × 8 / sparse entries × 4 / compressed
    /// container bytes) that operation has allocated so far. Checks the
    /// relation-memory axis first, then falls through to
    /// [`check`](Self::check) with a zero node count, so the timing axes
    /// (cancellation, deadline) keep their existing poll points.
    #[must_use]
    pub fn check_rel(&self, entries: usize) -> Option<BudgetExceeded> {
        if let Some(cap) = self.max_rel_entries {
            if entries >= cap {
                return Some(BudgetExceeded::RelMemory);
            }
        }
        self.check(0)
    }

    /// Build the [`Exhaustion`] record for a sweep that tripped this
    /// budget. The record echoes the configured limits (not observed
    /// counters), so two runs of the same sweep under the same budget
    /// compare equal regardless of thread count or timing.
    #[must_use]
    pub fn exhaustion(
        &self,
        stage: &'static str,
        reason: BudgetExceeded,
        completed_units: usize,
    ) -> Exhaustion {
        Exhaustion {
            stage,
            reason,
            completed_units,
            max_nodes: self.max_nodes,
            max_rel_entries: self.max_rel_entries,
            deadline_ms: self.deadline_ms(),
        }
    }
}

fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    match raw.trim().parse::<u64>() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("eclectic: ignoring unparseable {key}={raw:?} (expected a non-negative integer)");
            None
        }
    }
}

/// A deterministic partial-progress report attached to a sweep's verdict
/// when its budget tripped. `completed_units` counts fully processed
/// serial-order units (frontier levels, overlap pairs, evaluation subjects,
/// …) — a *prefix* of the serial schedule, so the same report is produced
/// at every thread count for the schedule-independent axes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Exhaustion {
    /// Which sweep ran out of budget (`"rewrite"`, `"explore"`, …).
    pub stage: &'static str,
    /// Which axis tripped.
    pub reason: BudgetExceeded,
    /// How many serial-order units completed before stopping.
    pub completed_units: usize,
    /// The configured node cap, echoed from the budget.
    pub max_nodes: Option<usize>,
    /// The configured relation-memory cap, echoed from the budget.
    pub max_rel_entries: Option<usize>,
    /// The configured deadline in milliseconds, echoed from the budget.
    pub deadline_ms: Option<u64>,
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} exhausted ({}) after {} unit(s)",
            self.stage, self.reason, self.completed_units
        )?;
        if let Some(n) = self.max_nodes {
            write!(f, ", node cap {n}")?;
        }
        if let Some(n) = self.max_rel_entries {
            write!(f, ", relation memory cap {n}")?;
        }
        if let Some(ms) = self.deadline_ms {
            write!(f, ", deadline {ms} ms")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.check(usize::MAX), None);
    }

    #[test]
    fn node_cap_trips_at_cap_inclusive() {
        let b = Budget::unlimited().with_max_nodes(10);
        assert_eq!(b.check(9), None);
        assert_eq!(b.check(10), Some(BudgetExceeded::Nodes));
        assert_eq!(b.check(11), Some(BudgetExceeded::Nodes));
        // A zero cap trips before any work at all.
        let z = Budget::unlimited().with_max_nodes(0);
        assert_eq!(z.check(0), Some(BudgetExceeded::Nodes));
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let tok = CancelToken::new();
        let b = Budget::unlimited().with_cancel(tok.clone());
        let b2 = b.clone();
        assert_eq!(b.check(0), None);
        tok.cancel();
        assert_eq!(b.check(0), Some(BudgetExceeded::Cancelled));
        assert_eq!(b2.check(0), Some(BudgetExceeded::Cancelled));
    }

    #[test]
    fn nodes_axis_wins_over_cancel_and_deadline() {
        let tok = CancelToken::new();
        tok.cancel();
        let b = Budget::unlimited()
            .with_max_nodes(0)
            .with_deadline_ms(0)
            .with_cancel(tok);
        assert_eq!(b.check(0), Some(BudgetExceeded::Nodes));
        assert_eq!(b.check(usize::MAX), Some(BudgetExceeded::Nodes));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let b = Budget::unlimited().with_deadline_ms(0);
        assert_eq!(b.check(0), Some(BudgetExceeded::Deadline));
    }

    #[test]
    fn rel_memory_cap_trips_only_through_check_rel() {
        let b = Budget::unlimited().with_max_rel_entries(100);
        assert!(!b.is_unlimited());
        assert_eq!(b.max_rel_entries(), Some(100));
        // The plain node-count poll never sees the relation axis...
        assert_eq!(b.check(usize::MAX - 1), None);
        // ...but the relation kernels' poll does, inclusively at the cap.
        assert_eq!(b.check_rel(99), None);
        assert_eq!(b.check_rel(100), Some(BudgetExceeded::RelMemory));
        // It survives node-cap stripping (workers keep memory protection).
        assert_eq!(
            b.without_node_cap().check_rel(100),
            Some(BudgetExceeded::RelMemory)
        );
        // And falls through to the timing axes below the cap.
        let tok = CancelToken::new();
        tok.cancel();
        let c = b.with_cancel(tok);
        assert_eq!(c.check_rel(0), Some(BudgetExceeded::Cancelled));
    }

    #[test]
    fn exhaustion_echoes_configured_limits() {
        let b = Budget::unlimited().with_max_nodes(5).with_deadline_ms(250);
        let e = b.exhaustion("explore", BudgetExceeded::Nodes, 3);
        assert_eq!(e.stage, "explore");
        assert_eq!(e.completed_units, 3);
        assert_eq!(e.max_nodes, Some(5));
        assert_eq!(e.deadline_ms, Some(250));
        // Equal regardless of when / on which thread it was built.
        assert_eq!(e, b.clone().exhaustion("explore", BudgetExceeded::Nodes, 3));
        let shown = e.to_string();
        assert!(shown.contains("explore"), "{shown}");
        assert!(shown.contains("node cap 5"), "{shown}");
    }
}
