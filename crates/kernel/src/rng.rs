//! Deterministic pseudo-random number generation for the scenario factory
//! and the differential fuzzer.
//!
//! Every crate that derives random artefacts from a fuzz seed (grammar-driven
//! name derivation in `rpr`, random structured descriptions in `algebraic`,
//! randomized refinement maps in `refine`, the `core` fuzz driver itself)
//! shares this one generator, so a single `u64` seed pins the *entire*
//! derived domain: replaying a seed replays the specification bit-for-bit,
//! which is what makes shrunk divergences reproducible as corpus fixtures.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
//! 64-bit counter passed through a mixing permutation. It is *not*
//! cryptographic — it is chosen for its guaranteed full period, its
//! stateless seeding (every seed, including 0, is equally good), and its
//! trivially portable arithmetic (wrapping mul/xor-shift only, no
//! platform-dependent behaviour).

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`. Distinct seeds give independent
    /// streams; the same seed replays the same stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniformly distributed index in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        // Multiply-shift range reduction; the modulo bias of `% n` would be
        // harmless at fuzz scale, but this is just as cheap and unbiased
        // enough for n ≪ 2^32.
        (self.next_u64() % n as u64) as usize
    }

    /// A uniformly distributed value in `lo..=hi` (callers keep `lo <= hi`).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi.saturating_sub(lo) + 1)
    }

    /// A coin flip that lands true with probability `num`/`den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den.max(1)) < num
    }

    /// A fresh generator split off this one's stream. The child's stream is
    /// independent of the parent's *future* draws, so derivation stages can
    /// be reordered without perturbing each other's randomness.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0x5851_f42d_4c95_7f2d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range_and_zero_is_safe() {
        let mut r = Rng::new(7);
        for n in 1..20 {
            for _ in 0..50 {
                assert!(r.below(n) < n);
            }
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.range(3, 3), 3);
        for _ in 0..50 {
            let v = r.range(2, 5);
            assert!((2..=5).contains(&v));
        }
    }

    #[test]
    fn forked_streams_diverge_from_parent() {
        let mut parent = Rng::new(9);
        let mut child = parent.fork();
        let (p, c) = (parent.next_u64(), child.next_u64());
        assert_ne!(p, c);
        // Replaying the same fork point replays the same child stream.
        let mut parent2 = Rng::new(9);
        let mut child2 = parent2.fork();
        assert_eq!(child2.next_u64(), c);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = Rng::new(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
        assert_ne!(draws[0], draws[1]);
    }
}
