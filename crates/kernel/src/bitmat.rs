//! Dense square bit matrices — the word-parallel substrate for binary
//! relations over finite universes.
//!
//! A [`BitMatrix`] stores an `n × n` boolean matrix row-major in `u64`
//! blocks: `words_per_row = ⌈n / 64⌉`, bit `c` of row `r` at word
//! `r * words_per_row + c / 64`. All set-algebraic operations become word
//! operations (64 pairs per instruction): union is `OR`, intersection is
//! `AND`, relational composition an OR-gather of rows, and the
//! reflexive-transitive closure a per-source BFS whose frontier discovery
//! is `new = row & !seen` per word.
//!
//! # Iteration order
//!
//! [`BitMatrix::iter`] and [`BitMatrix::iter_row`] scan rows in ascending
//! order and bits within a row least-significant first, so `(r, c)` pairs
//! stream in exactly the ascending lexicographic order a
//! `BTreeSet<(usize, usize)>` would produce. Higher layers rely on this to
//! keep reports bit-identical with the set-based representation this
//! module replaced.
//!
//! # Parallelism and budgets
//!
//! `compose` and the closure fan rows across [`effective_workers`] worker
//! threads in contiguous chunks; each output row depends only on the
//! input matrix, so the result is bit-identical at every worker count.
//! The `*_governed` variants poll a [`Budget`] every [`ROW_POLL_STRIDE`]
//! rows and abort with the tripped axis. They are meant to be polled on
//! the *timing* axes only (deadline, cancellation): callers enforce any
//! node cap at their own serial-order unit boundaries and hand workers
//! [`Budget::without_node_cap`], exactly like the strided verification
//! sweeps.

use crate::budget::{Budget, BudgetExceeded};
use crate::envcfg::{effective_workers, par_min_dim};

/// Rows processed between two budget polls inside a governed sweep: often
/// enough that a deadline is noticed quickly, rare enough that
/// `Instant::now()` stays invisible in profiles.
pub const ROW_POLL_STRIDE: usize = 64;

/// One row-range job handed to the scheduler by the parallel relation
/// sweeps: process rows, succeed or report the tripped budget axis.
type RowTask<'a> = Box<dyn FnOnce() -> Result<(), BudgetExceeded> + Send + 'a>;

/// Rows per scheduler task for the parallel row sweeps: fine enough that
/// idle pool workers can steal (≈4 tasks per worker), coarse enough that
/// one task amortizes its dispatch (at least [`ROW_POLL_STRIDE`] rows).
pub(crate) fn row_task_chunk(n: usize, workers: usize) -> usize {
    n.div_ceil(workers.max(1) * 4).max(ROW_POLL_STRIDE)
}

/// A dense square bit matrix over `0..n`, row-major in `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitMatrix {
    n: usize,
    wpr: usize,
    bits: Vec<u64>,
}

/// Ascending iterator over the set bits of one `u64` word.
struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl BitMatrix {
    /// The empty (all-zero) matrix of dimension `n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let wpr = n.div_ceil(64);
        BitMatrix {
            n,
            wpr,
            bits: vec![0u64; n * wpr],
        }
    }

    /// The identity matrix of dimension `n` (a diagonal fill).
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::new(n);
        for i in 0..n {
            m.bits[i * m.wpr + (i >> 6)] |= 1u64 << (i & 63);
        }
        m
    }

    /// The dimension `n`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Words per row (`⌈n / 64⌉`).
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.wpr
    }

    /// Total allocated `u64` words (`n · words_per_row`). The dense
    /// backend reports `8 ×` this to [`Budget::check_rel`] — every
    /// backend accounts in estimated bytes.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.bits.len()
    }

    /// Whether bit `(r, c)` is set.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of range.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.n && c < self.n);
        self.bits[r * self.wpr + (c >> 6)] & (1u64 << (c & 63)) != 0
    }

    /// Sets bit `(r, c)`; returns whether it was previously clear.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of range.
    pub fn set(&mut self, r: usize, c: usize) -> bool {
        assert!(r < self.n && c < self.n);
        let w = &mut self.bits[r * self.wpr + (c >> 6)];
        let mask = 1u64 << (c & 63);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Row `r` as a word slice.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &[u64] {
        assert!(r < self.n);
        &self.bits[r * self.wpr..(r + 1) * self.wpr]
    }

    /// Row `r` as a mutable word slice.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        assert!(r < self.n);
        &mut self.bits[r * self.wpr..(r + 1) * self.wpr]
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Word-wise `OR` of `other` into `self`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn or_assign(&mut self, other: &BitMatrix) {
        assert_eq!(self.n, other.n, "BitMatrix dimension mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Word-wise `AND` of `other` into `self`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn and_assign(&mut self, other: &BitMatrix) {
        assert_eq!(self.n, other.n, "BitMatrix dimension mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// Ascending iterator over the set columns of row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn iter_row(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(r).iter().enumerate().flat_map(|(k, &w)| BitIter {
            word: w,
            base: k << 6,
        })
    }

    /// Ascending lexicographic iterator over all set `(r, c)` pairs — the
    /// `BTreeSet<(usize, usize)>` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |r| self.iter_row(r).map(move |c| (r, c)))
    }

    /// A copy resized to dimension `d ≥ n` (rows re-laid out; new rows and
    /// columns are zero).
    ///
    /// # Panics
    /// Panics if `d < n` (shrinking would silently drop pairs).
    #[must_use]
    pub fn resized(&self, d: usize) -> BitMatrix {
        assert!(d >= self.n, "BitMatrix cannot shrink");
        let mut out = BitMatrix::new(d);
        for r in 0..self.n {
            out.bits[r * out.wpr..r * out.wpr + self.wpr].copy_from_slice(self.row(r));
        }
        out
    }

    /// Relational composition (`self` applied first): output row `a` is the
    /// OR of `other`'s rows `b` over every set bit `b` of `self`'s row `a`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn compose(&self, other: &BitMatrix) -> BitMatrix {
        self.compose_threads(other, 1)
    }

    /// As [`compose`](Self::compose), fanning output rows across
    /// [`effective_workers`]`(threads)` workers (bit-identical at every
    /// worker count).
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn compose_threads(&self, other: &BitMatrix, threads: usize) -> BitMatrix {
        match self.compose_governed(other, &Budget::unlimited(), threads) {
            Ok(m) => m,
            Err(_) => unreachable!("unlimited budget never trips"),
        }
    }

    /// As [`compose_threads`](Self::compose_threads), polling `budget`
    /// every [`ROW_POLL_STRIDE`] rows. Intended for timing axes (deadline /
    /// cancellation): hand workers [`Budget::without_node_cap`] and enforce
    /// node caps at serial-order unit boundaries in the caller.
    ///
    /// # Errors
    /// Returns the tripped axis; the partially composed matrix is
    /// discarded.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn compose_governed(
        &self,
        other: &BitMatrix,
        budget: &Budget,
        threads: usize,
    ) -> Result<BitMatrix, BudgetExceeded> {
        assert_eq!(self.n, other.n, "BitMatrix dimension mismatch");
        let n = self.n;
        let wpr = self.wpr;
        // Dense output cost is fixed at allocation time: guard the
        // relation-memory axis with the `n · wpr` words' byte size before
        // committing them.
        if let Some(reason) = budget.check_rel(n * wpr * 8) {
            return Err(reason);
        }
        let mut out = BitMatrix::new(n);
        if n == 0 {
            return Ok(out);
        }
        let compose_rows = |first: usize, rows: &mut [u64]| -> Result<(), BudgetExceeded> {
            for (i, orow) in rows.chunks_mut(wpr).enumerate() {
                if i % ROW_POLL_STRIDE == 0 {
                    if let Some(reason) = budget.check(0) {
                        return Err(reason);
                    }
                }
                let a = first + i;
                for (k, &w) in self.row(a).iter().enumerate() {
                    let mut bits = w;
                    while bits != 0 {
                        let b = (k << 6) + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        for (o, &src) in orow.iter_mut().zip(other.row(b)) {
                            *o |= src;
                        }
                    }
                }
            }
            Ok(())
        };
        let workers = effective_workers(threads).min(n.max(1));
        if workers <= 1 || n < par_min_dim() {
            compose_rows(0, &mut out.bits)?;
        } else {
            let chunk = row_task_chunk(n, workers);
            let compose_rows = &compose_rows;
            let tasks: Vec<RowTask<'_>> = out
                .bits
                .chunks_mut(chunk * wpr)
                .enumerate()
                .map(|(c, rows)| {
                    let f: RowTask<'_> = Box::new(move || compose_rows(c * chunk, rows));
                    f
                })
                .collect();
            for o in crate::sched::run_tasks(workers, tasks) {
                o?;
            }
        }
        Ok(out)
    }

    /// The reflexive-transitive closure: row `r` of the result holds every
    /// node reachable from `r` (including `r` itself), computed by one
    /// word-parallel BFS per source row.
    #[must_use]
    pub fn closure_reflexive_transitive(&self, threads: usize) -> BitMatrix {
        match self.closure_governed(&Budget::unlimited(), threads) {
            Ok(m) => m,
            Err(_) => unreachable!("unlimited budget never trips"),
        }
    }

    /// As [`closure_reflexive_transitive`](Self::closure_reflexive_transitive),
    /// polling `budget` every [`ROW_POLL_STRIDE`] source rows (timing axes
    /// only — see [`compose_governed`](Self::compose_governed)).
    ///
    /// # Errors
    /// Returns the tripped axis; the partial closure is discarded.
    pub fn closure_governed(
        &self,
        budget: &Budget,
        threads: usize,
    ) -> Result<BitMatrix, BudgetExceeded> {
        let n = self.n;
        let wpr = self.wpr;
        // Same allocation-time relation-memory guard as `compose_governed`.
        if let Some(reason) = budget.check_rel(n * wpr * 8) {
            return Err(reason);
        }
        let mut out = BitMatrix::new(n);
        if n == 0 {
            return Ok(out);
        }
        let close_rows = |first: usize, rows: &mut [u64]| -> Result<(), BudgetExceeded> {
            let mut stack: Vec<usize> = Vec::new();
            for (i, seen) in rows.chunks_mut(wpr).enumerate() {
                if i % ROW_POLL_STRIDE == 0 {
                    if let Some(reason) = budget.check(0) {
                        return Err(reason);
                    }
                }
                let src = first + i;
                seen[src >> 6] |= 1u64 << (src & 63);
                stack.clear();
                stack.push(src);
                while let Some(x) = stack.pop() {
                    for (k, &w) in self.row(x).iter().enumerate() {
                        let mut new = w & !seen[k];
                        if new != 0 {
                            seen[k] |= new;
                            while new != 0 {
                                stack.push((k << 6) + new.trailing_zeros() as usize);
                                new &= new - 1;
                            }
                        }
                    }
                }
            }
            Ok(())
        };
        let workers = effective_workers(threads).min(n.max(1));
        if workers <= 1 || n < par_min_dim() {
            close_rows(0, &mut out.bits)?;
        } else {
            let chunk = row_task_chunk(n, workers);
            let close_rows = &close_rows;
            let tasks: Vec<RowTask<'_>> = out
                .bits
                .chunks_mut(chunk * wpr)
                .enumerate()
                .map(|(c, rows)| {
                    let f: RowTask<'_> = Box::new(move || close_rows(c * chunk, rows));
                    f
                })
                .collect();
            for o in crate::sched::run_tasks(workers, tasks) {
                o?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> BitMatrix {
        let mut m = BitMatrix::new(n);
        for &(a, b) in pairs {
            m.set(a, b);
        }
        m
    }

    #[test]
    fn set_get_iter_ascending() {
        let mut m = BitMatrix::new(130);
        assert!(m.set(129, 1));
        assert!(m.set(0, 65));
        assert!(m.set(0, 2));
        assert!(!m.set(0, 2));
        assert!(m.get(0, 65) && !m.get(65, 0));
        assert_eq!(
            m.iter().collect::<Vec<_>>(),
            vec![(0, 2), (0, 65), (129, 1)]
        );
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn identity_and_or_and() {
        let id = BitMatrix::identity(70);
        assert_eq!(id.count_ones(), 70);
        assert!(id.get(69, 69) && !id.get(69, 68));
        let mut a = from_pairs(70, &[(0, 1), (2, 3)]);
        let b = from_pairs(70, &[(0, 1), (4, 5)]);
        a.or_assign(&b);
        assert_eq!(a.count_ones(), 3);
        a.and_assign(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(0, 1), (4, 5)]);
    }

    #[test]
    fn compose_gathers_rows() {
        let r = from_pairs(80, &[(0, 64), (1, 2)]);
        let s = from_pairs(80, &[(64, 3), (64, 79), (2, 0)]);
        let rs = r.compose(&s);
        assert_eq!(
            rs.iter().collect::<Vec<_>>(),
            vec![(0, 3), (0, 79), (1, 0)]
        );
        let id = BitMatrix::identity(80);
        assert_eq!(r.compose(&id), r);
        assert_eq!(id.compose(&r), r);
    }

    #[test]
    fn closure_reaches_and_reflects() {
        let m = from_pairs(300, &[(0, 1), (1, 2), (2, 0), (5, 299)]);
        let c = m.closure_reflexive_transitive(1);
        for i in [0, 1, 2] {
            for j in [0, 1, 2] {
                assert!(c.get(i, j));
            }
        }
        assert!(c.get(5, 5) && c.get(5, 299) && c.get(299, 299));
        assert!(!c.get(299, 5) && !c.get(3, 2));
        // Every worker count reproduces the serial closure bit-for-bit.
        for threads in [2, 4, 8] {
            assert_eq!(m.closure_reflexive_transitive(threads), c);
        }
        assert_eq!(m.compose_threads(&c, 4), m.compose(&c));
    }

    #[test]
    fn governed_ops_trip_on_timing_axes() {
        let m = from_pairs(64, &[(0, 1)]);
        let cancelled = {
            let tok = crate::budget::CancelToken::new();
            tok.cancel();
            Budget::unlimited().with_cancel(tok)
        };
        assert_eq!(
            m.compose_governed(&m, &cancelled, 1),
            Err(BudgetExceeded::Cancelled)
        );
        assert_eq!(
            m.closure_governed(&cancelled, 2),
            Err(BudgetExceeded::Cancelled)
        );
        assert!(m.compose_governed(&m, &Budget::unlimited(), 2).is_ok());
    }

    #[test]
    fn governed_ops_guard_relation_memory_at_entry() {
        let m = from_pairs(64, &[(0, 1)]);
        // 64 × 1 = 64 output words = 512 bytes; a 32-byte cap trips before
        // allocation, and survives node-cap stripping (separate axis).
        let capped = Budget::unlimited().with_max_rel_entries(32);
        assert_eq!(
            m.compose_governed(&m, &capped, 1),
            Err(BudgetExceeded::RelMemory)
        );
        assert_eq!(
            m.closure_governed(&capped.without_node_cap(), 2),
            Err(BudgetExceeded::RelMemory)
        );
        let roomy = Budget::unlimited().with_max_rel_entries(10_000);
        assert!(m.compose_governed(&m, &roomy, 1).is_ok());
    }

    #[test]
    fn resize_preserves_pairs() {
        let m = from_pairs(3, &[(0, 2), (2, 1)]);
        let big = m.resized(200);
        assert_eq!(big.iter().collect::<Vec<_>>(), m.iter().collect::<Vec<_>>());
        assert_eq!(big.dim(), 200);
    }
}
