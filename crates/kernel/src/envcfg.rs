//! Consolidated environment configuration for the kernel.
//!
//! Every tunable the workspace reads from the process environment parses
//! here, through one warn-once discipline: each variable is read once per
//! process (`OnceLock`), an unparseable value falls back to the documented
//! default and emits a single stderr warning naming the bad value —
//! silently ignoring a typo'd tunable is a miserable thing to debug.
//!
//! | variable                           | values                               | default        |
//! |------------------------------------|--------------------------------------|----------------|
//! | `ECLECTIC_THREADS`                 | count, `0`/`auto`                    | 1 (serial)     |
//! | `ECLECTIC_REL_BACKEND`             | `dense`/`sparse`/`compressed`/`auto` | auto crossover |
//! | `ECLECTIC_PAR_MIN_DIM`             | non-negative integer                 | 256            |
//! | `ECLECTIC_REL_COMPRESSED_MIN_DIM`  | non-negative integer                 | 65536          |
//! | `ECLECTIC_SCHED`                   | `steal`/`scoped`                     | steal          |
//! | `ECLECTIC_SCHED_PRIORITY`          | `on`/`off`                           | on             |
//! | `ECLECTIC_MAX_REL_BYTES`           | byte count (estimated)               | unlimited      |
//!
//! `ECLECTIC_MAX_REL_BYTES` also accepts its historical spelling
//! `ECLECTIC_MAX_REL_ENTRIES` (the unit changed from entries to estimated
//! bytes when the relation-memory axis became backend-spanning, but the
//! name was kept for a release). The legacy name still works and warns
//! once; the documented spelling wins when both are set.
//!
//! The parse functions are split from the environment reads so the full
//! parse tables are unit-testable without touching the process
//! environment (see the parse-table tests at the bottom).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

// ---------------------------------------------------------------------------
// ECLECTIC_THREADS
// ---------------------------------------------------------------------------

/// How one `ECLECTIC_THREADS` value parses. Split out of [`env_threads`] so
/// the full parse table is unit-testable without touching the process
/// environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ThreadsSpec {
    /// Variable unset: serial, the safe default for unit tests.
    Unset,
    /// `0` or `auto`: use [`std::thread::available_parallelism`].
    Auto,
    /// An explicit positive count.
    Count(usize),
    /// Unparseable (e.g. `"abc"`, `"-2"`): fall back to serial, but warn.
    Invalid,
}

pub(crate) fn parse_threads(value: Option<&str>) -> ThreadsSpec {
    let Some(raw) = value else {
        return ThreadsSpec::Unset;
    };
    let s = raw.trim();
    if s == "0" || s.eq_ignore_ascii_case("auto") {
        return ThreadsSpec::Auto;
    }
    match s.parse::<usize>() {
        Ok(n) => ThreadsSpec::Count(n.max(1)),
        Err(_) => ThreadsSpec::Invalid,
    }
}

/// The worker-thread count selected by the `ECLECTIC_THREADS` environment
/// variable: unset means `1` (serial — the safe default for the many small
/// explorations in unit tests), `0` or `auto` means
/// [`std::thread::available_parallelism`], and any other `N` means `N`.
///
/// An unparseable value (e.g. `"abc"`, `"-2"`) also falls back to `1`, but
/// emits a one-time warning on stderr naming the bad value.
#[must_use]
pub fn env_threads() -> usize {
    let value = std::env::var("ECLECTIC_THREADS").ok();
    match parse_threads(value.as_deref()) {
        ThreadsSpec::Unset => 1,
        ThreadsSpec::Auto => {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
        ThreadsSpec::Count(n) => n,
        ThreadsSpec::Invalid => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "eclectic: unparseable ECLECTIC_THREADS={:?}; expected a count, `0` or \
                     `auto` — falling back to 1 worker (serial)",
                    value.as_deref().unwrap_or_default()
                );
            });
            1
        }
    }
}

/// Process-global worker-cap override installed by [`force_worker_cap`]:
/// `0` means "no override, cap at host parallelism".
static WORKER_CAP: AtomicUsize = AtomicUsize::new(0);

/// Serializes holders of [`force_worker_cap`] guards — the override is
/// process-global, so concurrent forced-cap tests must exclude each other.
static WORKER_CAP_LOCK: Mutex<()> = Mutex::new(());

/// RAII guard for a forced worker cap; restores the host-parallelism cap
/// on drop. Holding it excludes every other forced-cap section in the
/// process.
pub struct WorkerCapGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for WorkerCapGuard {
    fn drop(&mut self) {
        WORKER_CAP.store(0, Ordering::SeqCst);
    }
}

/// Forces [`effective_workers`] to cap at `cap` instead of the host's
/// available parallelism for the lifetime of the returned guard.
///
/// Intended for determinism tests and scheduler benches that must spawn a
/// specific worker count even on hosts with fewer cores (a single-core CI
/// runner would otherwise silently serialize every "8-thread" case and
/// test nothing). `usize::MAX` means "never cap".
#[must_use]
pub fn force_worker_cap(cap: usize) -> WorkerCapGuard {
    let lock = WORKER_CAP_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    WORKER_CAP.store(cap.max(1), Ordering::SeqCst);
    WorkerCapGuard { _lock: lock }
}

/// Caps a requested worker count at the host's available parallelism (or
/// at a [`force_worker_cap`] override when one is installed).
///
/// Every parallel sweep in this workspace is bit-identical across worker
/// counts (the merges replay serial order), so shrinking the worker pool
/// can never change a result — it only avoids oversubscription: extra
/// workers on a saturated host add spawn cost and split the per-worker
/// memo for zero concurrency.
#[must_use]
pub fn effective_workers(requested: usize) -> usize {
    let cap = match WORKER_CAP.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        forced => forced,
    };
    requested.min(cap).max(1)
}

// ---------------------------------------------------------------------------
// ECLECTIC_PAR_MIN_DIM
// ---------------------------------------------------------------------------

/// Default minimum dimension before relation compose/closure fan out to
/// worker threads; below this the task overhead dwarfs the row work.
pub(crate) const PAR_MIN_DIM_DEFAULT: usize = 256;

/// How one `ECLECTIC_PAR_MIN_DIM` value parses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ParMinDimSpec {
    /// Variable unset: use [`PAR_MIN_DIM_DEFAULT`].
    Unset,
    /// A parsed dimension floor (0 means "always fan out").
    Dim(usize),
    /// Unparseable: fall back to the default, but warn.
    Invalid,
}

pub(crate) fn parse_par_min_dim(value: Option<&str>) -> ParMinDimSpec {
    let Some(raw) = value else {
        return ParMinDimSpec::Unset;
    };
    match raw.trim().parse::<usize>() {
        Ok(d) => ParMinDimSpec::Dim(d),
        Err(_) => ParMinDimSpec::Invalid,
    }
}

/// The effective parallelism dimension floor: `ECLECTIC_PAR_MIN_DIM` if
/// set and parseable, else [`PAR_MIN_DIM_DEFAULT`].
pub(crate) fn par_min_dim() -> usize {
    static DIM: OnceLock<usize> = OnceLock::new();
    *DIM.get_or_init(|| {
        let value = std::env::var("ECLECTIC_PAR_MIN_DIM").ok();
        match parse_par_min_dim(value.as_deref()) {
            ParMinDimSpec::Unset => PAR_MIN_DIM_DEFAULT,
            ParMinDimSpec::Dim(d) => d,
            ParMinDimSpec::Invalid => {
                eprintln!(
                    "eclectic: unparseable ECLECTIC_PAR_MIN_DIM={:?}; expected a \
                     non-negative integer — falling back to {PAR_MIN_DIM_DEFAULT}",
                    value.as_deref().unwrap_or_default()
                );
                PAR_MIN_DIM_DEFAULT
            }
        }
    })
}

// ---------------------------------------------------------------------------
// ECLECTIC_REL_COMPRESSED_MIN_DIM
// ---------------------------------------------------------------------------

/// Default minimum dimension at which the `auto` policy prefers the
/// compressed chunk-container backend over plain sorted adjacency: one
/// full 2¹⁶ chunk. Below this every row fits one chunk and the sparse
/// backend's flat `u32` rows have less per-row overhead; at and above it
/// closures of block-structured transition relations compress entries
/// into runs (see `BENCH_rel.json` for the measured capstone).
pub(crate) const REL_COMPRESSED_MIN_DIM_DEFAULT: usize = 1 << 16;

/// How one `ECLECTIC_REL_COMPRESSED_MIN_DIM` value parses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CompressedMinDimSpec {
    /// Variable unset: use [`REL_COMPRESSED_MIN_DIM_DEFAULT`].
    Unset,
    /// A parsed dimension floor (0 means "always prefer compressed over
    /// sparse").
    Dim(usize),
    /// Unparseable: fall back to the default, but warn.
    Invalid,
}

pub(crate) fn parse_rel_compressed_min_dim(value: Option<&str>) -> CompressedMinDimSpec {
    let Some(raw) = value else {
        return CompressedMinDimSpec::Unset;
    };
    match raw.trim().parse::<usize>() {
        Ok(d) => CompressedMinDimSpec::Dim(d),
        Err(_) => CompressedMinDimSpec::Invalid,
    }
}

/// The effective compressed-crossover floor for the `auto` relation
/// policy: `ECLECTIC_REL_COMPRESSED_MIN_DIM` if set and parseable, else
/// [`REL_COMPRESSED_MIN_DIM_DEFAULT`].
pub(crate) fn rel_compressed_min_dim() -> usize {
    static DIM: OnceLock<usize> = OnceLock::new();
    *DIM.get_or_init(|| {
        let value = std::env::var("ECLECTIC_REL_COMPRESSED_MIN_DIM").ok();
        match parse_rel_compressed_min_dim(value.as_deref()) {
            CompressedMinDimSpec::Unset => REL_COMPRESSED_MIN_DIM_DEFAULT,
            CompressedMinDimSpec::Dim(d) => d,
            CompressedMinDimSpec::Invalid => {
                eprintln!(
                    "eclectic: unparseable ECLECTIC_REL_COMPRESSED_MIN_DIM={:?}; expected a \
                     non-negative integer — falling back to {REL_COMPRESSED_MIN_DIM_DEFAULT}",
                    value.as_deref().unwrap_or_default()
                );
                REL_COMPRESSED_MIN_DIM_DEFAULT
            }
        }
    })
}

// ---------------------------------------------------------------------------
// ECLECTIC_REL_BACKEND
// ---------------------------------------------------------------------------

/// How one `ECLECTIC_REL_BACKEND` value parses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BackendSpec {
    /// Variable unset: the automatic crossover policy.
    Unset,
    /// `auto`: the automatic crossover policy, explicitly.
    Auto,
    /// `dense`: every relation on the bit-matrix backend.
    Dense,
    /// `sparse`: every relation on the adjacency backend.
    Sparse,
    /// `compressed`: every relation on the chunk-container backend.
    Compressed,
    /// Unparseable: fall back to `auto`, but warn.
    Invalid,
}

pub(crate) fn parse_rel_backend(value: Option<&str>) -> BackendSpec {
    let Some(raw) = value else {
        return BackendSpec::Unset;
    };
    let s = raw.trim();
    if s.eq_ignore_ascii_case("auto") {
        BackendSpec::Auto
    } else if s.eq_ignore_ascii_case("dense") {
        BackendSpec::Dense
    } else if s.eq_ignore_ascii_case("sparse") {
        BackendSpec::Sparse
    } else if s.eq_ignore_ascii_case("compressed") {
        BackendSpec::Compressed
    } else {
        BackendSpec::Invalid
    }
}

/// The environment-selected relation backend policy, read once per process
/// (relations are constructed on hot paths; `std::env::var` takes a lock).
pub(crate) fn env_rel_backend() -> BackendSpec {
    static SPEC: OnceLock<BackendSpec> = OnceLock::new();
    *SPEC.get_or_init(|| {
        let value = std::env::var("ECLECTIC_REL_BACKEND").ok();
        let spec = parse_rel_backend(value.as_deref());
        if spec == BackendSpec::Invalid {
            eprintln!(
                "eclectic: unparseable ECLECTIC_REL_BACKEND={:?}; expected `dense`, `sparse`, \
                 `compressed` or `auto` — falling back to the automatic crossover",
                value.as_deref().unwrap_or_default()
            );
        }
        spec
    })
}

// ---------------------------------------------------------------------------
// ECLECTIC_MAX_REL_BYTES (legacy spelling: ECLECTIC_MAX_REL_ENTRIES)
// ---------------------------------------------------------------------------

/// How the pair of relation-memory variables parses. The documented
/// spelling `ECLECTIC_MAX_REL_BYTES` wins over the legacy
/// `ECLECTIC_MAX_REL_ENTRIES` when both are set; the legacy name alone
/// still works (and the env reader warns once about the rename).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RelBytesSpec {
    /// Neither variable set: the axis stays unlimited.
    Unset,
    /// A byte cap from the documented `ECLECTIC_MAX_REL_BYTES` spelling.
    Bytes(usize),
    /// A byte cap from the legacy `ECLECTIC_MAX_REL_ENTRIES` spelling
    /// (the unit is bytes there too — PR 9 changed the unit but kept the
    /// name; only the spelling is deprecated).
    LegacyBytes(usize),
    /// The winning variable is set but unparseable: leave the axis
    /// unlimited, but warn.
    Invalid,
}

pub(crate) fn parse_max_rel_bytes(
    primary: Option<&str>,
    legacy: Option<&str>,
) -> RelBytesSpec {
    if let Some(raw) = primary {
        return match raw.trim().parse::<usize>() {
            Ok(n) => RelBytesSpec::Bytes(n),
            Err(_) => RelBytesSpec::Invalid,
        };
    }
    match legacy {
        None => RelBytesSpec::Unset,
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) => RelBytesSpec::LegacyBytes(n),
            Err(_) => RelBytesSpec::Invalid,
        },
    }
}

/// The environment-selected relation-memory cap in estimated bytes, if
/// any: `ECLECTIC_MAX_REL_BYTES`, falling back to the legacy
/// `ECLECTIC_MAX_REL_ENTRIES` spelling with a one-time deprecation
/// warning. Read once per process.
pub(crate) fn env_max_rel_bytes() -> Option<usize> {
    static CAP: OnceLock<Option<usize>> = OnceLock::new();
    *CAP.get_or_init(|| {
        let primary = std::env::var("ECLECTIC_MAX_REL_BYTES").ok();
        let legacy = std::env::var("ECLECTIC_MAX_REL_ENTRIES").ok();
        match parse_max_rel_bytes(primary.as_deref(), legacy.as_deref()) {
            RelBytesSpec::Unset => None,
            RelBytesSpec::Bytes(n) => Some(n),
            RelBytesSpec::LegacyBytes(n) => {
                eprintln!(
                    "eclectic: ECLECTIC_MAX_REL_ENTRIES is a legacy spelling — the cap \
                     measures estimated bytes, and the documented name is \
                     ECLECTIC_MAX_REL_BYTES (honouring the legacy name this time)"
                );
                Some(n)
            }
            RelBytesSpec::Invalid => {
                let (name, value) = if primary.is_some() {
                    ("ECLECTIC_MAX_REL_BYTES", primary)
                } else {
                    ("ECLECTIC_MAX_REL_ENTRIES", legacy)
                };
                eprintln!(
                    "eclectic: unparseable {name}={:?}; expected a non-negative byte count — \
                     leaving the relation-memory axis unlimited",
                    value.as_deref().unwrap_or_default()
                );
                None
            }
        }
    })
}

// ---------------------------------------------------------------------------
// ECLECTIC_SCHED
// ---------------------------------------------------------------------------

/// How one `ECLECTIC_SCHED` value parses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SchedSpec {
    /// Variable unset: the work-stealing executor.
    Unset,
    /// `steal`: the persistent work-stealing executor, explicitly.
    Steal,
    /// `scoped`: per-call scoped threads — the pre-scheduler behaviour,
    /// kept as an A/B escape hatch for debugging.
    Scoped,
    /// Unparseable: fall back to `steal`, but warn.
    Invalid,
}

pub(crate) fn parse_sched(value: Option<&str>) -> SchedSpec {
    let Some(raw) = value else {
        return SchedSpec::Unset;
    };
    let s = raw.trim();
    if s.eq_ignore_ascii_case("steal") {
        SchedSpec::Steal
    } else if s.eq_ignore_ascii_case("scoped") {
        SchedSpec::Scoped
    } else {
        SchedSpec::Invalid
    }
}

/// The environment-selected scheduler, read once per process. Unset means
/// the work-stealing executor; `scoped` restores per-call scoped threads.
pub(crate) fn env_sched() -> SchedSpec {
    static SPEC: OnceLock<SchedSpec> = OnceLock::new();
    *SPEC.get_or_init(|| {
        let value = std::env::var("ECLECTIC_SCHED").ok();
        let spec = parse_sched(value.as_deref());
        if spec == SchedSpec::Invalid {
            eprintln!(
                "eclectic: unparseable ECLECTIC_SCHED={:?}; expected `steal` or `scoped` — \
                 falling back to the work-stealing executor",
                value.as_deref().unwrap_or_default()
            );
        }
        spec
    })
}

// ---------------------------------------------------------------------------
// ECLECTIC_SCHED_PRIORITY
// ---------------------------------------------------------------------------

/// How one `ECLECTIC_SCHED_PRIORITY` value parses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SchedPrioritySpec {
    /// Variable unset: priority-aware injector scanning (the default).
    Unset,
    /// `on`/`1`/`true`: priority-aware injector scanning, explicitly.
    On,
    /// `off`/`0`/`false`: the flat submission-order injector — the
    /// pre-priority baseline, kept as an A/B escape hatch.
    Off,
    /// Unparseable: fall back to priority-aware, but warn.
    Invalid,
}

pub(crate) fn parse_sched_priority(value: Option<&str>) -> SchedPrioritySpec {
    let Some(raw) = value else {
        return SchedPrioritySpec::Unset;
    };
    let s = raw.trim();
    if s.eq_ignore_ascii_case("on") || s == "1" || s.eq_ignore_ascii_case("true") {
        SchedPrioritySpec::On
    } else if s.eq_ignore_ascii_case("off") || s == "0" || s.eq_ignore_ascii_case("false") {
        SchedPrioritySpec::Off
    } else {
        SchedPrioritySpec::Invalid
    }
}

/// The environment-selected injector discipline, read once per process.
/// Unset means priority-aware scanning; `off` restores the flat
/// submission-order scan.
pub(crate) fn env_sched_priority() -> SchedPrioritySpec {
    static SPEC: OnceLock<SchedPrioritySpec> = OnceLock::new();
    *SPEC.get_or_init(|| {
        let value = std::env::var("ECLECTIC_SCHED_PRIORITY").ok();
        let spec = parse_sched_priority(value.as_deref());
        if spec == SchedPrioritySpec::Invalid {
            eprintln!(
                "eclectic: unparseable ECLECTIC_SCHED_PRIORITY={:?}; expected `on` or `off` — \
                 falling back to the priority-aware injector",
                value.as_deref().unwrap_or_default()
            );
        }
        spec
    })
}

/// Process-global priority-mode override installed by
/// [`force_sched_priority`]: 0 = none, 1 = on, 2 = off.
static PRIORITY_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes holders of [`force_sched_priority`] guards.
static PRIORITY_LOCK: Mutex<()> = Mutex::new(());

/// RAII guard for a forced injector discipline; restores the
/// environment-driven choice on drop. Holding it excludes every other
/// forced-priority section in the process.
pub struct SchedPriorityGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for SchedPriorityGuard {
    fn drop(&mut self) {
        PRIORITY_OVERRIDE.store(0, Ordering::SeqCst);
    }
}

/// Forces the injector discipline (priority-aware vs flat) for the
/// lifetime of the returned guard, regardless of
/// `ECLECTIC_SCHED_PRIORITY`. The A/B test guard for the priority classes,
/// mirroring `force_sched_mode`. Either discipline produces bit-identical
/// results — only which region a freed pool thread serves next changes.
#[must_use]
pub fn force_sched_priority(on: bool) -> SchedPriorityGuard {
    let lock = PRIORITY_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    PRIORITY_OVERRIDE.store(if on { 1 } else { 2 }, Ordering::SeqCst);
    SchedPriorityGuard { _lock: lock }
}

/// Whether pool threads scan regions priority-first: a
/// [`force_sched_priority`] override wins, then `ECLECTIC_SCHED_PRIORITY`,
/// then the priority-aware default.
#[must_use]
pub fn sched_priority_on() -> bool {
    match PRIORITY_OVERRIDE.load(Ordering::SeqCst) {
        1 => return true,
        2 => return false,
        _ => {}
    }
    match env_sched_priority() {
        SchedPrioritySpec::Off => false,
        SchedPrioritySpec::Unset | SchedPrioritySpec::On | SchedPrioritySpec::Invalid => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_parse_table() {
        assert_eq!(parse_threads(None), ThreadsSpec::Unset);

        assert_eq!(parse_threads(Some("0")), ThreadsSpec::Auto);
        assert_eq!(parse_threads(Some("auto")), ThreadsSpec::Auto);
        assert_eq!(parse_threads(Some(" AUTO ")), ThreadsSpec::Auto);

        assert_eq!(parse_threads(Some("1")), ThreadsSpec::Count(1));
        assert_eq!(parse_threads(Some(" 8 ")), ThreadsSpec::Count(8));

        assert_eq!(parse_threads(Some("abc")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("-2")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("")), ThreadsSpec::Invalid);
        assert_eq!(parse_threads(Some("3.5")), ThreadsSpec::Invalid);

        // Huge counts parse; they are capped at the host by
        // `effective_workers` at spawn time (asserted in
        // `worker_cap_guard_overrides_and_restores`, which serializes on
        // the override lock).
        assert_eq!(parse_threads(Some("100000")), ThreadsSpec::Count(100_000));
    }

    #[test]
    fn par_min_dim_parse_table() {
        assert_eq!(parse_par_min_dim(None), ParMinDimSpec::Unset);
        assert_eq!(parse_par_min_dim(Some("0")), ParMinDimSpec::Dim(0));
        assert_eq!(parse_par_min_dim(Some(" 512 ")), ParMinDimSpec::Dim(512));
        assert_eq!(parse_par_min_dim(Some("abc")), ParMinDimSpec::Invalid);
        assert_eq!(parse_par_min_dim(Some("-1")), ParMinDimSpec::Invalid);
        assert_eq!(parse_par_min_dim(Some("")), ParMinDimSpec::Invalid);
    }

    #[test]
    fn rel_backend_parse_table() {
        assert_eq!(parse_rel_backend(None), BackendSpec::Unset);
        assert_eq!(parse_rel_backend(Some("auto")), BackendSpec::Auto);
        assert_eq!(parse_rel_backend(Some(" DENSE ")), BackendSpec::Dense);
        assert_eq!(parse_rel_backend(Some("sparse")), BackendSpec::Sparse);
        assert_eq!(
            parse_rel_backend(Some(" Compressed ")),
            BackendSpec::Compressed
        );
        assert_eq!(parse_rel_backend(Some("roaring")), BackendSpec::Invalid);
        assert_eq!(parse_rel_backend(Some("btree")), BackendSpec::Invalid);
        assert_eq!(parse_rel_backend(Some("")), BackendSpec::Invalid);
    }

    #[test]
    fn rel_compressed_min_dim_parse_table() {
        assert_eq!(
            parse_rel_compressed_min_dim(None),
            CompressedMinDimSpec::Unset
        );
        assert_eq!(
            parse_rel_compressed_min_dim(Some("0")),
            CompressedMinDimSpec::Dim(0)
        );
        assert_eq!(
            parse_rel_compressed_min_dim(Some(" 131072 ")),
            CompressedMinDimSpec::Dim(131_072)
        );
        assert_eq!(
            parse_rel_compressed_min_dim(Some("abc")),
            CompressedMinDimSpec::Invalid
        );
        assert_eq!(
            parse_rel_compressed_min_dim(Some("-1")),
            CompressedMinDimSpec::Invalid
        );
        assert_eq!(
            parse_rel_compressed_min_dim(Some("")),
            CompressedMinDimSpec::Invalid
        );
    }

    #[test]
    fn max_rel_bytes_parse_table() {
        // Neither spelling set.
        assert_eq!(parse_max_rel_bytes(None, None), RelBytesSpec::Unset);
        // The documented spelling alone.
        assert_eq!(
            parse_max_rel_bytes(Some("67108864"), None),
            RelBytesSpec::Bytes(67_108_864)
        );
        assert_eq!(
            parse_max_rel_bytes(Some(" 1024 "), None),
            RelBytesSpec::Bytes(1024)
        );
        // The legacy spelling alone is honoured (as bytes) but flagged.
        assert_eq!(
            parse_max_rel_bytes(None, Some("4096")),
            RelBytesSpec::LegacyBytes(4096)
        );
        // The documented spelling wins when both are set.
        assert_eq!(
            parse_max_rel_bytes(Some("10"), Some("20")),
            RelBytesSpec::Bytes(10)
        );
        // Unparseable winning values leave the axis unlimited (with a warn).
        assert_eq!(parse_max_rel_bytes(Some("abc"), None), RelBytesSpec::Invalid);
        assert_eq!(parse_max_rel_bytes(Some(""), Some("64")), RelBytesSpec::Invalid);
        assert_eq!(parse_max_rel_bytes(None, Some("-5")), RelBytesSpec::Invalid);
        assert_eq!(parse_max_rel_bytes(Some("3.5"), None), RelBytesSpec::Invalid);
    }

    #[test]
    fn sched_parse_table() {
        assert_eq!(parse_sched(None), SchedSpec::Unset);
        assert_eq!(parse_sched(Some("steal")), SchedSpec::Steal);
        assert_eq!(parse_sched(Some(" STEAL ")), SchedSpec::Steal);
        assert_eq!(parse_sched(Some("scoped")), SchedSpec::Scoped);
        assert_eq!(parse_sched(Some("rayon")), SchedSpec::Invalid);
        assert_eq!(parse_sched(Some("")), SchedSpec::Invalid);
    }

    #[test]
    fn sched_priority_parse_table() {
        assert_eq!(parse_sched_priority(None), SchedPrioritySpec::Unset);
        assert_eq!(parse_sched_priority(Some("on")), SchedPrioritySpec::On);
        assert_eq!(parse_sched_priority(Some(" ON ")), SchedPrioritySpec::On);
        assert_eq!(parse_sched_priority(Some("1")), SchedPrioritySpec::On);
        assert_eq!(parse_sched_priority(Some("true")), SchedPrioritySpec::On);
        assert_eq!(parse_sched_priority(Some("off")), SchedPrioritySpec::Off);
        assert_eq!(parse_sched_priority(Some(" Off ")), SchedPrioritySpec::Off);
        assert_eq!(parse_sched_priority(Some("0")), SchedPrioritySpec::Off);
        assert_eq!(parse_sched_priority(Some("false")), SchedPrioritySpec::Off);
        assert_eq!(parse_sched_priority(Some("flat")), SchedPrioritySpec::Invalid);
        assert_eq!(parse_sched_priority(Some("2")), SchedPrioritySpec::Invalid);
        assert_eq!(parse_sched_priority(Some("")), SchedPrioritySpec::Invalid);
    }

    #[test]
    fn sched_priority_guard_overrides_and_restores() {
        {
            let _g = force_sched_priority(false);
            assert!(!sched_priority_on());
        }
        {
            let _g = force_sched_priority(true);
            assert!(sched_priority_on());
        }
        // With no guard held the environment-driven default (on, unless the
        // test process exports ECLECTIC_SCHED_PRIORITY=off) applies again.
        let _serialize = force_sched_priority(true);
        assert!(sched_priority_on());
    }

    #[test]
    fn worker_cap_guard_overrides_and_restores() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        {
            let _g = force_worker_cap(usize::MAX);
            assert_eq!(effective_workers(8), 8);
            assert_eq!(effective_workers(0), 1);
        }
        {
            let _g = force_worker_cap(2);
            assert_eq!(effective_workers(8), 2);
        }
        // With no guard held the host cap applies again. Hold the lock so
        // a concurrently running forced-cap test can't interleave.
        let _serialize = force_worker_cap(cores);
        assert_eq!(effective_workers(100_000), cores);
        assert_eq!(effective_workers(0), 1);
    }
}
