//! A thread-shareable hash-consed term store.
//!
//! # Sharding scheme
//!
//! [`ConcurrentTermStore`] splits the interner into [`NUM_SHARDS`] shards,
//! selected by the node hash. Each shard owns
//!
//! - a `Mutex`-protected dedup table (`node hash → candidate slots`), and
//! - an **append-only chunked arena** of nodes. Chunks double in size
//!   (chunk *k* holds 2^(10+*k*) slots) and are published through
//!   `AtomicPtr`s, so a chunk never moves once allocated and readers never
//!   take a lock: looking a node up from a [`TermId`] is two atomic loads
//!   and a pointer offset.
//!
//! A [`TermId`] from this store encodes `(slot << 4) | shard`, so ids are
//! stable for the lifetime of the store and node lookup needs no search.
//!
//! # Why the hash-consing invariant holds under concurrency
//!
//! All *writes* to a shard (dedup probe + slot append) happen under that
//! shard's mutex, so two threads racing to intern the same term serialize on
//! its shard and the second one finds the first one's node — one node per
//! distinct term, exactly as in the serial [`TermStore`](crate::TermStore).
//! Readers are safe without the lock because a thread can only hold a
//! [`TermId`] that was either interned by itself (program order) or received
//! from another thread through a synchronizing operation (mutex release,
//! channel, `thread::scope` join), each of which establishes happens-before
//! with the slot write.
//!
//! # Per-thread handles
//!
//! Threads intern through a [`StoreHandle`] — `Arc` of the store plus a
//! private intern cache — which keeps repeat interns (the common case inside
//! a rewrite loop) entirely off the shard locks. [`SharedMemo`] provides the
//! matching sharded normal-form memo so rewriters on different threads reuse
//! each other's work: it is safe to share because the normal form of an
//! interned term is a pure function of the term.

use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use crate::hash::FxHashMap;
use crate::ids::{FuncId, VarId};
use crate::store::{hash_app, hash_var, Interner, TermId, TermNode};

/// Number of low id bits that address the shard.
const SHARD_BITS: u32 = 4;
/// Number of shards in a [`ConcurrentTermStore`] (and in a [`SharedMemo`]).
const NUM_SHARDS: usize = 1 << SHARD_BITS;
/// log2 of the first chunk's slot count.
const CHUNK0_BITS: u32 = 10;
/// Chunks 0..19 cover the full 2^28 slots a shard can address.
const MAX_CHUNKS: usize = 19;
/// Per-shard slot capacity implied by the id encoding.
const MAX_SLOTS: u32 = 1 << (32 - SHARD_BITS);

/// Maps a slot index to `(chunk, offset)`. Chunk `k` starts at slot
/// `(2^k - 1) << CHUNK0_BITS` and holds `2^(CHUNK0_BITS + k)` slots.
fn slot_addr(slot: u32) -> (usize, usize) {
    let q = (slot >> CHUNK0_BITS) + 1;
    let k = 31 - q.leading_zeros();
    let start = ((1u32 << k) - 1) << CHUNK0_BITS;
    (k as usize, (slot - start) as usize)
}

fn chunk_cap(k: usize) -> usize {
    1usize << (CHUNK0_BITS as usize + k)
}

fn chunk_start(k: usize) -> u32 {
    ((1u32 << k) - 1) << CHUNK0_BITS
}

/// One arena slot: the node plus the intern-time metadata the serial store
/// keeps in its parallel `meta` vector.
struct Slot {
    node: TermNode,
    ground: bool,
    size: u32,
    depth: u32,
}

/// Dedup state of one shard; only ever touched under the shard mutex.
#[derive(Default)]
struct ShardInner {
    /// Node hash → candidate slot indices (collisions resolved structurally).
    dedup: FxHashMap<u64, Vec<u32>>,
}

struct Shard {
    inner: Mutex<ShardInner>,
    /// Doubling chunks of the append-only arena; null until allocated.
    chunks: [AtomicPtr<Slot>; MAX_CHUNKS],
    /// Published slot count; stored with `Release` after the slot write.
    len: AtomicU32,
}

impl Shard {
    fn new() -> Self {
        Shard {
            inner: Mutex::new(ShardInner::default()),
            chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            len: AtomicU32::new(0),
        }
    }

    /// Lock-free slot read. Sound for any slot index that reached the caller
    /// through a legitimately-held [`TermId`] (see the module docs).
    fn slot(&self, s: u32) -> &Slot {
        let (k, off) = slot_addr(s);
        let ptr = self.chunks[k].load(Ordering::Acquire);
        debug_assert!(!ptr.is_null());
        // SAFETY: `s` was published by an intern that wrote the slot before
        // releasing the shard mutex; the chunk pointer never changes once
        // non-null and chunks never move or shrink.
        unsafe { &*ptr.add(off) }
    }

    /// Interns under the shard mutex: probes the dedup table, and on a miss
    /// appends `make()` to the arena. `is_match` performs the structural
    /// comparison against a candidate node.
    fn intern(
        &self,
        shard: u32,
        h: u64,
        is_match: impl Fn(&TermNode) -> bool,
        make: impl FnOnce() -> Slot,
    ) -> TermId {
        let mut inner = self.inner.lock().expect("shard mutex poisoned");
        if let Some(slots) = inner.dedup.get(&h) {
            for &s in slots {
                if is_match(&self.slot(s).node) {
                    return TermId::from_raw((s << SHARD_BITS) | shard);
                }
            }
        }
        let slot = self.len.load(Ordering::Relaxed);
        assert!(slot < MAX_SLOTS, "concurrent term store shard is full");
        let (k, off) = slot_addr(slot);
        let mut ptr = self.chunks[k].load(Ordering::Acquire);
        if ptr.is_null() {
            let mut chunk: Vec<Slot> = Vec::with_capacity(chunk_cap(k));
            ptr = chunk.as_mut_ptr();
            std::mem::forget(chunk);
            self.chunks[k].store(ptr, Ordering::Release);
        }
        // SAFETY: we hold the shard mutex, `off < chunk_cap(k)` by
        // construction of `slot_addr`, and slot `slot` has never been
        // written (the arena is append-only).
        unsafe { ptr.add(off).write(make()) };
        self.len.store(slot + 1, Ordering::Release);
        inner.dedup.entry(h).or_default().push(slot);
        TermId::from_raw((slot << SHARD_BITS) | shard)
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        let len = *self.len.get_mut();
        for k in 0..MAX_CHUNKS {
            let ptr = *self.chunks[k].get_mut();
            if ptr.is_null() {
                continue;
            }
            let init = (len.saturating_sub(chunk_start(k)) as usize).min(chunk_cap(k));
            // SAFETY: the chunk was allocated by `Vec::with_capacity` with
            // this capacity and its first `init` slots were initialized by
            // `intern`; reconstructing the Vec drops both.
            unsafe { drop(Vec::from_raw_parts(ptr, init, chunk_cap(k))) };
        }
    }
}

/// A hash-consed term store shareable across threads (`Send + Sync`).
///
/// Maintains the same invariant as the serial
/// [`TermStore`](crate::TermStore) — one node per structurally distinct
/// term, so [`TermId`] equality is structural equality — under concurrent
/// interning from any number of threads. See the module docs for the
/// sharding scheme and the soundness argument.
///
/// Intern methods take `&self`; threads normally go through a
/// [`StoreHandle`], which adds a per-thread cache and implements
/// [`Interner`].
pub struct ConcurrentTermStore {
    shards: [Shard; NUM_SHARDS],
}

impl Default for ConcurrentTermStore {
    fn default() -> Self {
        ConcurrentTermStore::new()
    }
}

impl std::fmt::Debug for ConcurrentTermStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentTermStore")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl ConcurrentTermStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        ConcurrentTermStore {
            shards: std::array::from_fn(|_| Shard::new()),
        }
    }

    /// Creates an empty store already wrapped for sharing.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(ConcurrentTermStore::new())
    }

    /// Number of distinct interned terms across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.len.load(Ordering::Acquire) as usize)
            .sum()
    }

    /// Whether no term has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot_of(&self, t: TermId) -> &Slot {
        let raw = t.raw();
        let shard = (raw as usize) & (NUM_SHARDS - 1);
        self.shards[shard].slot(raw >> SHARD_BITS)
    }

    /// Interns a variable term.
    pub fn var(&self, v: VarId) -> TermId {
        let h = hash_var(v);
        let si = (h as usize) & (NUM_SHARDS - 1);
        self.shards[si].intern(
            si as u32,
            h,
            |n| matches!(n, TermNode::Var(w) if *w == v),
            || Slot {
                node: TermNode::Var(v),
                ground: false,
                size: 1,
                depth: 1,
            },
        )
    }

    /// Interns an application `f(args…)`. Constants are `app(f, &[])`.
    ///
    /// # Panics
    /// Panics if an argument id was issued by a different store.
    pub fn app(&self, f: FuncId, args: &[TermId]) -> TermId {
        let h = hash_app(f, args);
        let mut ground = true;
        let mut size = 1u32;
        let mut depth = 0u32;
        for &a in args {
            let s = self.slot_of(a);
            ground &= s.ground;
            size = size.saturating_add(s.size);
            depth = depth.max(s.depth);
        }
        let si = (h as usize) & (NUM_SHARDS - 1);
        self.shards[si].intern(
            si as u32,
            h,
            |n| matches!(n, TermNode::App(g, gargs) if *g == f && gargs.as_ref() == args),
            || Slot {
                node: TermNode::App(f, args.into()),
                ground,
                size,
                depth: depth + 1,
            },
        )
    }

    /// Interns a constant (0-ary application).
    pub fn constant(&self, f: FuncId) -> TermId {
        self.app(f, &[])
    }

    /// The node denoted by an id (lock-free).
    #[must_use]
    pub fn node(&self, t: TermId) -> &TermNode {
        &self.slot_of(t).node
    }

    /// Whether the term contains no variables (cached at intern time).
    #[must_use]
    pub fn is_ground(&self, t: TermId) -> bool {
        self.slot_of(t).ground
    }

    /// Number of symbol occurrences (cached at intern time).
    #[must_use]
    pub fn size(&self, t: TermId) -> usize {
        self.slot_of(t).size as usize
    }

    /// Maximum nesting depth; a constant or variable has depth 1 (cached).
    #[must_use]
    pub fn depth(&self, t: TermId) -> usize {
        self.slot_of(t).depth as usize
    }
}

/// A per-thread handle to a [`ConcurrentTermStore`].
///
/// Adds a private `hash → candidate ids` cache in front of the shared store
/// so repeat interns — the overwhelmingly common case inside a rewrite
/// loop — never touch a shard lock. Implements [`Interner`], so a
/// `Rewriter` (or any other store-generic pass) runs over it unchanged.
///
/// Handles are cheap to create (clone of an `Arc` + empty map): spawn one
/// per worker thread.
pub struct StoreHandle {
    store: Arc<ConcurrentTermStore>,
    cache: FxHashMap<u64, Vec<TermId>>,
}

impl StoreHandle {
    /// Creates a handle over `store` with an empty local cache.
    #[must_use]
    pub fn new(store: Arc<ConcurrentTermStore>) -> Self {
        StoreHandle {
            store,
            cache: FxHashMap::default(),
        }
    }

    /// The shared store behind this handle.
    #[must_use]
    pub fn store(&self) -> &Arc<ConcurrentTermStore> {
        &self.store
    }
}

impl std::fmt::Debug for StoreHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreHandle")
            .field("store", &self.store)
            .field("cached", &self.cache.len())
            .finish()
    }
}

impl Clone for StoreHandle {
    /// Clones the `Arc`, not the cache: the clone starts cold.
    fn clone(&self) -> Self {
        StoreHandle::new(Arc::clone(&self.store))
    }
}

impl Interner for StoreHandle {
    fn var(&mut self, v: VarId) -> TermId {
        let h = hash_var(v);
        if let Some(ids) = self.cache.get(&h) {
            for &id in ids {
                if matches!(self.store.node(id), TermNode::Var(w) if *w == v) {
                    return id;
                }
            }
        }
        let id = self.store.var(v);
        self.cache.entry(h).or_default().push(id);
        id
    }

    fn app(&mut self, f: FuncId, args: &[TermId]) -> TermId {
        let h = hash_app(f, args);
        if let Some(ids) = self.cache.get(&h) {
            for &id in ids {
                if let TermNode::App(g, gargs) = self.store.node(id) {
                    if *g == f && gargs.as_ref() == args {
                        return id;
                    }
                }
            }
        }
        let id = self.store.app(f, args);
        self.cache.entry(h).or_default().push(id);
        id
    }

    fn node(&self, t: TermId) -> &TermNode {
        self.store.node(t)
    }

    fn is_ground(&self, t: TermId) -> bool {
        self.store.is_ground(t)
    }

    fn size(&self, t: TermId) -> usize {
        self.store.size(t)
    }

    fn depth(&self, t: TermId) -> usize {
        self.store.depth(t)
    }

    fn len(&self) -> usize {
        self.store.len()
    }
}

/// A sharded, thread-shared `term → normal form` memo.
///
/// Rewriters on different threads consult it on a local-memo miss and
/// publish every normal form they compute, so the frontier workers of a
/// parallel exploration reuse each other's rewriting work (successor states
/// share long trace prefixes). Sharing is sound because the normal form of
/// an interned term is a deterministic function of the term: whichever
/// thread wins the race writes the same value.
pub struct SharedMemo {
    shards: [Mutex<FxHashMap<TermId, TermId>>; NUM_SHARDS],
}

impl std::fmt::Debug for SharedMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMemo").finish_non_exhaustive()
    }
}

impl Default for SharedMemo {
    fn default() -> Self {
        SharedMemo::new()
    }
}

impl SharedMemo {
    /// Creates an empty memo.
    #[must_use]
    pub fn new() -> Self {
        SharedMemo {
            shards: std::array::from_fn(|_| Mutex::new(FxHashMap::default())),
        }
    }

    /// Looks up the recorded normal form of `t`, if any thread has
    /// published one.
    #[must_use]
    pub fn get(&self, t: TermId) -> Option<TermId> {
        self.shards[(t.raw() as usize) & (NUM_SHARDS - 1)]
            .lock()
            .expect("memo mutex poisoned")
            .get(&t)
            .copied()
    }

    /// Publishes `t → nf` for other threads.
    pub fn insert(&self, t: TermId, nf: TermId) {
        self.shards[(t.raw() as usize) & (NUM_SHARDS - 1)]
            .lock()
            .expect("memo mutex poisoned")
            .insert(t, nf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const _: () = {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConcurrentTermStore>();
        assert_send_sync::<StoreHandle>();
        assert_send_sync::<SharedMemo>();
    };

    #[test]
    fn slot_addressing_is_a_bijection() {
        let mut expected = 0u32;
        for k in 0..6 {
            assert_eq!(chunk_start(k), expected);
            for off in [0usize, 1, chunk_cap(k) - 1] {
                let slot = expected + u32::try_from(off).unwrap();
                assert_eq!(slot_addr(slot), (k, off));
            }
            expected += u32::try_from(chunk_cap(k)).unwrap();
        }
    }

    #[test]
    fn interning_is_idempotent_and_metadata_matches_serial() {
        let store = ConcurrentTermStore::new();
        let a = store.constant(FuncId(1));
        let x = store.var(VarId(0));
        let t1 = store.app(FuncId(10), &[a, x]);
        let t2 = store.app(FuncId(10), &[a, x]);
        assert_eq!(t1, t2);
        assert_eq!(store.len(), 3);
        assert!(store.is_ground(a));
        assert!(!store.is_ground(t1));
        assert_eq!(store.size(t1), 3);
        assert_eq!(store.depth(t1), 2);
        assert!(matches!(store.node(x), TermNode::Var(v) if *v == VarId(0)));
    }

    #[test]
    fn handle_cache_agrees_with_store() {
        let store = ConcurrentTermStore::shared();
        let mut h1 = StoreHandle::new(Arc::clone(&store));
        let mut h2 = StoreHandle::new(Arc::clone(&store));
        let a1 = h1.constant(FuncId(7));
        let a2 = h2.constant(FuncId(7));
        assert_eq!(a1, a2);
        let t1 = h1.app(FuncId(3), &[a1, a1]);
        let t2 = h2.app(FuncId(3), &[a2, a2]);
        assert_eq!(t1, t2);
        assert_eq!(store.len(), 2);
    }

    /// Satellite stress test: 100k terms interned from 8 threads, with every
    /// thread interning an overlapping slice, must produce no duplicate
    /// nodes and fully agreeing ids.
    #[test]
    fn stress_100k_terms_from_8_threads_no_duplicates() {
        const TERMS: u32 = 100_000;
        const THREADS: usize = 8;
        let store = ConcurrentTermStore::shared();
        let ids: Vec<Vec<TermId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|w| {
                    let store = Arc::clone(&store);
                    scope.spawn(move || {
                        let mut h = StoreHandle::new(store);
                        // Each worker starts at a different offset so the
                        // interleaving differs per thread, but all workers
                        // cover the same 100k terms: f(c_i, c_{i+1}).
                        (0..TERMS)
                            .map(|j| {
                                let i = (j + u32::try_from(w).unwrap() * 12_347) % TERMS;
                                let a = h.constant(FuncId(i));
                                let b = h.constant(FuncId((i + 1) % TERMS));
                                h.app(FuncId(TERMS), &[a, b])
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // 100k constants + 100k distinct applications, regardless of how the
        // 8 threads raced.
        assert_eq!(store.len(), 2 * TERMS as usize);
        // Every thread got the same id for the same term.
        for w in 1..THREADS {
            for j in 0..TERMS as usize {
                let i = (u32::try_from(j).unwrap() + u32::try_from(w).unwrap() * 12_347) % TERMS;
                assert_eq!(ids[w][j], ids[0][i as usize]);
            }
        }
        // And the ids are distinct across distinct terms.
        let set: std::collections::BTreeSet<_> = ids[0].iter().copied().collect();
        assert_eq!(set.len(), TERMS as usize);
    }

    #[test]
    fn shared_memo_roundtrips() {
        let store = ConcurrentTermStore::new();
        let a = store.constant(FuncId(1));
        let b = store.constant(FuncId(2));
        let memo = SharedMemo::new();
        assert_eq!(memo.get(a), None);
        memo.insert(a, b);
        assert_eq!(memo.get(a), Some(b));
    }

    #[test]
    fn chunk_growth_across_boundaries() {
        // Push one shard past several chunk boundaries: intern > 16 * 3072
        // terms so some shard exceeds chunks 0 and 1.
        let store = ConcurrentTermStore::new();
        let n = 60_000u32;
        let mut ids = Vec::new();
        for i in 0..n {
            ids.push(store.constant(FuncId(i)));
        }
        assert_eq!(store.len(), n as usize);
        for (i, &id) in ids.iter().enumerate() {
            assert!(
                matches!(store.node(id), TermNode::App(f, args) if f.0 == u32::try_from(i).unwrap() && args.is_empty())
            );
        }
    }
}
