//! # eclectic-kernel
//!
//! The hash-consed term kernel shared by every specification level of the
//! eclectic workspace: the logic level (§3 of the paper), the algebraic
//! rewriting level (§4), and the RPR representation level (§5) all
//! manipulate first-order terms over the same id vocabulary, and this crate
//! gives them one interning substrate with:
//!
//! - **O(1) structural equality and hashing** — a [`TermStore`] issues one
//!   [`TermId`] per distinct tree, so id equality *is* semantic equality;
//! - **cached per-node metadata** — groundness, size, depth computed once at
//!   intern time, and sorts cached on first demand via a [`SortOracle`];
//! - **structural sharing** — repeated subterms (e.g. common trace
//!   prefixes of database update histories) are stored once, which is what
//!   makes memoised rewriting and reachability deduplication cheap;
//! - **substitution over interned terms** ([`TermStore::subst`]) with
//!   ground short-circuiting.
//!
//! The crate is dependency-free and defines only ids, terms, and hashing;
//! names, declarations, parsing and printing stay in `eclectic-logic`.

#![warn(missing_docs)]

mod bitmat;
mod budget;
mod closure;
mod concurrent;
mod container;
mod envcfg;
pub mod hash;
mod ids;
mod rel;
pub mod rng;
pub mod sched;
mod sparse;
mod store;

pub use bitmat::{BitMatrix, ROW_POLL_STRIDE};
pub use budget::{Budget, BudgetExceeded, CancelToken, Exhaustion};
pub use closure::LazyClosure;
pub use container::{CompressedRel, CompressedRow};
pub use envcfg::{
    effective_workers, env_threads, force_sched_priority, force_worker_cap, sched_priority_on,
    SchedPriorityGuard, WorkerCapGuard,
};
pub use rel::{
    force_rel_backend, force_rel_fault, rel_backend_for, Rel, RelBackend, RelBackendGuard,
    RelChoice, RelFaultGuard, RowIter, REL_DENSE_MAX_DIM,
};
pub use rng::Rng;
pub use sched::{
    force_sched_mode, run_chunked, run_tasks, run_tasks_prio, run_workers, run_workers_prio,
    sched_mode, DagBuilder, IndexQueue, Priority, SchedMode, SchedModeGuard, TaskHandle,
};
pub use sparse::SparseRel;
pub use concurrent::{ConcurrentTermStore, SharedMemo, StoreHandle};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{FuncId, PredId, SortId, VarId};
pub use store::{Binding, Interner, SortError, SortOracle, TermId, TermNode, TermStore};
