//! The deterministic work-stealing scheduler: one persistent worker pool
//! driving every parallel sweep in the workspace.
//!
//! # Why a shared executor
//!
//! Before this module, each of the ~10 parallel entry points (confluence
//! overlap resolution, the completeness grid, batched PDL denotation,
//! reachability BFS, cross-level checks, relation compose/closure) spawned
//! its own `std::thread::scope` with level-synchronous barriers. Threads
//! were paid for per call, and a stage whose workers went idle at a
//! barrier could not lend them to a concurrently-runnable sibling stage.
//! [`run_tasks`] replaces every one of those call sites: tasks from all
//! active sweeps land in one region list served by one lazily-grown pool,
//! so independent stages of `core::verify` interleave on the same threads.
//!
//! # Determinism contract
//!
//! The executor itself makes no ordering promises beyond "every task runs
//! exactly once and outputs land in task order". Call sites keep the
//! bit-identical-reports contract the same way they always have: each
//! task's result is keyed by its serial position, and merges replay serial
//! order at commit points (slot replay). Dynamic load balancing inside a
//! sweep uses [`IndexQueue`]: chunks of the item range are claimed in
//! monotonically increasing order and processed in increasing index order
//! within a chunk, so by induction every item below the globally earliest
//! stop index has a verdict — exactly the invariant the static striding
//! provided — and deterministic stop axes (node caps checked at serial
//! slot indices) trip at the same minimal index at every worker count.
//!
//! # Modes
//!
//! `ECLECTIC_SCHED=scoped` (or a [`force_sched_mode`] guard) restores the
//! per-call scoped-thread behaviour for A/B debugging; `steal` (the
//! default) uses the persistent pool. Both modes produce bit-identical
//! results — only scheduling changes.
//!
//! # Priority classes
//!
//! Every region carries one of three [`Priority`] classes. When priority
//! scanning is on (`ECLECTIC_SCHED_PRIORITY`, default on), a pool thread
//! looking for work serves the highest-priority non-drained region first,
//! breaking ties by submission order, and re-scans after every task so a
//! newly published latency-critical region preempts further claims from a
//! bulk sweep at task granularity. With priority off the scan is the flat
//! oldest-first baseline. Priorities never affect results — only which
//! region a freed thread serves next.
//!
//! # Obligation DAGs
//!
//! [`DagBuilder`] turns "task B may only start after tasks A₁..Aₖ" into
//! pool-native completion counting: each node keeps a pending-dependency
//! count, and the task that decrements a count to zero submits the
//! unblocked node to the injector as its own single-task region (at the
//! node's priority) — no chain-level barrier, no coordinator thread.
//! Outputs are slotted by node index, so DAG results are as deterministic
//! as [`run_tasks`]'s.

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::envcfg::{self, SchedSpec};

/// Which executor [`run_tasks`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedMode {
    /// The persistent work-stealing pool (default).
    Steal,
    /// Per-call `std::thread::scope` — the pre-scheduler behaviour, kept
    /// as an escape hatch and as the A/B baseline for `bench_sched`.
    Scoped,
}

/// Process-global mode override: 0 = none, 1 = steal, 2 = scoped.
static MODE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes holders of [`force_sched_mode`] guards.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// RAII guard for a forced scheduler mode; restores the environment-driven
/// mode on drop. Holding it excludes every other forced-mode section in
/// the process.
pub struct SchedModeGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for SchedModeGuard {
    fn drop(&mut self) {
        MODE_OVERRIDE.store(0, Ordering::SeqCst);
    }
}

/// Forces the scheduler mode for the lifetime of the returned guard.
/// Intended for tests and benches that A/B the two executors in one
/// process regardless of `ECLECTIC_SCHED`.
#[must_use]
pub fn force_sched_mode(mode: SchedMode) -> SchedModeGuard {
    let lock = MODE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let code = match mode {
        SchedMode::Steal => 1,
        SchedMode::Scoped => 2,
    };
    MODE_OVERRIDE.store(code, Ordering::SeqCst);
    SchedModeGuard { _lock: lock }
}

/// The scheduler mode in effect: a [`force_sched_mode`] override wins,
/// then `ECLECTIC_SCHED`, then the work-stealing default.
#[must_use]
pub fn sched_mode() -> SchedMode {
    match MODE_OVERRIDE.load(Ordering::SeqCst) {
        1 => return SchedMode::Steal,
        2 => return SchedMode::Scoped,
        _ => {}
    }
    match envcfg::env_sched() {
        SchedSpec::Scoped => SchedMode::Scoped,
        SchedSpec::Unset | SchedSpec::Steal | SchedSpec::Invalid => SchedMode::Steal,
    }
}

// ---------------------------------------------------------------------------
// Priority classes
// ---------------------------------------------------------------------------

/// The fixed set of injector priority classes, most urgent first.
///
/// Latency-critical regions — obligation-DAG nodes whose completion
/// unblocks downstream work (refine12 exploration → witness enumeration,
/// equations → cross-check) — run [`High`](Priority::High); ordinary
/// sweeps run [`Normal`](Priority::Normal); wide grid sweeps with no
/// dependents (completeness strips, per-procedure dynamic obligations,
/// batched PDL denotation, overlap resolution) run
/// [`Bulk`](Priority::Bulk) so they soak up whatever threads the critical
/// path leaves idle instead of starving it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-critical: draining this region unblocks dependent work.
    High,
    /// The default class for sweeps with no special urgency.
    Normal,
    /// Wide background grids; served only when nothing more urgent waits.
    Bulk,
}

impl Priority {
    /// Scan rank: lower drains first.
    fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Bulk => 2,
        }
    }
}

/// Which region slot a work-seeking thread serves, as a pure function of
/// the scan snapshot: `(priority, drained)` per region in submission
/// order. Priority-on picks the highest-priority non-drained region
/// (ties to the oldest); priority-off is the flat oldest-first baseline.
fn pick_region_slot(regions: &[(Priority, bool)], priority_on: bool) -> Option<usize> {
    if priority_on {
        regions
            .iter()
            .enumerate()
            .filter(|(_, (_, drained))| !drained)
            .min_by_key(|(i, (p, _))| (p.rank(), *i))
            .map(|(i, _)| i)
    } else {
        regions.iter().position(|(_, drained)| !drained)
    }
}

// ---------------------------------------------------------------------------
// IndexQueue — dynamic chunked claiming over a serial item range
// ---------------------------------------------------------------------------

/// A monotonic chunked claim queue over `0..len`: the dynamic replacement
/// for static `skip(w).step_by(workers)` striding.
///
/// Workers call [`IndexQueue::claim`] to take the next contiguous chunk of
/// item indices. Chunks are handed out in increasing order and each worker
/// processes its chunk in increasing index order, which preserves the
/// prefix invariant the slot-replay merges rely on: when any worker stops
/// at index `k` (the minimal stop observed), every chunk below `k` was
/// claimed earlier and — because deterministic stop axes are pure
/// functions of the index — processed to completion, so every item `< k`
/// has a verdict. The chunk size is fixed at construction (a function of
/// `len` and the requested worker count only), never of runtime timing.
pub struct IndexQueue {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl IndexQueue {
    /// A queue over `0..len` with a chunk size balancing steal granularity
    /// against claim traffic: ~4 chunks per worker, at least 1 item.
    #[must_use]
    pub fn new(len: usize, workers: usize) -> Self {
        let chunk = len.div_ceil(workers.max(1) * 4).max(1);
        Self::with_chunk(len, chunk)
    }

    /// A queue over `0..len` with an explicit chunk size (≥ 1).
    #[must_use]
    pub fn with_chunk(len: usize, chunk: usize) -> Self {
        IndexQueue {
            next: AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next chunk of indices, or `None` when the range is
    /// exhausted. Chunk starts are strictly increasing across all callers.
    #[must_use]
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..self.len.min(start + self.chunk))
    }

    /// Total number of items in the range.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// ---------------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------------

/// Hard cap on pool threads — a backstop far above any sane
/// `ECLECTIC_THREADS`, not a tuning knob.
const MAX_POOL_THREADS: usize = 256;

/// A lifetime-erased task. The closure really borrows the submitting
/// call's stack frame (`'env`); the region protocol guarantees it is
/// consumed before that frame returns (see the safety argument in
/// [`run_tasks_steal`]).
type ErasedTask = Box<dyn FnOnce() + Send + 'static>;

/// One submitted batch of tasks: the unit pool threads scan for work.
struct Region {
    /// Task slots, each taken exactly once by its claimer. The per-slot
    /// mutex is uncontended (the atomic cursor hands each index to one
    /// claimer); it exists to make `take` safe from any thread.
    tasks: Vec<Mutex<Option<ErasedTask>>>,
    /// Claim cursor over `tasks`.
    next: AtomicUsize,
    /// Injector class: which regions work-seeking threads serve first.
    priority: Priority,
    /// Count of settled tasks (executed, or panicked-and-recorded),
    /// guarded with [`Region::cv`] for the submitter's completion wait.
    settled: Mutex<usize>,
    cv: Condvar,
    /// First panic payload by task index — replayed to the submitter so a
    /// panicking sweep behaves like its serial equivalent.
    panic: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
}

impl Region {
    fn new(tasks: Vec<ErasedTask>, priority: Priority) -> Self {
        Region {
            tasks: tasks.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            next: AtomicUsize::new(0),
            priority,
            settled: Mutex::new(0),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Whether every task has been claimed (not necessarily finished).
    fn drained(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.tasks.len()
    }

    /// Claims the next unclaimed task index, if any.
    fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.tasks.len()).then_some(i)
    }

    /// Runs claimed task `i`, recording a panic instead of unwinding into
    /// the pool thread, and settles it.
    fn run(&self, i: usize) {
        let task = self.tasks[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(task) = task {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                let mut first = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
                if first.as_ref().is_none_or(|(j, _)| i < *j) {
                    *first = Some((i, payload));
                }
            }
        }
        let mut settled = self.settled.lock().unwrap_or_else(PoisonError::into_inner);
        *settled += 1;
        if *settled == self.tasks.len() {
            self.cv.notify_all();
        }
    }

    /// Blocks until every task has settled.
    fn wait_settled(&self) {
        let mut settled = self.settled.lock().unwrap_or_else(PoisonError::into_inner);
        while *settled < self.tasks.len() {
            settled = self
                .cv
                .wait(settled)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct PoolState {
    /// Active regions in submission order. Pool threads serve the oldest
    /// region with unclaimed work first, then move on — this is the
    /// cross-stage sharing: a thread that drains one sweep's tasks
    /// immediately steals from whatever sweep is still running.
    regions: VecDeque<Arc<Region>>,
    /// Threads ever spawned (persistent; they park when idle).
    threads: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

impl Pool {
    fn get() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(PoolState {
                regions: VecDeque::new(),
                threads: 0,
            }),
            work_cv: Condvar::new(),
        })
    }

    /// Publishes a region and grows the pool toward `helpers` threads.
    fn submit(&'static self, region: Arc<Region>, helpers: usize) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.regions.push_back(region);
        let want = helpers.min(MAX_POOL_THREADS);
        while st.threads < want {
            st.threads += 1;
            std::thread::Builder::new()
                .name("eclectic-sched".into())
                .spawn(move || self.worker_loop())
                .expect("spawn scheduler worker");
        }
        drop(st);
        self.work_cv.notify_all();
    }

    /// Drops a settled region from the registry.
    fn retire(&self, region: &Arc<Region>) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.regions.retain(|r| !Arc::ptr_eq(r, region));
    }

    /// Picks the region a work-seeking thread should serve next, honouring
    /// priority then submission order (or submission order alone with
    /// priority scanning off).
    fn scan(st: &PoolState, priority_on: bool) -> Option<Arc<Region>> {
        let snapshot: Vec<(Priority, bool)> = st
            .regions
            .iter()
            .map(|r| (r.priority, r.drained()))
            .collect();
        pick_region_slot(&snapshot, priority_on).map(|i| Arc::clone(&st.regions[i]))
    }

    /// Claims and runs one task from the best available region. Returns
    /// `false` when no region has unclaimed work — the caller should park.
    /// Used by threads that must make progress on behalf of someone else's
    /// sweep (DAG submitters waiting for their nodes to settle).
    fn try_run_one(&self) -> bool {
        loop {
            let found = {
                let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                Self::scan(&st, envcfg::sched_priority_on())
            };
            let Some(region) = found else {
                return false;
            };
            // The region can drain between scan and claim; rescan if so —
            // each retry observes a region some other thread just emptied,
            // so the loop terminates.
            if let Some(i) = region.claim() {
                region.run(i);
                return true;
            }
        }
    }

    fn worker_loop(&'static self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            let priority_on = envcfg::sched_priority_on();
            let found = Self::scan(&st, priority_on);
            match found {
                Some(region) => {
                    drop(st);
                    if priority_on {
                        // Claim one task, then rescan: a latency-critical
                        // region published mid-sweep preempts further
                        // claims from a bulk region at task granularity.
                        if let Some(i) = region.claim() {
                            region.run(i);
                        }
                    } else {
                        // Flat baseline: drain the chosen region.
                        while let Some(i) = region.claim() {
                            region.run(i);
                        }
                    }
                    drop(region);
                    st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                }
                None => {
                    st = self
                        .work_cv
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// run_tasks — the single entry point every sweep uses
// ---------------------------------------------------------------------------

/// Runs `tasks` to completion and returns their outputs in task order.
///
/// This is the one parallel primitive in the workspace: every former
/// `thread::scope` sweep builds its per-worker closures (typically
/// `min(workers, items)` of them, pulling item chunks from a shared
/// [`IndexQueue`]) and hands them here. `workers` is the parallelism the
/// caller wants — under [`SchedMode::Steal`] it sizes the persistent
/// pool's help (`workers - 1` pool threads; the calling thread always
/// executes tasks too), under [`SchedMode::Scoped`] it is the scoped
/// spawn count. Outputs are slotted by task index, so results are
/// independent of which thread ran what.
///
/// With `workers <= 1` or fewer than two tasks the tasks run inline on
/// the calling thread, in order — the serial path costs no allocation,
/// no locks and no pool wakeup.
///
/// If a task panics, the first panic in task order is resumed on the
/// calling thread after all tasks settle, mirroring the serial behaviour.
#[must_use]
pub fn run_tasks<'env, T: Send + 'env>(
    workers: usize,
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
) -> Vec<T> {
    run_tasks_prio(workers, Priority::Normal, tasks)
}

/// [`run_tasks`] with an explicit injector [`Priority`] for the region.
/// Bulk grid sweeps tag themselves [`Priority::Bulk`] so freed pool
/// threads drain latency-critical regions first; results are identical at
/// every priority.
#[must_use]
pub fn run_tasks_prio<'env, T: Send + 'env>(
    workers: usize,
    priority: Priority,
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
) -> Vec<T> {
    if workers <= 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    match sched_mode() {
        SchedMode::Scoped => run_tasks_scoped(tasks),
        SchedMode::Steal => run_tasks_steal(workers, priority, tasks),
    }
}

/// The pre-scheduler baseline: one fresh scoped thread per task beyond the
/// first, the first task on the calling thread.
fn run_tasks_scoped<'env, T: Send + 'env>(
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
) -> Vec<T> {
    let mut tasks = tasks.into_iter();
    let first = tasks.next().expect("checked non-empty");
    std::thread::scope(|s| {
        let handles: Vec<_> = tasks.map(|t| s.spawn(t)).collect();
        let mut out = vec![first()];
        for h in handles {
            match h.join() {
                Ok(v) => out.push(v),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    })
}

/// The persistent-pool path.
fn run_tasks_steal<'env, T: Send + 'env>(
    workers: usize,
    priority: Priority,
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
) -> Vec<T> {
    let n = tasks.len();
    let outputs: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let region = {
        let mut erased: Vec<ErasedTask> = Vec::with_capacity(n);
        for (k, task) in tasks.into_iter().enumerate() {
            let out = &outputs;
            let f: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let r = task();
                out.lock().unwrap_or_else(PoisonError::into_inner)[k] = Some(r);
            });
            // SAFETY: lifetime erasure only. The closure borrows `outputs`
            // and whatever `task` captured from the caller's frame
            // (`'env`). Every erased task is consumed — executed or
            // panicked-and-recorded — before `wait_settled` returns below,
            // and the region is retired from the pool registry before this
            // function returns, so no pool thread can observe the closure
            // after `'env` ends. Pool threads may briefly hold the
            // region `Arc` after settlement, but by then every task slot
            // is `None` and the region contains no borrowed data.
            let f: ErasedTask = unsafe { std::mem::transmute::<_, ErasedTask>(f) };
            erased.push(f);
        }
        Arc::new(Region::new(erased, priority))
    };

    let pool = Pool::get();
    pool.submit(Arc::clone(&region), workers.saturating_sub(1));
    // The caller is always a worker: even with an empty pool the region
    // completes, which is what makes nested `run_tasks` deadlock-free.
    while let Some(i) = region.claim() {
        region.run(i);
    }
    region.wait_settled();
    pool.retire(&region);

    if let Some((_, payload)) = region
        .panic
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        resume_unwind(payload);
    }
    outputs
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|o| o.expect("settled task produced no output"))
        .collect()
}

/// Builds `workers` uniform worker closures (via `make`, called with each
/// worker's serial position) and runs them as one task batch. This is the
/// common shape for sweeps whose workers all run the same loop over a
/// shared [`IndexQueue`]: it hides the `Box<dyn FnOnce>` ceremony
/// [`run_tasks`] needs from heterogeneous call sites.
#[must_use]
pub fn run_workers<'env, T, F, M>(workers: usize, make: M) -> Vec<T>
where
    T: Send + 'env,
    F: FnOnce() -> T + Send + 'env,
    M: FnMut(usize) -> F,
{
    run_workers_prio(workers, Priority::Normal, make)
}

/// [`run_workers`] with an explicit injector [`Priority`] for the region.
#[must_use]
pub fn run_workers_prio<'env, T, F, M>(workers: usize, priority: Priority, mut make: M) -> Vec<T>
where
    T: Send + 'env,
    F: FnOnce() -> T + Send + 'env,
    M: FnMut(usize) -> F,
{
    let tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>> = (0..workers)
        .map(|w| Box::new(make(w)) as Box<dyn FnOnce() -> T + Send + 'env>)
        .collect();
    run_tasks_prio(workers, priority, tasks)
}

/// Convenience for the ubiquitous "fan `0..len` items across `workers`
/// with chunked claiming" shape: runs `work(range)` for every claimed
/// chunk on each of `min(workers, len)` tasks and returns the per-task
/// outputs (task order). `make_worker` is called once per task with the
/// task's serial position to build per-worker state.
#[must_use]
pub fn run_chunked<T, W, F>(
    workers: usize,
    len: usize,
    mut make_worker: W,
    work: F,
) -> Vec<T>
where
    T: Send,
    W: FnMut(usize) -> T,
    F: Fn(&mut T, Range<usize>) + Sync,
{
    let workers = workers.min(len).max(1);
    let queue = IndexQueue::new(len, workers);
    let queue = &queue;
    let work = &work;
    let tasks: Vec<Box<dyn FnOnce() -> T + Send + '_>> = (0..workers)
        .map(|w| {
            let mut state = make_worker(w);
            let f: Box<dyn FnOnce() -> T + Send + '_> = Box::new(move || {
                while let Some(range) = queue.claim() {
                    work(&mut state, range);
                }
                state
            });
            f
        })
        .collect();
    run_tasks(workers, tasks)
}

// ---------------------------------------------------------------------------
// DagBuilder — pool-native completion-count DAGs
// ---------------------------------------------------------------------------

/// A handle to a task spawned on a [`DagBuilder`], used to declare
/// dependency edges. Handles only exist for already-spawned tasks, so
/// every edge points backwards and the graph is acyclic by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskHandle(usize);

impl TaskHandle {
    /// The node's index — also its output slot in [`DagBuilder::run`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

struct DagNode<'env, T> {
    body: Box<dyn FnOnce() -> T + Send + 'env>,
    deps: Vec<usize>,
    priority: Priority,
}

/// A batch of tasks with explicit completion-count dependency edges,
/// executed with pool-native unblocking: the task that settles the last
/// dependency of node `d` submits `d` to the injector itself (at `d`'s
/// [`Priority`]), so an unblocked node starts the moment its inputs exist
/// instead of at a chain-level barrier.
///
/// Execution is as deterministic as [`run_tasks`]: outputs land in spawn
/// order, the serial path (`workers <= 1` or a single node) runs nodes
/// inline in (priority, spawn-order) topological order, and the first
/// panic in spawn order is resumed on the calling thread after every node
/// settles. Nodes communicate values along edges through caller-frame
/// slots (e.g. `Mutex<Option<V>>`); a dependency edge is exactly the
/// happens-before the read needs.
pub struct DagBuilder<'env, T: Send + 'env> {
    nodes: Vec<DagNode<'env, T>>,
}

impl<'env, T: Send + 'env> Default for DagBuilder<'env, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'env, T: Send + 'env> DagBuilder<'env, T> {
    /// An empty DAG.
    #[must_use]
    pub fn new() -> Self {
        DagBuilder { nodes: Vec::new() }
    }

    /// Number of spawned nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been spawned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Spawns a root node (no dependencies).
    pub fn spawn<F>(&mut self, priority: Priority, body: F) -> TaskHandle
    where
        F: FnOnce() -> T + Send + 'env,
    {
        self.spawn_dependent(priority, &[], body)
    }

    /// Spawns a node that may only start after every task in `deps` has
    /// completed. Completion of the last dependency submits this node to
    /// the pool injector at `priority`.
    pub fn spawn_dependent<F>(
        &mut self,
        priority: Priority,
        deps: &[TaskHandle],
        body: F,
    ) -> TaskHandle
    where
        F: FnOnce() -> T + Send + 'env,
    {
        let index = self.nodes.len();
        for d in deps {
            assert!(d.0 < index, "dependency handle from a different DAG");
        }
        self.nodes.push(DagNode {
            body: Box::new(body),
            deps: deps.iter().map(|d| d.0).collect(),
            priority,
        });
        TaskHandle(index)
    }

    /// Runs the DAG to completion and returns node outputs in spawn order.
    #[must_use]
    pub fn run(self, workers: usize) -> Vec<T> {
        let n = self.nodes.len();
        if n == 0 {
            return Vec::new();
        }
        if workers <= 1 || n == 1 {
            return run_dag_serial(self.nodes);
        }
        match sched_mode() {
            SchedMode::Scoped => run_dag_driver(self.nodes, workers),
            SchedMode::Steal => run_dag_steal(self.nodes, workers),
        }
    }
}

/// Builds the reverse edge lists and initial pending-dependency counts.
fn dag_edges<T>(nodes: &[DagNode<'_, T>]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let mut dependents = vec![Vec::new(); nodes.len()];
    let mut pending = vec![0usize; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        pending[i] = node.deps.len();
        for &d in &node.deps {
            dependents[d].push(i);
        }
    }
    (dependents, pending)
}

/// Position of the next node to run from `ready`: highest priority, then
/// lowest spawn index — the same rule the parallel paths use to order
/// their ready queues, so the serial path is the canonical linearisation.
fn dag_pick(ready: &[usize], priorities: &[Priority]) -> Option<usize> {
    ready
        .iter()
        .enumerate()
        .min_by_key(|(_, &i)| (priorities[i].rank(), i))
        .map(|(pos, _)| pos)
}

/// Inline execution in (priority, spawn-order) topological order; panics
/// propagate directly, mirroring [`run_tasks`]'s serial path.
fn run_dag_serial<'env, T: Send + 'env>(nodes: Vec<DagNode<'env, T>>) -> Vec<T> {
    let (dependents, mut pending) = dag_edges(&nodes);
    let priorities: Vec<Priority> = nodes.iter().map(|n| n.priority).collect();
    let n = nodes.len();
    let mut bodies: Vec<Option<Box<dyn FnOnce() -> T + Send + 'env>>> =
        nodes.into_iter().map(|node| Some(node.body)).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| pending[i] == 0).collect();
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    while let Some(pos) = dag_pick(&ready, &priorities) {
        let i = ready.swap_remove(pos);
        let body = bodies[i].take().expect("node runs once");
        out[i] = Some(body());
        for &d in &dependents[i] {
            pending[d] -= 1;
            if pending[d] == 0 {
                ready.push(d);
            }
        }
    }
    out.into_iter()
        .map(|o| o.expect("acyclic DAG settles every node"))
        .collect()
}

/// Shared coordination state for the parallel DAG paths.
struct DagState {
    ready: Vec<usize>,
    pending: Vec<usize>,
    /// Nodes handed to an executor (or cancelled); used to settle
    /// never-started nodes exactly once when a panic cancels the DAG.
    started: Vec<bool>,
    /// Nodes not yet settled (run, panicked, or cancelled).
    remaining: usize,
    /// Nodes currently executing on some thread.
    running: usize,
    /// First panic payload by node index.
    panic: Option<(usize, Box<dyn Any + Send>)>,
    cancelled: bool,
}

impl DagState {
    fn new(pending: Vec<usize>) -> Self {
        let n = pending.len();
        let ready = (0..n).filter(|&i| pending[i] == 0).collect();
        DagState {
            ready,
            pending,
            started: vec![false; n],
            remaining: n,
            running: 0,
            panic: None,
            cancelled: false,
        }
    }

    /// Records a panic from node `i` and cancels every node that has not
    /// started: their dependencies will never settle, so they are marked
    /// settled here or `remaining` would never reach zero.
    fn record_panic(&mut self, i: usize, payload: Box<dyn Any + Send>) {
        if self.panic.as_ref().is_none_or(|(j, _)| i < *j) {
            self.panic = Some((i, payload));
        }
        self.cancelled = true;
        self.ready.clear();
        for j in 0..self.started.len() {
            if !self.started[j] {
                self.started[j] = true;
                self.remaining -= 1;
            }
        }
    }

    /// Settles node `i` after a successful run and returns the dependents
    /// it unblocked.
    fn settle_ok(&mut self, i: usize, dependents: &[Vec<usize>]) -> Vec<usize> {
        self.remaining -= 1;
        let mut unblocked = Vec::new();
        if !self.cancelled {
            for &d in &dependents[i] {
                self.pending[d] -= 1;
                if self.pending[d] == 0 {
                    unblocked.push(d);
                }
            }
        }
        unblocked
    }
}

/// One-shot DAG node bodies, each taken under its mutex exactly once.
type DagBodies<'env, T> = Vec<Mutex<Option<Box<dyn FnOnce() -> T + Send + 'env>>>>;

/// Scoped-mode DAG execution: `min(workers, n)` driver tasks share a
/// ready queue ordered by (priority, spawn index). There is no persistent
/// pool in scoped mode, so unblocked nodes go to the shared queue and an
/// idle driver picks them up. Used only as the A/B baseline; results are
/// bit-identical to the pool-native path.
fn run_dag_driver<'env, T: Send + 'env>(nodes: Vec<DagNode<'env, T>>, workers: usize) -> Vec<T> {
    let (dependents, pending) = dag_edges(&nodes);
    let priorities: Vec<Priority> = nodes.iter().map(|n| n.priority).collect();
    let n = nodes.len();
    let outputs: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let bodies: DagBodies<'env, T> = nodes
        .into_iter()
        .map(|node| Mutex::new(Some(node.body)))
        .collect();
    let state = Mutex::new(DagState::new(pending));
    let cv = Condvar::new();

    let drivers = workers.min(n);
    let driver = |_w: usize| {
        let mut st = state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if st.remaining == 0 {
                cv.notify_all();
                return;
            }
            if let Some(pos) = dag_pick(&st.ready, &priorities) {
                let i = st.ready.swap_remove(pos);
                st.started[i] = true;
                st.running += 1;
                drop(st);
                let body = bodies[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("node runs once");
                let result = catch_unwind(AssertUnwindSafe(body));
                st = state.lock().unwrap_or_else(PoisonError::into_inner);
                st.running -= 1;
                match result {
                    Ok(v) => {
                        outputs.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(v);
                        let unblocked = st.settle_ok(i, &dependents);
                        st.ready.extend(unblocked);
                    }
                    Err(payload) => {
                        st.remaining -= 1;
                        st.record_panic(i, payload);
                    }
                }
                cv.notify_all();
            } else {
                debug_assert!(
                    st.running > 0,
                    "DAG stalled: empty ready queue with nothing running"
                );
                st = cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    };
    let _: Vec<()> = run_workers(drivers, |w| {
        let driver = &driver;
        move || driver(w)
    });

    if let Some((_, payload)) = state
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .panic
        .take()
    {
        resume_unwind(payload);
    }
    outputs
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|o| o.expect("settled node produced no output"))
        .collect()
}

/// Pool-native DAG execution: every node is its own single-task region at
/// the node's priority, and the thread that settles the last dependency of
/// node `d` submits `d`'s region itself. No coordinator blocks: pool
/// threads between DAG nodes serve whatever other regions exist (the
/// nodes' own nested sweeps included), and the calling thread helps
/// through [`Pool::try_run_one`] until the DAG settles.
fn run_dag_steal<'env, T: Send + 'env>(nodes: Vec<DagNode<'env, T>>, workers: usize) -> Vec<T> {
    struct Shared<'env, T: Send + 'env> {
        bodies: DagBodies<'env, T>,
        outputs: Mutex<Vec<Option<T>>>,
        dependents: Vec<Vec<usize>>,
        priorities: Vec<Priority>,
        state: Mutex<DagState>,
        done_cv: Condvar,
        regions: Mutex<Vec<Arc<Region>>>,
        helpers: usize,
    }

    /// Executes node `i`: runs the body, settles it, and submits every
    /// dependent whose pending count reached zero.
    fn exec_node<'env, T: Send + 'env>(shared: &Shared<'env, T>, i: usize) {
        let body = shared.bodies[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("node runs once");
        let result = catch_unwind(AssertUnwindSafe(body));
        let unblocked = {
            let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            match result {
                Ok(v) => {
                    shared.outputs.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(v);
                    let unblocked = st.settle_ok(i, &shared.dependents);
                    for &d in &unblocked {
                        st.started[d] = true;
                    }
                    unblocked
                }
                Err(payload) => {
                    st.remaining -= 1;
                    st.record_panic(i, payload);
                    Vec::new()
                }
            }
        };
        for d in unblocked {
            submit_node(shared, d);
        }
        shared.done_cv.notify_all();
    }

    /// Publishes node `d` as a single-task region at its priority.
    fn submit_node<'env, T: Send + 'env>(shared: &Shared<'env, T>, d: usize) {
        let f: Box<dyn FnOnce() + Send + '_> = Box::new(move || exec_node(shared, d));
        // SAFETY: lifetime erasure only, with the same protocol as
        // `run_tasks_steal`: `run_dag_steal` does not return until every
        // node settles (the `done_cv` wait below), each erased closure is
        // consumed by then, and all node regions are retired from the pool
        // registry before `Shared` leaves scope.
        let f: ErasedTask = unsafe { std::mem::transmute::<_, ErasedTask>(f) };
        let region = Arc::new(Region::new(vec![f], shared.priorities[d]));
        shared
            .regions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&region));
        Pool::get().submit(region, shared.helpers);
    }

    let (dependents, pending) = dag_edges(&nodes);
    let priorities: Vec<Priority> = nodes.iter().map(|n| n.priority).collect();
    let n = nodes.len();
    let shared = Shared {
        bodies: nodes
            .into_iter()
            .map(|node| Mutex::new(Some(node.body)))
            .collect(),
        outputs: Mutex::new((0..n).map(|_| None).collect()),
        dependents,
        priorities,
        state: Mutex::new(DagState::new(pending)),
        done_cv: Condvar::new(),
        regions: Mutex::new(Vec::new()),
        helpers: workers.saturating_sub(1),
    };

    let roots: Vec<usize> = {
        let mut st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        let roots = std::mem::take(&mut st.ready);
        for &i in &roots {
            st.started[i] = true;
        }
        roots
    };
    for i in roots {
        submit_node(&shared, i);
    }

    // The caller is always a worker: it drains DAG nodes and any other
    // region (nested sweeps) until the DAG settles, so even an otherwise
    // saturated pool makes progress — the nesting argument of
    // `run_tasks_steal` carried over.
    let pool = Pool::get();
    loop {
        {
            let st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            if st.remaining == 0 {
                break;
            }
        }
        if !pool.try_run_one() {
            let st = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            if st.remaining == 0 {
                break;
            }
            // Timed wait: a nested sweep published after the scan above
            // notifies the pool, not `done_cv`, so don't sleep through it.
            let (st, _) = shared
                .done_cv
                .wait_timeout(st, std::time::Duration::from_millis(2))
                .unwrap_or_else(PoisonError::into_inner);
            drop(st);
        }
    }

    for region in shared
        .regions
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drain(..)
    {
        region.wait_settled();
        pool.retire(&region);
    }

    if let Some((_, payload)) = shared
        .state
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .panic
        .take()
    {
        resume_unwind(payload);
    }
    shared
        .outputs
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|o| o.expect("settled node produced no output"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envcfg::force_worker_cap;

    fn boxed<'env, T: Send + 'env>(
        fs: Vec<impl FnOnce() -> T + Send + 'env>,
    ) -> Vec<Box<dyn FnOnce() -> T + Send + 'env>> {
        fs.into_iter()
            .map(|f| Box::new(f) as Box<dyn FnOnce() -> T + Send + 'env>)
            .collect()
    }

    #[test]
    fn outputs_land_in_task_order() {
        for mode in [SchedMode::Steal, SchedMode::Scoped] {
            let _g = force_sched_mode(mode);
            let tasks = boxed((0..37).map(|k| move || k * k).collect::<Vec<_>>());
            let out = run_tasks(8, tasks);
            assert_eq!(out, (0..37).map(|k| k * k).collect::<Vec<_>>(), "{mode:?}");
        }
    }

    #[test]
    fn serial_path_runs_inline_in_order() {
        let order = Mutex::new(Vec::new());
        let tasks = boxed(
            (0..5)
                .map(|k| {
                    let order = &order;
                    move || {
                        order.lock().unwrap().push(k);
                        k
                    }
                })
                .collect::<Vec<_>>(),
        );
        let out = run_tasks(1, tasks);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn borrows_from_callers_frame() {
        let _g = force_sched_mode(SchedMode::Steal);
        let data: Vec<usize> = (0..1000).collect();
        let slice = &data[..];
        let tasks = boxed(
            (0..4)
                .map(|w| move || slice.iter().skip(w).step_by(4).sum::<usize>())
                .collect::<Vec<_>>(),
        );
        let out = run_tasks(4, tasks);
        assert_eq!(out.iter().sum::<usize>(), 1000 * 999 / 2);
    }

    #[test]
    fn nested_run_tasks_completes() {
        let _g = force_sched_mode(SchedMode::Steal);
        let tasks = boxed(
            (0..4)
                .map(|outer| {
                    move || {
                        let inner = (0..4)
                            .map(|k| {
                                let f: Box<dyn FnOnce() -> usize + Send> =
                                    Box::new(move || outer * 10 + k);
                                f
                            })
                            .collect::<Vec<_>>();
                        run_tasks(4, inner).into_iter().sum::<usize>()
                    }
                })
                .collect::<Vec<_>>(),
        );
        let out = run_tasks(4, tasks);
        assert_eq!(out, vec![6, 46, 86, 126]);
    }

    #[test]
    fn panic_propagates_lowest_task_index_first() {
        let _g = force_sched_mode(SchedMode::Steal);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks = boxed(
                (0..8)
                    .map(|k| {
                        move || {
                            if k % 2 == 1 {
                                panic!("task {k}");
                            }
                            k
                        }
                    })
                    .collect::<Vec<_>>(),
            );
            run_tasks(4, tasks)
        }));
        let payload = result.expect_err("a task panicked");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        // All tasks settled; the recorded panic is a real task panic.
        assert!(msg.starts_with("task "), "unexpected payload {msg:?}");
    }

    #[test]
    fn index_queue_claims_cover_range_in_order() {
        let q = IndexQueue::with_chunk(103, 10);
        let mut seen = Vec::new();
        let mut last_start = 0;
        while let Some(r) = q.claim() {
            assert!(r.start >= last_start, "chunk starts must be monotonic");
            last_start = r.start;
            seen.extend(r);
        }
        assert_eq!(seen, (0..103).collect::<Vec<_>>());
        assert!(q.claim().is_none());
    }

    #[test]
    fn run_chunked_is_deterministic_across_worker_counts() {
        let _cap = force_worker_cap(usize::MAX);
        let serial = run_chunked(1, 257, |_| Vec::new(), |out: &mut Vec<(usize, usize)>, r| {
            for k in r {
                out.push((k, k * 3));
            }
        });
        let merge = |parts: Vec<Vec<(usize, usize)>>| {
            let mut slots = vec![0usize; 257];
            for (k, v) in parts.into_iter().flatten() {
                slots[k] = v;
            }
            slots
        };
        let expect = merge(serial);
        for workers in [2usize, 4, 8] {
            let parts = run_chunked(workers, 257, |_| Vec::new(), |out, r| {
                for k in r {
                    out.push((k, k * 3));
                }
            });
            assert_eq!(merge(parts), expect, "workers={workers}");
        }
    }

    #[test]
    fn region_scan_honours_priority_then_submission_order() {
        let regions = [
            (Priority::Bulk, false),
            (Priority::Normal, false),
            (Priority::High, false),
            (Priority::High, false),
        ];
        // Priority on: the oldest High region wins.
        assert_eq!(pick_region_slot(&regions, true), Some(2));
        // Priority off: flat submission order.
        assert_eq!(pick_region_slot(&regions, false), Some(0));
        // Drained regions are skipped under both disciplines.
        let drained_high = [
            (Priority::High, true),
            (Priority::Bulk, false),
            (Priority::Normal, false),
        ];
        assert_eq!(pick_region_slot(&drained_high, true), Some(2));
        assert_eq!(pick_region_slot(&drained_high, false), Some(1));
        // Nothing to serve.
        assert_eq!(pick_region_slot(&[(Priority::High, true)], true), None);
        assert_eq!(pick_region_slot(&[], false), None);
    }

    #[test]
    fn dag_outputs_land_in_spawn_order() {
        let _cap = force_worker_cap(usize::MAX);
        for mode in [SchedMode::Steal, SchedMode::Scoped] {
            let _g = force_sched_mode(mode);
            for workers in [1usize, 2, 4, 8] {
                let mut dag: DagBuilder<'_, usize> = DagBuilder::new();
                let mut handles = Vec::new();
                for k in 0..13 {
                    let deps: Vec<TaskHandle> = if k >= 2 {
                        vec![handles[k - 1], handles[k - 2]]
                    } else {
                        Vec::new()
                    };
                    let prio = match k % 3 {
                        0 => Priority::High,
                        1 => Priority::Normal,
                        _ => Priority::Bulk,
                    };
                    handles.push(dag.spawn_dependent(prio, &deps, move || k * k));
                }
                let out = dag.run(workers);
                assert_eq!(
                    out,
                    (0..13).map(|k| k * k).collect::<Vec<_>>(),
                    "{mode:?} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn dag_completion_counts_gate_dependents() {
        let _cap = force_worker_cap(usize::MAX);
        for mode in [SchedMode::Steal, SchedMode::Scoped] {
            let _g = force_sched_mode(mode);
            let slot_a: Mutex<Option<usize>> = Mutex::new(None);
            let slot_b: Mutex<Option<usize>> = Mutex::new(None);
            let mut dag: DagBuilder<'_, ()> = DagBuilder::new();
            let a = dag.spawn(Priority::Normal, || {
                *slot_a.lock().unwrap() = Some(7);
            });
            let b = dag.spawn(Priority::Bulk, || {
                *slot_b.lock().unwrap() = Some(35);
            });
            // The join node must observe both inputs: the completion count
            // is the happens-before edge.
            let joined: Mutex<Option<usize>> = Mutex::new(None);
            let _c = dag.spawn_dependent(Priority::High, &[a, b], || {
                let x = slot_a.lock().unwrap().expect("dep A settled");
                let y = slot_b.lock().unwrap().expect("dep B settled");
                *joined.lock().unwrap() = Some(x + y);
            });
            let _ = dag.run(4);
            assert_eq!(*joined.lock().unwrap(), Some(42), "{mode:?}");
        }
    }

    #[test]
    fn dag_serial_path_runs_priority_then_spawn_order() {
        let order: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        let mut dag: DagBuilder<'_, ()> = DagBuilder::new();
        let push = |name: &'static str| {
            let order = &order;
            move || order.lock().unwrap().push(name)
        };
        let bulk = dag.spawn(Priority::Bulk, push("bulk"));
        let _normal = dag.spawn(Priority::Normal, push("normal"));
        let _high = dag.spawn(Priority::High, push("high"));
        // Not ready until `bulk` settles — and `bulk`, being the lowest
        // class, runs last among the roots, so this lands at the end
        // despite its High class.
        let _tail = dag.spawn_dependent(Priority::High, &[bulk], push("tail"));
        let _ = dag.run(1);
        assert_eq!(*order.lock().unwrap(), vec!["high", "normal", "bulk", "tail"]);
    }

    #[test]
    fn dag_panic_cancels_dependents_and_propagates() {
        let _cap = force_worker_cap(usize::MAX);
        for mode in [SchedMode::Steal, SchedMode::Scoped] {
            let _g = force_sched_mode(mode);
            let ran_dependent = Mutex::new(false);
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut dag: DagBuilder<'_, ()> = DagBuilder::new();
                let boom = dag.spawn(Priority::Normal, || panic!("node failed"));
                let _dep = dag.spawn_dependent(Priority::Normal, &[boom], || {
                    *ran_dependent.lock().unwrap() = true;
                });
                dag.run(4)
            }));
            let payload = result.expect_err("DAG node panicked");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(msg, "node failed", "{mode:?}");
            assert!(!*ran_dependent.lock().unwrap(), "{mode:?}");
        }
    }

    #[test]
    fn pool_really_runs_concurrently() {
        use std::sync::atomic::AtomicBool;
        let _cap = force_worker_cap(usize::MAX);
        let _g = force_sched_mode(SchedMode::Steal);
        // Two tasks that can only finish if they run at the same time.
        let a = AtomicBool::new(false);
        let b = AtomicBool::new(false);
        let spin = |mine: &AtomicBool, theirs: &AtomicBool| {
            mine.store(true, Ordering::SeqCst);
            let start = std::time::Instant::now();
            while !theirs.load(Ordering::SeqCst) {
                if start.elapsed().as_secs() > 10 {
                    panic!("peer task never started — pool not concurrent");
                }
                std::hint::spin_loop();
            }
            true
        };
        let tasks: Vec<Box<dyn FnOnce() -> bool + Send + '_>> = vec![
            Box::new(|| spin(&a, &b)),
            Box::new(|| spin(&b, &a)),
        ];
        assert_eq!(run_tasks(2, tasks), vec![true, true]);
    }
}
