//! The deterministic work-stealing scheduler: one persistent worker pool
//! driving every parallel sweep in the workspace.
//!
//! # Why a shared executor
//!
//! Before this module, each of the ~10 parallel entry points (confluence
//! overlap resolution, the completeness grid, batched PDL denotation,
//! reachability BFS, cross-level checks, relation compose/closure) spawned
//! its own `std::thread::scope` with level-synchronous barriers. Threads
//! were paid for per call, and a stage whose workers went idle at a
//! barrier could not lend them to a concurrently-runnable sibling stage.
//! [`run_tasks`] replaces every one of those call sites: tasks from all
//! active sweeps land in one region list served by one lazily-grown pool,
//! so independent stages of `core::verify` interleave on the same threads.
//!
//! # Determinism contract
//!
//! The executor itself makes no ordering promises beyond "every task runs
//! exactly once and outputs land in task order". Call sites keep the
//! bit-identical-reports contract the same way they always have: each
//! task's result is keyed by its serial position, and merges replay serial
//! order at commit points (slot replay). Dynamic load balancing inside a
//! sweep uses [`IndexQueue`]: chunks of the item range are claimed in
//! monotonically increasing order and processed in increasing index order
//! within a chunk, so by induction every item below the globally earliest
//! stop index has a verdict — exactly the invariant the static striding
//! provided — and deterministic stop axes (node caps checked at serial
//! slot indices) trip at the same minimal index at every worker count.
//!
//! # Modes
//!
//! `ECLECTIC_SCHED=scoped` (or a [`force_sched_mode`] guard) restores the
//! per-call scoped-thread behaviour for A/B debugging; `steal` (the
//! default) uses the persistent pool. Both modes produce bit-identical
//! results — only scheduling changes.

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::envcfg::{self, SchedSpec};

/// Which executor [`run_tasks`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedMode {
    /// The persistent work-stealing pool (default).
    Steal,
    /// Per-call `std::thread::scope` — the pre-scheduler behaviour, kept
    /// as an escape hatch and as the A/B baseline for `bench_sched`.
    Scoped,
}

/// Process-global mode override: 0 = none, 1 = steal, 2 = scoped.
static MODE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes holders of [`force_sched_mode`] guards.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// RAII guard for a forced scheduler mode; restores the environment-driven
/// mode on drop. Holding it excludes every other forced-mode section in
/// the process.
pub struct SchedModeGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for SchedModeGuard {
    fn drop(&mut self) {
        MODE_OVERRIDE.store(0, Ordering::SeqCst);
    }
}

/// Forces the scheduler mode for the lifetime of the returned guard.
/// Intended for tests and benches that A/B the two executors in one
/// process regardless of `ECLECTIC_SCHED`.
#[must_use]
pub fn force_sched_mode(mode: SchedMode) -> SchedModeGuard {
    let lock = MODE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let code = match mode {
        SchedMode::Steal => 1,
        SchedMode::Scoped => 2,
    };
    MODE_OVERRIDE.store(code, Ordering::SeqCst);
    SchedModeGuard { _lock: lock }
}

/// The scheduler mode in effect: a [`force_sched_mode`] override wins,
/// then `ECLECTIC_SCHED`, then the work-stealing default.
#[must_use]
pub fn sched_mode() -> SchedMode {
    match MODE_OVERRIDE.load(Ordering::SeqCst) {
        1 => return SchedMode::Steal,
        2 => return SchedMode::Scoped,
        _ => {}
    }
    match envcfg::env_sched() {
        SchedSpec::Scoped => SchedMode::Scoped,
        SchedSpec::Unset | SchedSpec::Steal | SchedSpec::Invalid => SchedMode::Steal,
    }
}

// ---------------------------------------------------------------------------
// IndexQueue — dynamic chunked claiming over a serial item range
// ---------------------------------------------------------------------------

/// A monotonic chunked claim queue over `0..len`: the dynamic replacement
/// for static `skip(w).step_by(workers)` striding.
///
/// Workers call [`IndexQueue::claim`] to take the next contiguous chunk of
/// item indices. Chunks are handed out in increasing order and each worker
/// processes its chunk in increasing index order, which preserves the
/// prefix invariant the slot-replay merges rely on: when any worker stops
/// at index `k` (the minimal stop observed), every chunk below `k` was
/// claimed earlier and — because deterministic stop axes are pure
/// functions of the index — processed to completion, so every item `< k`
/// has a verdict. The chunk size is fixed at construction (a function of
/// `len` and the requested worker count only), never of runtime timing.
pub struct IndexQueue {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl IndexQueue {
    /// A queue over `0..len` with a chunk size balancing steal granularity
    /// against claim traffic: ~4 chunks per worker, at least 1 item.
    #[must_use]
    pub fn new(len: usize, workers: usize) -> Self {
        let chunk = len.div_ceil(workers.max(1) * 4).max(1);
        Self::with_chunk(len, chunk)
    }

    /// A queue over `0..len` with an explicit chunk size (≥ 1).
    #[must_use]
    pub fn with_chunk(len: usize, chunk: usize) -> Self {
        IndexQueue {
            next: AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next chunk of indices, or `None` when the range is
    /// exhausted. Chunk starts are strictly increasing across all callers.
    #[must_use]
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..self.len.min(start + self.chunk))
    }

    /// Total number of items in the range.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// ---------------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------------

/// Hard cap on pool threads — a backstop far above any sane
/// `ECLECTIC_THREADS`, not a tuning knob.
const MAX_POOL_THREADS: usize = 256;

/// A lifetime-erased task. The closure really borrows the submitting
/// call's stack frame (`'env`); the region protocol guarantees it is
/// consumed before that frame returns (see the safety argument in
/// [`run_tasks_steal`]).
type ErasedTask = Box<dyn FnOnce() + Send + 'static>;

/// One submitted batch of tasks: the unit pool threads scan for work.
struct Region {
    /// Task slots, each taken exactly once by its claimer. The per-slot
    /// mutex is uncontended (the atomic cursor hands each index to one
    /// claimer); it exists to make `take` safe from any thread.
    tasks: Vec<Mutex<Option<ErasedTask>>>,
    /// Claim cursor over `tasks`.
    next: AtomicUsize,
    /// Count of settled tasks (executed, or panicked-and-recorded),
    /// guarded with [`Region::cv`] for the submitter's completion wait.
    settled: Mutex<usize>,
    cv: Condvar,
    /// First panic payload by task index — replayed to the submitter so a
    /// panicking sweep behaves like its serial equivalent.
    panic: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
}

impl Region {
    fn new(tasks: Vec<ErasedTask>) -> Self {
        Region {
            tasks: tasks.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            next: AtomicUsize::new(0),
            settled: Mutex::new(0),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Whether every task has been claimed (not necessarily finished).
    fn drained(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.tasks.len()
    }

    /// Claims the next unclaimed task index, if any.
    fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.tasks.len()).then_some(i)
    }

    /// Runs claimed task `i`, recording a panic instead of unwinding into
    /// the pool thread, and settles it.
    fn run(&self, i: usize) {
        let task = self.tasks[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(task) = task {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                let mut first = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
                if first.as_ref().is_none_or(|(j, _)| i < *j) {
                    *first = Some((i, payload));
                }
            }
        }
        let mut settled = self.settled.lock().unwrap_or_else(PoisonError::into_inner);
        *settled += 1;
        if *settled == self.tasks.len() {
            self.cv.notify_all();
        }
    }

    /// Blocks until every task has settled.
    fn wait_settled(&self) {
        let mut settled = self.settled.lock().unwrap_or_else(PoisonError::into_inner);
        while *settled < self.tasks.len() {
            settled = self
                .cv
                .wait(settled)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct PoolState {
    /// Active regions in submission order. Pool threads serve the oldest
    /// region with unclaimed work first, then move on — this is the
    /// cross-stage sharing: a thread that drains one sweep's tasks
    /// immediately steals from whatever sweep is still running.
    regions: VecDeque<Arc<Region>>,
    /// Threads ever spawned (persistent; they park when idle).
    threads: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

impl Pool {
    fn get() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(PoolState {
                regions: VecDeque::new(),
                threads: 0,
            }),
            work_cv: Condvar::new(),
        })
    }

    /// Publishes a region and grows the pool toward `helpers` threads.
    fn submit(&'static self, region: Arc<Region>, helpers: usize) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.regions.push_back(region);
        let want = helpers.min(MAX_POOL_THREADS);
        while st.threads < want {
            st.threads += 1;
            std::thread::Builder::new()
                .name("eclectic-sched".into())
                .spawn(move || self.worker_loop())
                .expect("spawn scheduler worker");
        }
        drop(st);
        self.work_cv.notify_all();
    }

    /// Drops a settled region from the registry.
    fn retire(&self, region: &Arc<Region>) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.regions.retain(|r| !Arc::ptr_eq(r, region));
    }

    fn worker_loop(&'static self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            let found = st.regions.iter().find(|r| !r.drained()).cloned();
            match found {
                Some(region) => {
                    drop(st);
                    while let Some(i) = region.claim() {
                        region.run(i);
                    }
                    drop(region);
                    st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                }
                None => {
                    st = self
                        .work_cv
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// run_tasks — the single entry point every sweep uses
// ---------------------------------------------------------------------------

/// Runs `tasks` to completion and returns their outputs in task order.
///
/// This is the one parallel primitive in the workspace: every former
/// `thread::scope` sweep builds its per-worker closures (typically
/// `min(workers, items)` of them, pulling item chunks from a shared
/// [`IndexQueue`]) and hands them here. `workers` is the parallelism the
/// caller wants — under [`SchedMode::Steal`] it sizes the persistent
/// pool's help (`workers - 1` pool threads; the calling thread always
/// executes tasks too), under [`SchedMode::Scoped`] it is the scoped
/// spawn count. Outputs are slotted by task index, so results are
/// independent of which thread ran what.
///
/// With `workers <= 1` or fewer than two tasks the tasks run inline on
/// the calling thread, in order — the serial path costs no allocation,
/// no locks and no pool wakeup.
///
/// If a task panics, the first panic in task order is resumed on the
/// calling thread after all tasks settle, mirroring the serial behaviour.
#[must_use]
pub fn run_tasks<'env, T: Send + 'env>(
    workers: usize,
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
) -> Vec<T> {
    if workers <= 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    match sched_mode() {
        SchedMode::Scoped => run_tasks_scoped(tasks),
        SchedMode::Steal => run_tasks_steal(workers, tasks),
    }
}

/// The pre-scheduler baseline: one fresh scoped thread per task beyond the
/// first, the first task on the calling thread.
fn run_tasks_scoped<'env, T: Send + 'env>(
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
) -> Vec<T> {
    let mut tasks = tasks.into_iter();
    let first = tasks.next().expect("checked non-empty");
    std::thread::scope(|s| {
        let handles: Vec<_> = tasks.map(|t| s.spawn(t)).collect();
        let mut out = vec![first()];
        for h in handles {
            match h.join() {
                Ok(v) => out.push(v),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    })
}

/// The persistent-pool path.
fn run_tasks_steal<'env, T: Send + 'env>(
    workers: usize,
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
) -> Vec<T> {
    let n = tasks.len();
    let outputs: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let region = {
        let mut erased: Vec<ErasedTask> = Vec::with_capacity(n);
        for (k, task) in tasks.into_iter().enumerate() {
            let out = &outputs;
            let f: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let r = task();
                out.lock().unwrap_or_else(PoisonError::into_inner)[k] = Some(r);
            });
            // SAFETY: lifetime erasure only. The closure borrows `outputs`
            // and whatever `task` captured from the caller's frame
            // (`'env`). Every erased task is consumed — executed or
            // panicked-and-recorded — before `wait_settled` returns below,
            // and the region is retired from the pool registry before this
            // function returns, so no pool thread can observe the closure
            // after `'env` ends. Pool threads may briefly hold the
            // region `Arc` after settlement, but by then every task slot
            // is `None` and the region contains no borrowed data.
            let f: ErasedTask = unsafe { std::mem::transmute::<_, ErasedTask>(f) };
            erased.push(f);
        }
        Arc::new(Region::new(erased))
    };

    let pool = Pool::get();
    pool.submit(Arc::clone(&region), workers.saturating_sub(1));
    // The caller is always a worker: even with an empty pool the region
    // completes, which is what makes nested `run_tasks` deadlock-free.
    while let Some(i) = region.claim() {
        region.run(i);
    }
    region.wait_settled();
    pool.retire(&region);

    if let Some((_, payload)) = region
        .panic
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        resume_unwind(payload);
    }
    outputs
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|o| o.expect("settled task produced no output"))
        .collect()
}

/// Builds `workers` uniform worker closures (via `make`, called with each
/// worker's serial position) and runs them as one task batch. This is the
/// common shape for sweeps whose workers all run the same loop over a
/// shared [`IndexQueue`]: it hides the `Box<dyn FnOnce>` ceremony
/// [`run_tasks`] needs from heterogeneous call sites.
#[must_use]
pub fn run_workers<'env, T, F, M>(workers: usize, mut make: M) -> Vec<T>
where
    T: Send + 'env,
    F: FnOnce() -> T + Send + 'env,
    M: FnMut(usize) -> F,
{
    let tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>> = (0..workers)
        .map(|w| Box::new(make(w)) as Box<dyn FnOnce() -> T + Send + 'env>)
        .collect();
    run_tasks(workers, tasks)
}

/// Convenience for the ubiquitous "fan `0..len` items across `workers`
/// with chunked claiming" shape: runs `work(range)` for every claimed
/// chunk on each of `min(workers, len)` tasks and returns the per-task
/// outputs (task order). `make_worker` is called once per task with the
/// task's serial position to build per-worker state.
#[must_use]
pub fn run_chunked<T, W, F>(
    workers: usize,
    len: usize,
    mut make_worker: W,
    work: F,
) -> Vec<T>
where
    T: Send,
    W: FnMut(usize) -> T,
    F: Fn(&mut T, Range<usize>) + Sync,
{
    let workers = workers.min(len).max(1);
    let queue = IndexQueue::new(len, workers);
    let queue = &queue;
    let work = &work;
    let tasks: Vec<Box<dyn FnOnce() -> T + Send + '_>> = (0..workers)
        .map(|w| {
            let mut state = make_worker(w);
            let f: Box<dyn FnOnce() -> T + Send + '_> = Box::new(move || {
                while let Some(range) = queue.claim() {
                    work(&mut state, range);
                }
                state
            });
            f
        })
        .collect();
    run_tasks(workers, tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envcfg::force_worker_cap;

    fn boxed<'env, T: Send + 'env>(
        fs: Vec<impl FnOnce() -> T + Send + 'env>,
    ) -> Vec<Box<dyn FnOnce() -> T + Send + 'env>> {
        fs.into_iter()
            .map(|f| Box::new(f) as Box<dyn FnOnce() -> T + Send + 'env>)
            .collect()
    }

    #[test]
    fn outputs_land_in_task_order() {
        for mode in [SchedMode::Steal, SchedMode::Scoped] {
            let _g = force_sched_mode(mode);
            let tasks = boxed((0..37).map(|k| move || k * k).collect::<Vec<_>>());
            let out = run_tasks(8, tasks);
            assert_eq!(out, (0..37).map(|k| k * k).collect::<Vec<_>>(), "{mode:?}");
        }
    }

    #[test]
    fn serial_path_runs_inline_in_order() {
        let order = Mutex::new(Vec::new());
        let tasks = boxed(
            (0..5)
                .map(|k| {
                    let order = &order;
                    move || {
                        order.lock().unwrap().push(k);
                        k
                    }
                })
                .collect::<Vec<_>>(),
        );
        let out = run_tasks(1, tasks);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn borrows_from_callers_frame() {
        let _g = force_sched_mode(SchedMode::Steal);
        let data: Vec<usize> = (0..1000).collect();
        let slice = &data[..];
        let tasks = boxed(
            (0..4)
                .map(|w| move || slice.iter().skip(w).step_by(4).sum::<usize>())
                .collect::<Vec<_>>(),
        );
        let out = run_tasks(4, tasks);
        assert_eq!(out.iter().sum::<usize>(), 1000 * 999 / 2);
    }

    #[test]
    fn nested_run_tasks_completes() {
        let _g = force_sched_mode(SchedMode::Steal);
        let tasks = boxed(
            (0..4)
                .map(|outer| {
                    move || {
                        let inner = (0..4)
                            .map(|k| {
                                let f: Box<dyn FnOnce() -> usize + Send> =
                                    Box::new(move || outer * 10 + k);
                                f
                            })
                            .collect::<Vec<_>>();
                        run_tasks(4, inner).into_iter().sum::<usize>()
                    }
                })
                .collect::<Vec<_>>(),
        );
        let out = run_tasks(4, tasks);
        assert_eq!(out, vec![6, 46, 86, 126]);
    }

    #[test]
    fn panic_propagates_lowest_task_index_first() {
        let _g = force_sched_mode(SchedMode::Steal);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks = boxed(
                (0..8)
                    .map(|k| {
                        move || {
                            if k % 2 == 1 {
                                panic!("task {k}");
                            }
                            k
                        }
                    })
                    .collect::<Vec<_>>(),
            );
            run_tasks(4, tasks)
        }));
        let payload = result.expect_err("a task panicked");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        // All tasks settled; the recorded panic is a real task panic.
        assert!(msg.starts_with("task "), "unexpected payload {msg:?}");
    }

    #[test]
    fn index_queue_claims_cover_range_in_order() {
        let q = IndexQueue::with_chunk(103, 10);
        let mut seen = Vec::new();
        let mut last_start = 0;
        while let Some(r) = q.claim() {
            assert!(r.start >= last_start, "chunk starts must be monotonic");
            last_start = r.start;
            seen.extend(r);
        }
        assert_eq!(seen, (0..103).collect::<Vec<_>>());
        assert!(q.claim().is_none());
    }

    #[test]
    fn run_chunked_is_deterministic_across_worker_counts() {
        let _cap = force_worker_cap(usize::MAX);
        let serial = run_chunked(1, 257, |_| Vec::new(), |out: &mut Vec<(usize, usize)>, r| {
            for k in r {
                out.push((k, k * 3));
            }
        });
        let merge = |parts: Vec<Vec<(usize, usize)>>| {
            let mut slots = vec![0usize; 257];
            for (k, v) in parts.into_iter().flatten() {
                slots[k] = v;
            }
            slots
        };
        let expect = merge(serial);
        for workers in [2usize, 4, 8] {
            let parts = run_chunked(workers, 257, |_| Vec::new(), |out, r| {
                for k in r {
                    out.push((k, k * 3));
                }
            });
            assert_eq!(merge(parts), expect, "workers={workers}");
        }
    }

    #[test]
    fn pool_really_runs_concurrently() {
        use std::sync::atomic::AtomicBool;
        let _cap = force_worker_cap(usize::MAX);
        let _g = force_sched_mode(SchedMode::Steal);
        // Two tasks that can only finish if they run at the same time.
        let a = AtomicBool::new(false);
        let b = AtomicBool::new(false);
        let spin = |mine: &AtomicBool, theirs: &AtomicBool| {
            mine.store(true, Ordering::SeqCst);
            let start = std::time::Instant::now();
            while !theirs.load(Ordering::SeqCst) {
                if start.elapsed().as_secs() > 10 {
                    panic!("peer task never started — pool not concurrent");
                }
                std::hint::spin_loop();
            }
            true
        };
        let tasks: Vec<Box<dyn FnOnce() -> bool + Send + '_>> = vec![
            Box::new(|| spin(&a, &b)),
            Box::new(|| spin(&b, &a)),
        ];
        assert_eq!(run_tasks(2, tasks), vec![true, true]);
    }
}
