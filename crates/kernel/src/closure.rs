//! Demand-driven reflexive-transitive closure — the formula-directed
//! layer between the relation backends and the PDL/RPR semantics.
//!
//! Materializing `m(p*)` eagerly closes **all** `n` source rows of the
//! underlying transition relation, even when the enclosing formula only
//! ever asks three questions about the closure: *which rows does this
//! source reach* (composition), *do all reached rows satisfy φ* (box),
//! *does some reached row satisfy φ* (diamond). A [`LazyClosure`] wraps
//! a borrowed base [`Rel`] and answers exactly those questions,
//! expanding the per-source semi-naive fixpoint only for the sources
//! actually demanded:
//!
//! - [`row`](LazyClosure::row) runs one per-source fixpoint on first
//!   demand and memoizes the sorted reachable set (4 bytes per entry,
//!   charged against the budget's relation-memory axis);
//! - [`box_star_states`](LazyClosure::box_star_states) and
//!   [`diamond_star_states`](LazyClosure::diamond_star_states) answer
//!   modal sweeps over the *whole* closure without materializing any
//!   row: a per-source traversal stops at the first violation (box) or
//!   first witness (diamond), and two verdict memos shared across the
//!   sweep (`good`/`bad`, resp. `yes`/`no`) make the total sweep cost
//!   near-linear in the edge count — once a node's subtree verdict is
//!   known, no later source re-explores it;
//! - [`materialize_governed`](LazyClosure::materialize_governed)
//!   produces the full closure `Rel` when a caller really needs one.
//!   With an empty memo it delegates to the backend's parallel
//!   `closure_governed` (bit-identical to the eager path at every
//!   worker count); with memoized rows it merges them in serial row
//!   order, so reports stay deterministic.
//!
//! The verdict memos are sound because reachability is transitive:
//! every node visited during a *completed* clean box traversal from
//! `s` only reaches nodes reachable from `s`, so "all reachable
//! satisfy" transfers from `s` to each visited node — and dually for
//! the exhausted diamond traversal. Verdicts are semantic (a property
//! of the pair set, not the traversal order), so sweeps are
//! deterministic at any demand order.

use crate::bitmat::ROW_POLL_STRIDE;
use crate::budget::{Budget, BudgetExceeded};
use crate::rel::Rel;

/// A demand-driven view of `base*` (the reflexive-transitive closure of
/// a borrowed base relation) with per-source memoization.
pub struct LazyClosure<'a> {
    base: &'a Rel,
    /// Memoized closure rows, indexed by source; `None` = not demanded.
    memo: Vec<Option<Box<[u32]>>>,
    /// Number of memoized rows.
    filled: usize,
    /// Raw bytes held by the memo (4 per entry), charged to the
    /// relation-memory budget axis.
    bytes: usize,
    /// Reusable membership scratch for traversals, `base.dim()` flags.
    scratch: Vec<bool>,
}

impl<'a> LazyClosure<'a> {
    /// A lazy closure over `base` with nothing demanded yet.
    #[must_use]
    pub fn new(base: &'a Rel) -> Self {
        LazyClosure {
            base,
            memo: Vec::new(),
            filled: 0,
            bytes: 0,
            scratch: Vec::new(),
        }
    }

    /// The borrowed base relation.
    #[must_use]
    pub fn base(&self) -> &Rel {
        self.base
    }

    /// Number of source rows whose closure has been memoized.
    #[must_use]
    pub fn memoized_rows(&self) -> usize {
        self.filled
    }

    /// Raw bytes held by the per-source memo (4 per reached entry).
    #[must_use]
    pub fn memo_bytes(&self) -> usize {
        self.bytes
    }

    fn ensure_scratch(&mut self) {
        if self.scratch.is_empty() {
            self.scratch = vec![false; self.base.dim()];
        }
        if self.memo.is_empty() {
            self.memo = (0..self.base.dim()).map(|_| None).collect();
        }
    }

    /// The sorted closure row of `src`: every node reachable from `src`
    /// in the base relation, including `src` itself. Computed by one
    /// semi-naive fixpoint on first demand, memoized after.
    ///
    /// # Errors
    /// Returns the tripped axis; the memo keeps previously demanded rows.
    ///
    /// # Panics
    /// Panics if `src` is out of range.
    pub fn row(&mut self, src: usize, budget: &Budget) -> Result<&[u32], BudgetExceeded> {
        assert!(src < self.base.dim(), "closure source out of range");
        self.ensure_scratch();
        if self.memo[src].is_none() {
            if let Some(reason) = budget.check_rel(self.bytes) {
                return Err(reason);
            }
            let mut reach: Vec<u32> = vec![src as u32];
            self.scratch[src] = true;
            let mut delta = 0usize;
            while delta < reach.len() {
                let x = reach[delta] as usize;
                delta += 1;
                for t in self.base.iter_row(x) {
                    if !self.scratch[t] {
                        self.scratch[t] = true;
                        reach.push(t as u32);
                    }
                }
            }
            for &t in &reach {
                self.scratch[t as usize] = false;
            }
            reach.sort_unstable();
            self.bytes += 4 * reach.len();
            self.filled += 1;
            self.memo[src] = Some(reach.into_boxed_slice());
        }
        Ok(self.memo[src].as_deref().expect("just filled"))
    }

    /// The closure as a full [`Rel`] at the base dimension, with rows
    /// `>= n` cleared (the `star_governed(n)` contract: sources are
    /// restricted to the universe, but traversal still passes through
    /// out-of-universe intermediate nodes).
    ///
    /// With an empty memo this delegates to the backend's parallel
    /// `closure_governed` — the eager fast path, bit-identical at every
    /// worker count. With memoized rows it merges per-source rows in
    /// serial row order (demanding the missing ones), so the result is
    /// identical either way.
    ///
    /// # Errors
    /// Returns the tripped axis; partial output is discarded.
    ///
    /// # Panics
    /// Panics if `n` exceeds the base dimension.
    pub fn materialize_governed(
        &mut self,
        n: usize,
        budget: &Budget,
        threads: usize,
    ) -> Result<Rel, BudgetExceeded> {
        let d = self.base.dim();
        assert!(n <= d, "materialize bound exceeds base dimension");
        if self.filled == 0 {
            let mut closed = self.base.closure_governed(budget, threads)?;
            for r in n..d {
                closed.clear_row(r);
            }
            return Ok(closed);
        }
        let mut out = Rel::new(d);
        for src in 0..n {
            if src % ROW_POLL_STRIDE == 0 {
                if let Some(reason) = budget.check_rel(self.bytes) {
                    return Err(reason);
                }
            }
            self.row(src, budget)?;
            if let Some(row) = &self.memo[src] {
                for &c in row.iter() {
                    out.set(src, c as usize);
                }
            }
        }
        Ok(out)
    }

    /// One `[p*]`-modality sweep over the closure without materializing
    /// it: `out[i]` is true iff every node reachable from `i` (including
    /// `i`) lies in `inner`; reached nodes `>= inner.len()` count as
    /// unsatisfied — exactly `closure.box_states(inner)` after a
    /// `star_governed(inner.len())`.
    ///
    /// Each source's traversal stops at the first violation, and two
    /// sweep-wide verdict memos (`good`: all reachable satisfy; `bad`:
    /// reaches a violation) prevent re-exploration, so the whole sweep
    /// is near-linear in the edge count. `budget` is polled every
    /// [`ROW_POLL_STRIDE`] sources with the memo's byte footprint.
    ///
    /// # Errors
    /// Returns the tripped axis; partial verdicts are discarded.
    ///
    /// # Panics
    /// Panics if `inner` is longer than the base dimension.
    pub fn box_star_states(
        &mut self,
        inner: &[bool],
        budget: &Budget,
    ) -> Result<Vec<bool>, BudgetExceeded> {
        self.sweep(inner, budget, true)
    }

    /// One `⟨p*⟩`-modality sweep over the closure without materializing
    /// it: `out[i]` is true iff some node reachable from `i` (including
    /// `i`) lies in `inner` — exactly `closure.diamond_states(inner)`
    /// after a `star_governed(inner.len())`. Dual memoization to
    /// [`box_star_states`](Self::box_star_states) (`yes`: reaches a
    /// witness; `no`: reaches none).
    ///
    /// # Errors
    /// Returns the tripped axis; partial verdicts are discarded.
    ///
    /// # Panics
    /// Panics if `inner` is longer than the base dimension.
    pub fn diamond_star_states(
        &mut self,
        inner: &[bool],
        budget: &Budget,
    ) -> Result<Vec<bool>, BudgetExceeded> {
        self.sweep(inner, budget, false)
    }

    /// Shared pruned-sweep engine. For `is_box` the verdict memos read
    /// "all reachable satisfy" / "reaches a violation"; for diamond they
    /// read "reaches a witness" / "reaches none" — the traversal is the
    /// same with the polarity flipped.
    fn sweep(
        &mut self,
        inner: &[bool],
        budget: &Budget,
        is_box: bool,
    ) -> Result<Vec<bool>, BudgetExceeded> {
        let d = self.base.dim();
        assert!(inner.len() <= d, "sweep sources exceed base dimension");
        self.ensure_scratch();
        let sat = |t: usize| t < inner.len() && inner[t];
        // For box: settled_pos = "all reachable satisfy", settled_neg =
        // "reaches a violation". For diamond: settled_pos = "reaches a
        // witness", settled_neg = "reaches none". The *positive* verdict
        // is the one that lets a clean/exhausted traversal settle every
        // visited node at once (box: clean completion; diamond:
        // exhaustion settles the negative — polarity handled below).
        let mut settled_all = vec![false; d];
        let mut settled_one = vec![false; d];
        let mut out = vec![false; inner.len()];
        let mut stack: Vec<u32> = Vec::new();
        let mut visited: Vec<u32> = Vec::new();
        for (i, slot) in out.iter_mut().enumerate() {
            if i % ROW_POLL_STRIDE == 0 {
                if let Some(reason) = budget.check_rel(self.bytes) {
                    return Err(reason);
                }
            }
            if is_box {
                if settled_all[i] {
                    *slot = true;
                    continue;
                }
                if settled_one[i] || !sat(i) {
                    settled_one[i] = true;
                    continue;
                }
            } else {
                if settled_one[i] {
                    *slot = true;
                    continue;
                }
                if settled_all[i] {
                    continue;
                }
                if sat(i) {
                    settled_one[i] = true;
                    *slot = true;
                    continue;
                }
            }
            // Depth-first reachability from `i`; verdicts are semantic,
            // so the traversal order never shows in the output.
            visited.clear();
            stack.clear();
            self.scratch[i] = true;
            visited.push(i as u32);
            stack.push(i as u32);
            // For box, `short` means "violation found"; for diamond,
            // "witness found".
            let mut short = false;
            'dfs: while let Some(x) = stack.pop() {
                for t in self.base.iter_row(x as usize) {
                    if self.scratch[t] {
                        continue;
                    }
                    if is_box {
                        if settled_one[t] || !sat(t) {
                            if !sat(t) && t < d {
                                settled_one[t] = true;
                            }
                            short = true;
                            break 'dfs;
                        }
                        self.scratch[t] = true;
                        visited.push(t as u32);
                        if !settled_all[t] {
                            stack.push(t as u32);
                        }
                    } else {
                        if settled_one[t] || sat(t) {
                            if sat(t) {
                                settled_one[t] = true;
                            }
                            short = true;
                            break 'dfs;
                        }
                        self.scratch[t] = true;
                        visited.push(t as u32);
                        if !settled_all[t] {
                            stack.push(t as u32);
                        }
                    }
                }
            }
            for &v in &visited {
                self.scratch[v as usize] = false;
            }
            if is_box {
                if short {
                    settled_one[i] = true;
                } else {
                    // Clean completion: everything reachable from any
                    // visited node is reachable from `i`, hence satisfies.
                    for &v in &visited {
                        settled_all[v as usize] = true;
                    }
                    *slot = true;
                }
            } else if short {
                settled_one[i] = true;
                *slot = true;
            } else {
                // Exhausted without a witness: nothing reachable from any
                // visited node satisfies.
                for &v in &visited {
                    settled_all[v as usize] = true;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::{force_rel_backend, Rel, RelBackend, RelChoice};

    fn from_pairs(n: usize, backend: RelBackend, pairs: &[(usize, usize)]) -> Rel {
        let mut m = Rel::with_backend(n, backend);
        for &(a, b) in pairs {
            m.set(a, b);
        }
        m
    }

    #[test]
    fn rows_match_eager_closure_on_demand() {
        let pairs = [(0, 1), (1, 2), (2, 0), (5, 9), (9, 9)];
        for backend in [RelBackend::Dense, RelBackend::Sparse, RelBackend::Compressed] {
            let base = from_pairs(10, backend, &pairs);
            let eager = base.closure_reflexive_transitive(1);
            let mut lazy = LazyClosure::new(&base);
            // Demand out of order; memoization must not disturb results.
            for src in [5usize, 0, 5, 9, 3] {
                let row = lazy.row(src, &Budget::unlimited()).unwrap().to_vec();
                let want: Vec<u32> = eager.iter_row(src).map(|c| c as u32).collect();
                assert_eq!(row, want, "src {src} on {backend:?}");
            }
            assert_eq!(lazy.memoized_rows(), 4);
            assert!(lazy.memo_bytes() > 0);
        }
    }

    #[test]
    fn materialize_matches_star_contract_both_paths() {
        let _g = force_rel_backend(RelChoice::AutoAt(64));
        // Base dim 12 > n = 10: rows >= n must be cleared, but traversal
        // still passes through node 10 (5 -> 10 -> 6).
        let pairs = [(0, 1), (1, 2), (5, 10), (10, 6), (11, 3)];
        let base = from_pairs(12, RelBackend::Sparse, &pairs);
        let mut eager = base.closure_reflexive_transitive(1);
        for r in 10..12 {
            eager.clear_row(r);
        }
        // Fast path: empty memo.
        let mut lazy = LazyClosure::new(&base);
        let fast = lazy
            .materialize_governed(10, &Budget::unlimited(), 1)
            .unwrap();
        assert!(fast.set_eq(&eager));
        // Memoized path: pre-demand a row, then materialize serially.
        let mut lazy2 = LazyClosure::new(&base);
        lazy2.row(5, &Budget::unlimited()).unwrap();
        let merged = lazy2
            .materialize_governed(10, &Budget::unlimited(), 1)
            .unwrap();
        assert!(merged.set_eq(&eager));
        // A zero-byte relation-memory cap trips the memoized path too.
        let capped = Budget::unlimited().with_max_rel_entries(0);
        assert_eq!(
            lazy2.materialize_governed(10, &capped, 1).err(),
            Some(BudgetExceeded::RelMemory)
        );
    }

    #[test]
    fn modal_sweeps_match_materialized_closure() {
        let pairs = [
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 11),
            (5, 5),
            (7, 8),
            (8, 9),
        ];
        for backend in [RelBackend::Dense, RelBackend::Sparse, RelBackend::Compressed] {
            let base = from_pairs(12, backend, &pairs);
            let n = 10usize;
            let mut closed = base.closure_reflexive_transitive(1);
            for r in n..12 {
                closed.clear_row(r);
            }
            // Several formulas over the same closure reuse the verdict
            // memos; each must still match the eager sweep.
            let inners = [
                vec![true; n],
                vec![false; n],
                (0..n).map(|i| i != 9).collect::<Vec<_>>(),
                (0..n).map(|i| i % 2 == 0).collect::<Vec<_>>(),
            ];
            let mut lazy = LazyClosure::new(&base);
            for inner in &inners {
                assert_eq!(
                    lazy.box_star_states(inner, &Budget::unlimited()).unwrap(),
                    closed.box_states(inner),
                    "box {inner:?} on {backend:?}"
                );
            }
            let mut lazy_d = LazyClosure::new(&base);
            for inner in &inners {
                assert_eq!(
                    lazy_d
                        .diamond_star_states(inner, &Budget::unlimited())
                        .unwrap(),
                    closed.diamond_states(inner),
                    "diamond {inner:?} on {backend:?}"
                );
            }
            // Sweeps never materialized anything.
            assert_eq!(lazy.memoized_rows(), 0);
            assert_eq!(lazy_d.memoized_rows(), 0);
        }
    }

    #[test]
    fn sweeps_respect_budget_axes() {
        let base = from_pairs(8, RelBackend::Sparse, &[(0, 1)]);
        let mut lazy = LazyClosure::new(&base);
        let cancelled = {
            let tok = crate::budget::CancelToken::new();
            tok.cancel();
            Budget::unlimited().with_cancel(tok)
        };
        assert_eq!(
            lazy.box_star_states(&[true; 8], &cancelled),
            Err(BudgetExceeded::Cancelled)
        );
        assert_eq!(
            lazy.diamond_star_states(&[false; 8], &cancelled),
            Err(BudgetExceeded::Cancelled)
        );
        assert_eq!(lazy.row(0, &cancelled), Err(BudgetExceeded::Cancelled));
    }
}
