//! Sparse adjacency matrices — the large-universe backend for binary
//! relations over finite universes.
//!
//! A [`SparseRel`] stores an `n × n` boolean matrix as one sorted `u32`
//! column list per row. Where the dense [`BitMatrix`](crate::BitMatrix)
//! spends `n · ⌈n/64⌉` words regardless of fill (a million-state relation
//! is ~125 GB), the sparse backend spends one entry per *pair*, so the
//! denotations the RPR/PDL semantics actually build — functional updates,
//! test diagonals, bounded-image closures — stay proportional to their
//! content and universes two orders of magnitude beyond the dense wall
//! become checkable.
//!
//! Union and meet are two-pointer sorted merges per row; composition is a
//! per-row gather of `other`'s rows followed by a sort-merge dedup; the
//! reflexive-transitive closure is a per-source *semi-naive* fixpoint: a
//! delta worklist holds exactly the rows discovered by the previous round,
//! and only their adjacency is scanned again (nodes already in the closed
//! set are never re-expanded).
//!
//! # Iteration order
//!
//! [`SparseRel::iter`] and [`SparseRel::iter_row`] stream pairs in exactly
//! the ascending lexicographic `(r, c)` order a `BTreeSet<(usize, usize)>`
//! would produce — the same contract the dense backend upholds, so the two
//! are interchangeable under every report built on top.
//!
//! # Parallelism and budgets
//!
//! `compose` and the closure fan output rows across
//! [`effective_workers`] in contiguous chunks, exactly like the dense
//! kernel; each output row depends only on the inputs, so results are
//! bit-identical at every worker count. The `*_governed` variants poll a
//! [`Budget`] every [`ROW_POLL_STRIDE`] rows through
//! [`Budget::check_rel`], passing the estimated *bytes* (4 per adjacency
//! entry) the operation has materialized so far — the same currency every
//! backend reports, so `RelMemory` means one thing regardless of
//! representation — and a runaway closure on a huge universe trips
//! instead of OOMing.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::bitmat::{row_task_chunk, ROW_POLL_STRIDE};
use crate::budget::{Budget, BudgetExceeded};
use crate::envcfg::{effective_workers, par_min_dim};

/// A sparse square boolean matrix over `0..n`: one sorted, deduplicated
/// `u32` column list per row.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SparseRel {
    n: usize,
    rows: Vec<Vec<u32>>,
    /// Cached total of `rows[i].len()` — kept current by every mutator so
    /// [`entry_count`](Self::entry_count) is O(1). The budget polls inside
    /// `ROW_POLL_STRIDE` loops call it every stride; re-summing a
    /// million-row matrix there would turn each poll into a full scan.
    entries: usize,
}

/// Merges two sorted, deduplicated slices into their sorted union.
fn merge_union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merges two sorted, deduplicated slices into their sorted intersection.
fn merge_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl SparseRel {
    /// The empty (all-zero) relation of dimension `n`.
    ///
    /// # Panics
    /// Panics if `n` exceeds `u32::MAX` (column indices are stored as
    /// `u32`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            u32::try_from(n).is_ok(),
            "SparseRel dimension exceeds u32 index space"
        );
        SparseRel {
            n,
            rows: vec![Vec::new(); n],
            entries: 0,
        }
    }

    /// The identity relation of dimension `n` (a diagonal fill).
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = SparseRel::new(n);
        for (i, row) in m.rows.iter_mut().enumerate() {
            row.push(i as u32);
        }
        m.entries = n;
        m
    }

    /// The dimension `n`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total adjacency entries allocated (one per pair). O(1): the count
    /// is cached and kept current by every mutator, so the budget polls
    /// that fire every [`ROW_POLL_STRIDE`] rows stay constant-time.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Whether bit `(r, c)` is set.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of range.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.n && c < self.n);
        self.rows[r].binary_search(&(c as u32)).is_ok()
    }

    /// Sets bit `(r, c)`; returns whether it was previously clear.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of range.
    pub fn set(&mut self, r: usize, c: usize) -> bool {
        assert!(r < self.n && c < self.n);
        let row = &mut self.rows[r];
        match row.binary_search(&(c as u32)) {
            Ok(_) => false,
            Err(pos) => {
                row.insert(pos, c as u32);
                self.entries += 1;
                true
            }
        }
    }

    /// Row `r` as a sorted column-index slice.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &[u32] {
        assert!(r < self.n);
        &self.rows[r]
    }

    /// Clears row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn clear_row(&mut self, r: usize) {
        assert!(r < self.n);
        self.entries -= self.rows[r].len();
        self.rows[r].clear();
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.entry_count()
    }

    /// Whether no bit is set.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.entries == 0
    }

    /// Sorted-merge union of `other` into `self`, row by row.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn or_assign(&mut self, other: &SparseRel) {
        assert_eq!(self.n, other.n, "SparseRel dimension mismatch");
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            if b.is_empty() {
                continue;
            }
            self.entries -= a.len();
            if a.is_empty() {
                *a = b.clone();
            } else {
                *a = merge_union(a, b);
            }
            self.entries += a.len();
        }
    }

    /// Sorted-merge intersection of `other` into `self`, row by row.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn and_assign(&mut self, other: &SparseRel) {
        assert_eq!(self.n, other.n, "SparseRel dimension mismatch");
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            if a.is_empty() {
                continue;
            }
            self.entries -= a.len();
            if b.is_empty() {
                a.clear();
            } else {
                *a = merge_intersect(a, b);
            }
            self.entries += a.len();
        }
    }

    /// Ascending iterator over the set columns of row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn iter_row(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(r).iter().map(|&c| c as usize)
    }

    /// Ascending lexicographic iterator over all set `(r, c)` pairs — the
    /// `BTreeSet<(usize, usize)>` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(r, row)| row.iter().map(move |&c| (r, c as usize)))
    }

    /// A copy resized to dimension `d ≥ n` (new rows are empty).
    ///
    /// # Panics
    /// Panics if `d < n` (shrinking would silently drop pairs).
    #[must_use]
    pub fn resized(&self, d: usize) -> SparseRel {
        assert!(d >= self.n, "SparseRel cannot shrink");
        let mut out = SparseRel::new(d);
        out.rows[..self.n].clone_from_slice(&self.rows);
        out.entries = self.entries;
        out
    }

    /// Relational composition (`self` applied first): output row `a` is
    /// the sort-merge union of `other`'s rows `b` over every entry `b` of
    /// `self`'s row `a`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn compose(&self, other: &SparseRel) -> SparseRel {
        self.compose_threads(other, 1)
    }

    /// As [`compose`](Self::compose), fanning output rows across
    /// [`effective_workers`]`(threads)` workers (bit-identical at every
    /// worker count).
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn compose_threads(&self, other: &SparseRel, threads: usize) -> SparseRel {
        match self.compose_governed(other, &Budget::unlimited(), threads) {
            Ok(m) => m,
            Err(_) => unreachable!("unlimited budget never trips"),
        }
    }

    /// As [`compose_threads`](Self::compose_threads), polling `budget`
    /// every [`ROW_POLL_STRIDE`] rows via [`Budget::check_rel`] with the
    /// estimated bytes (4 per entry) materialized so far across all
    /// workers.
    ///
    /// # Errors
    /// Returns the tripped axis; partial output is discarded.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn compose_governed(
        &self,
        other: &SparseRel,
        budget: &Budget,
        threads: usize,
    ) -> Result<SparseRel, BudgetExceeded> {
        assert_eq!(self.n, other.n, "SparseRel dimension mismatch");
        let n = self.n;
        let mut out = SparseRel::new(n);
        if n == 0 {
            return Ok(out);
        }
        let entries = AtomicUsize::new(0);
        let compose_rows = |first: usize, rows: &mut [Vec<u32>]| -> Result<(), BudgetExceeded> {
            let mut buf: Vec<u32> = Vec::new();
            for (i, orow) in rows.iter_mut().enumerate() {
                if i % ROW_POLL_STRIDE == 0 {
                    if let Some(reason) = budget.check_rel(4 * entries.load(Ordering::Relaxed)) {
                        return Err(reason);
                    }
                }
                let a = first + i;
                buf.clear();
                for &b in &self.rows[a] {
                    buf.extend_from_slice(&other.rows[b as usize]);
                }
                buf.sort_unstable();
                buf.dedup();
                entries.fetch_add(buf.len(), Ordering::Relaxed);
                *orow = buf.clone();
            }
            Ok(())
        };
        let workers = effective_workers(threads).min(n.max(1));
        if workers <= 1 || n < par_min_dim() {
            compose_rows(0, &mut out.rows)?;
        } else {
            let chunk = row_task_chunk(n, workers);
            let compose_rows = &compose_rows;
            let tasks: Vec<Box<dyn FnOnce() -> Result<(), BudgetExceeded> + Send + '_>> = out
                .rows
                .chunks_mut(chunk)
                .enumerate()
                .map(|(c, rows)| {
                    let f: Box<dyn FnOnce() -> Result<(), BudgetExceeded> + Send + '_> =
                        Box::new(move || compose_rows(c * chunk, rows));
                    f
                })
                .collect();
            for o in crate::sched::run_tasks(workers, tasks) {
                o?;
            }
        }
        out.entries = entries.load(Ordering::Relaxed);
        Ok(out)
    }

    /// The reflexive-transitive closure: row `r` of the result holds every
    /// node reachable from `r` (including `r` itself), computed by one
    /// semi-naive delta fixpoint per source row.
    #[must_use]
    pub fn closure_reflexive_transitive(&self, threads: usize) -> SparseRel {
        match self.closure_governed(&Budget::unlimited(), threads) {
            Ok(m) => m,
            Err(_) => unreachable!("unlimited budget never trips"),
        }
    }

    /// As [`closure_reflexive_transitive`](Self::closure_reflexive_transitive),
    /// polling `budget` every [`ROW_POLL_STRIDE`] source rows via
    /// [`Budget::check_rel`] with the estimated bytes (4 per entry)
    /// materialized so far.
    ///
    /// # Errors
    /// Returns the tripped axis; the partial closure is discarded.
    pub fn closure_governed(
        &self,
        budget: &Budget,
        threads: usize,
    ) -> Result<SparseRel, BudgetExceeded> {
        let n = self.n;
        let mut out = SparseRel::new(n);
        if n == 0 {
            return Ok(out);
        }
        let entries = AtomicUsize::new(0);
        let close_rows = |first: usize, rows: &mut [Vec<u32>]| -> Result<(), BudgetExceeded> {
            // Per-worker scratch: a membership flag per node, reset after
            // each source by walking only the nodes that were reached.
            let mut in_closed = vec![false; n];
            for (i, seen) in rows.iter_mut().enumerate() {
                if i % ROW_POLL_STRIDE == 0 {
                    if let Some(reason) = budget.check_rel(4 * entries.load(Ordering::Relaxed)) {
                        return Err(reason);
                    }
                }
                let src = first + i;
                // Semi-naive delta iteration: `reach[delta..]` is exactly
                // the set of rows discovered by the previous round; only
                // their adjacency is scanned, and already-closed nodes are
                // never re-expanded.
                let mut reach: Vec<u32> = vec![src as u32];
                in_closed[src] = true;
                let mut delta = 0usize;
                while delta < reach.len() {
                    let x = reach[delta] as usize;
                    delta += 1;
                    for &t in &self.rows[x] {
                        if !in_closed[t as usize] {
                            in_closed[t as usize] = true;
                            reach.push(t);
                        }
                    }
                }
                for &t in &reach {
                    in_closed[t as usize] = false;
                }
                reach.sort_unstable();
                entries.fetch_add(reach.len(), Ordering::Relaxed);
                *seen = reach;
            }
            Ok(())
        };
        let workers = effective_workers(threads).min(n.max(1));
        if workers <= 1 || n < par_min_dim() {
            close_rows(0, &mut out.rows)?;
        } else {
            let chunk = row_task_chunk(n, workers);
            let close_rows = &close_rows;
            let tasks: Vec<Box<dyn FnOnce() -> Result<(), BudgetExceeded> + Send + '_>> = out
                .rows
                .chunks_mut(chunk)
                .enumerate()
                .map(|(c, rows)| {
                    let f: Box<dyn FnOnce() -> Result<(), BudgetExceeded> + Send + '_> =
                        Box::new(move || close_rows(c * chunk, rows));
                    f
                })
                .collect();
            for o in crate::sched::run_tasks(workers, tasks) {
                o?;
            }
        }
        out.entries = entries.load(Ordering::Relaxed);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> SparseRel {
        let mut m = SparseRel::new(n);
        for &(a, b) in pairs {
            m.set(a, b);
        }
        m
    }

    #[test]
    fn set_get_iter_ascending() {
        let mut m = SparseRel::new(130);
        assert!(m.set(129, 1));
        assert!(m.set(0, 65));
        assert!(m.set(0, 2));
        assert!(!m.set(0, 2));
        assert!(m.get(0, 65) && !m.get(65, 0));
        assert_eq!(
            m.iter().collect::<Vec<_>>(),
            vec![(0, 2), (0, 65), (129, 1)]
        );
        assert_eq!(m.count_ones(), 3);
        assert_eq!(m.entry_count(), 3);
    }

    #[test]
    fn identity_union_meet() {
        let id = SparseRel::identity(70);
        assert_eq!(id.count_ones(), 70);
        assert!(id.get(69, 69) && !id.get(69, 68));
        let mut a = from_pairs(70, &[(0, 1), (2, 3)]);
        let b = from_pairs(70, &[(0, 1), (4, 5)]);
        a.or_assign(&b);
        assert_eq!(a.count_ones(), 3);
        a.and_assign(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(0, 1), (4, 5)]);
    }

    #[test]
    fn compose_gathers_rows() {
        let r = from_pairs(80, &[(0, 64), (1, 2)]);
        let s = from_pairs(80, &[(64, 3), (64, 79), (2, 0)]);
        let rs = r.compose(&s);
        assert_eq!(
            rs.iter().collect::<Vec<_>>(),
            vec![(0, 3), (0, 79), (1, 0)]
        );
        let id = SparseRel::identity(80);
        assert_eq!(r.compose(&id), r);
        assert_eq!(id.compose(&r), r);
    }

    #[test]
    fn closure_matches_dense_kernel() {
        let pairs = [(0, 1), (1, 2), (2, 0), (5, 299)];
        let sp = from_pairs(300, &pairs);
        let mut dn = crate::BitMatrix::new(300);
        for &(a, b) in &pairs {
            dn.set(a, b);
        }
        let cs = sp.closure_reflexive_transitive(1);
        let cd = dn.closure_reflexive_transitive(1);
        assert_eq!(cs.iter().collect::<Vec<_>>(), cd.iter().collect::<Vec<_>>());
        for threads in [2, 4, 8] {
            assert_eq!(sp.closure_reflexive_transitive(threads), cs);
            assert_eq!(sp.compose_threads(&sp, threads), sp.compose(&sp));
        }
    }

    #[test]
    fn governed_ops_trip_on_timing_and_memory_axes() {
        let m = from_pairs(64, &[(0, 1)]);
        let cancelled = {
            let tok = crate::budget::CancelToken::new();
            tok.cancel();
            Budget::unlimited().with_cancel(tok)
        };
        assert_eq!(
            m.compose_governed(&m, &cancelled, 1),
            Err(BudgetExceeded::Cancelled)
        );
        assert_eq!(
            m.closure_governed(&cancelled, 2),
            Err(BudgetExceeded::Cancelled)
        );
        // A zero-entry memory cap trips before the first row of output.
        let capped = Budget::unlimited().with_max_rel_entries(0);
        assert_eq!(m.closure_governed(&capped, 1), Err(BudgetExceeded::RelMemory));
        assert!(m.closure_governed(&Budget::unlimited(), 2).is_ok());
    }

    #[test]
    fn capped_sparse_closure_trips_instead_of_materializing() {
        // A long chain: the closure holds ~n²/2 entries (~8.4 MB at 4
        // bytes each), far over the 10 kB cap.
        let n = 2048;
        let mut m = SparseRel::new(n);
        for i in 0..n - 1 {
            m.set(i, i + 1);
        }
        let capped = Budget::unlimited().with_max_rel_entries(10_000);
        for threads in [1, 4] {
            assert_eq!(
                m.closure_governed(&capped, threads),
                Err(BudgetExceeded::RelMemory)
            );
        }
        // The same closure under an unlimited budget does materialize.
        let full = m.closure_reflexive_transitive(1);
        assert_eq!(full.entry_count(), n * (n + 1) / 2);
    }

    #[test]
    fn resize_preserves_pairs() {
        let m = from_pairs(3, &[(0, 2), (2, 1)]);
        let big = m.resized(200);
        assert_eq!(big.iter().collect::<Vec<_>>(), m.iter().collect::<Vec<_>>());
        assert_eq!(big.dim(), 200);
    }
}
