//! Compressed chunk-container rows — the million-state backend for binary
//! relations over finite universes.
//!
//! A [`CompressedRel`] stores an `n × n` boolean matrix as one
//! [`CompressedRow`] per row; each row splits its column set into
//! 2¹⁶-aligned chunks (Roaring-style), and every chunk is held by the
//! smallest of three [`Container`] encodings:
//!
//! - **Array** — a sorted `u16` list, 2 bytes per entry; best below ~4k
//!   entries per chunk.
//! - **Bitmap** — 1024 × `u64` words (8192 bytes flat); best for dense,
//!   scattered chunks where the array would exceed 4096 entries.
//! - **Runs** — sorted, coalesced `(start, last)` intervals, 4 bytes per
//!   run; best for the contiguous blocks that reflexive-transitive
//!   closures of chain/ring-shaped transition relations produce (a
//!   fully-reachable block of any size is a single 4-byte run).
//!
//! Bulk-built rows (compose, closure, [`CompressedRow::from_sorted`],
//! union, meet) are *normalized*: the encoding is re-chosen per chunk by
//! byte size, preferring the array on ties. Point inserts ([`set`]) keep
//! the current encoding and only promote array→bitmap past 4096 entries
//! and runs→bitmap past 2048 runs, exactly like Roaring — a row built by
//! scattered `set` calls may therefore be larger than its normalized
//! form, but never asymptotically so.
//!
//! Every container caches its cardinality, so [`Container::len`] is O(1)
//! and row/relation counts are sums over containers, not entries.
//!
//! # Iteration order
//!
//! Chunks are kept sorted by chunk key and every container iterates its
//! values ascending, so [`CompressedRel::iter`] and
//! [`CompressedRel::iter_row`] stream pairs in exactly the ascending
//! lexicographic `(r, c)` order a `BTreeSet<(usize, usize)>` would
//! produce — the same contract the dense and sparse backends uphold.
//!
//! # Parallelism and budgets
//!
//! `compose` and the closure fan output rows across
//! [`effective_workers`] in contiguous chunks, exactly like the other
//! kernels; each output row depends only on the inputs, so results are
//! bit-identical at every worker count. The `*_governed` variants poll a
//! [`Budget`] every [`ROW_POLL_STRIDE`] rows through
//! [`Budget::check_rel`], passing the *estimated bytes* the operation
//! has materialized so far (see [`CompressedRow::byte_size`] for the
//! formula), so a runaway closure trips `RelMemory` instead of OOMing.
//!
//! [`set`]: CompressedRel::set

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::bitmat::{row_task_chunk, ROW_POLL_STRIDE};
use crate::budget::{Budget, BudgetExceeded};
use crate::envcfg::{effective_workers, par_min_dim};

/// Columns per chunk: each container covers one 2¹⁶-aligned column range.
const CHUNK_SPAN: usize = 1 << 16;

/// Words in a bitmap container (`CHUNK_SPAN / 64`).
const BITMAP_WORDS: usize = CHUNK_SPAN / 64;

/// Flat byte size of a bitmap container's payload.
const BITMAP_BYTES: usize = BITMAP_WORDS * 8;

/// Array containers promote to bitmaps past this cardinality — at 4096
/// entries the array's `2 · len` bytes reach the bitmap's flat 8192.
const ARRAY_MAX: usize = BITMAP_BYTES / 2;

/// Run containers promote to bitmaps past this run count — at 2048 runs
/// the run list's `4 · runs` bytes reach the bitmap's flat 8192.
const RUNS_MAX: usize = BITMAP_BYTES / 4;

/// Estimated bookkeeping bytes charged per container (chunk key,
/// discriminant, cached cardinality) in the byte-accounting formula.
pub(crate) const CONTAINER_OVERHEAD: usize = 8;

/// One 2¹⁶-column chunk of a row, in whichever encoding is smallest.
#[derive(Debug, Clone)]
enum Container {
    /// Sorted, deduplicated values (2 bytes each).
    Array(Vec<u16>),
    /// Flat bitmap (8192 bytes) with a cached popcount.
    Bitmap {
        /// 1024 words covering the chunk's 65536 columns.
        words: Box<[u64; BITMAP_WORDS]>,
        /// Cached number of set bits.
        len: u32,
    },
    /// Sorted, coalesced inclusive `(start, last)` intervals (4 bytes
    /// each) with a cached cardinality.
    Runs {
        /// Disjoint, non-adjacent, ascending intervals.
        runs: Vec<(u16, u16)>,
        /// Cached total cardinality across all runs.
        len: u32,
    },
}

impl Container {
    /// Cardinality, O(1) (cached for bitmap and run encodings).
    fn len(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitmap { len, .. } | Container::Runs { len, .. } => *len as usize,
        }
    }

    /// Estimated payload bytes of this encoding (excluding
    /// [`CONTAINER_OVERHEAD`]).
    fn bytes(&self) -> usize {
        match self {
            Container::Array(v) => 2 * v.len(),
            Container::Bitmap { .. } => BITMAP_BYTES,
            Container::Runs { runs, .. } => 4 * runs.len(),
        }
    }

    /// Whether `v` is present.
    fn contains(&self, v: u16) -> bool {
        match self {
            Container::Array(vals) => vals.binary_search(&v).is_ok(),
            Container::Bitmap { words, .. } => {
                words[usize::from(v) >> 6] & (1u64 << (v & 63)) != 0
            }
            Container::Runs { runs, .. } => {
                let i = runs.partition_point(|&(s, _)| s <= v);
                i > 0 && runs[i - 1].1 >= v
            }
        }
    }

    /// Inserts `v`; returns whether it was previously absent. Promotes
    /// array→bitmap past [`ARRAY_MAX`] entries and runs→bitmap past
    /// [`RUNS_MAX`] runs; never demotes (normalization happens on
    /// bulk-built rows).
    fn insert(&mut self, v: u16) -> bool {
        match self {
            Container::Array(vals) => match vals.binary_search(&v) {
                Ok(_) => false,
                Err(pos) => {
                    vals.insert(pos, v);
                    if vals.len() > ARRAY_MAX {
                        *self = bitmap_from_sorted(vals);
                    }
                    true
                }
            },
            Container::Bitmap { words, len } => {
                let w = &mut words[usize::from(v) >> 6];
                let bit = 1u64 << (v & 63);
                if *w & bit != 0 {
                    return false;
                }
                *w |= bit;
                *len += 1;
                true
            }
            Container::Runs { runs, len } => {
                // Locate the insertion point; u32 arithmetic avoids u16
                // overflow when coalescing against a run ending at 65535.
                let v32 = u32::from(v);
                let i = runs.partition_point(|&(s, _)| s <= v);
                if i > 0 && u32::from(runs[i - 1].1) >= v32 {
                    return false;
                }
                let touches_left = i > 0 && u32::from(runs[i - 1].1) + 1 == v32;
                let touches_right = i < runs.len() && v32 + 1 == u32::from(runs[i].0);
                match (touches_left, touches_right) {
                    (true, true) => {
                        runs[i - 1].1 = runs[i].1;
                        runs.remove(i);
                    }
                    (true, false) => runs[i - 1].1 = v,
                    (false, true) => runs[i].0 = v,
                    (false, false) => runs.insert(i, (v, v)),
                }
                *len += 1;
                if runs.len() > RUNS_MAX {
                    let mut expanded: Vec<(u32, u32)> = Vec::with_capacity(runs.len());
                    for &(s, e) in runs.iter() {
                        expanded.push((u32::from(s), u32::from(e)));
                    }
                    *self = from_runs32(&expanded).expect("non-empty runs");
                }
                true
            }
        }
    }

    /// Appends this container's maximal runs to `out` as inclusive u32
    /// interval bounds within `0..65536`.
    fn extend_runs(&self, out: &mut Vec<(u32, u32)>) {
        match self {
            Container::Array(vals) => {
                let mut it = vals.iter().copied();
                if let Some(first) = it.next() {
                    let mut cur = (u32::from(first), u32::from(first));
                    for v in it {
                        let v = u32::from(v);
                        if v == cur.1 + 1 {
                            cur.1 = v;
                        } else {
                            out.push(cur);
                            cur = (v, v);
                        }
                    }
                    out.push(cur);
                }
            }
            Container::Bitmap { words, .. } => {
                let mut cur: Option<(u32, u32)> = None;
                for (k, &w) in words.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        let v = (k as u32) * 64 + w.trailing_zeros();
                        w &= w - 1;
                        match cur {
                            Some((_, last)) if last + 1 == v => cur = cur.map(|(s, _)| (s, v)),
                            Some(done) => {
                                out.push(done);
                                cur = Some((v, v));
                            }
                            None => cur = Some((v, v)),
                        }
                    }
                }
                if let Some(done) = cur {
                    out.push(done);
                }
            }
            Container::Runs { runs, .. } => {
                for &(s, e) in runs {
                    out.push((u32::from(s), u32::from(e)));
                }
            }
        }
    }

    /// Ascending iterator over the container's values.
    fn iter(&self) -> ContainerIter<'_> {
        match self {
            Container::Array(vals) => ContainerIter::Array(vals.iter()),
            Container::Bitmap { words, .. } => ContainerIter::Bitmap {
                words: &words[..],
                k: 0,
                word: 0,
            },
            Container::Runs { runs, .. } => ContainerIter::Runs {
                runs: runs.iter(),
                cur: None,
            },
        }
    }
}

/// Semantic equality: same value set, regardless of encoding (a
/// `set`-built array and a closure-built run list may hold the same
/// chunk).
impl PartialEq for Container {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Container {}

/// Builds a bitmap container from sorted, deduplicated values.
fn bitmap_from_sorted(vals: &[u16]) -> Container {
    let mut words = Box::new([0u64; BITMAP_WORDS]);
    for &v in vals {
        words[usize::from(v) >> 6] |= 1u64 << (v & 63);
    }
    Container::Bitmap {
        words,
        len: vals.len() as u32,
    }
}

/// Normalizes a sorted, disjoint, non-adjacent run sequence (inclusive
/// u32 bounds within `0..65536`) into the smallest container encoding:
/// `2·card` (array) vs `4·runs` (run list) vs 8192 (bitmap) bytes,
/// preferring the array on ties. Returns `None` for an empty sequence.
fn from_runs32(runs: &[(u32, u32)]) -> Option<Container> {
    if runs.is_empty() {
        return None;
    }
    let card: usize = runs.iter().map(|&(s, e)| (e - s + 1) as usize).sum();
    let array_bytes = 2 * card;
    let run_bytes = 4 * runs.len();
    if array_bytes <= run_bytes && array_bytes <= BITMAP_BYTES {
        let mut vals = Vec::with_capacity(card);
        for &(s, e) in runs {
            for v in s..=e {
                vals.push(v as u16);
            }
        }
        Some(Container::Array(vals))
    } else if run_bytes <= BITMAP_BYTES {
        Some(Container::Runs {
            runs: runs.iter().map(|&(s, e)| (s as u16, e as u16)).collect(),
            len: card as u32,
        })
    } else {
        let mut words = Box::new([0u64; BITMAP_WORDS]);
        for &(s, e) in runs {
            for v in s..=e {
                words[(v as usize) >> 6] |= 1u64 << (v & 63);
            }
        }
        Some(Container::Bitmap {
            words,
            len: card as u32,
        })
    }
}

/// Merges two sorted maximal-run sequences into their coalesced union.
fn union_runs(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j == b.len() || (i < a.len() && a[i].0 <= b[j].0) {
            let r = a[i];
            i += 1;
            r
        } else {
            let r = b[j];
            j += 1;
            r
        };
        match out.last_mut() {
            // Overlapping or adjacent runs coalesce.
            Some(last) if next.0 <= last.1 + 1 => last.1 = last.1.max(next.1),
            _ => out.push(next),
        }
    }
    out
}

/// Intersects two sorted maximal-run sequences.
fn intersect_runs(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo <= hi {
            out.push((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Ascending iterator over one container's values (`0..65536`).
enum ContainerIter<'a> {
    /// Sorted-array scan.
    Array(std::slice::Iter<'a, u16>),
    /// Word-by-word bitmap scan.
    Bitmap {
        /// The bitmap's words.
        words: &'a [u64],
        /// Next word index to load.
        k: usize,
        /// Remaining bits of the current word.
        word: u64,
    },
    /// Run expansion.
    Runs {
        /// Remaining runs.
        runs: std::slice::Iter<'a, (u16, u16)>,
        /// Current run as `(next, last)` inclusive u32 bounds.
        cur: Option<(u32, u32)>,
    },
}

impl Iterator for ContainerIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            ContainerIter::Array(it) => it.next().map(|&v| u32::from(v)),
            ContainerIter::Bitmap { words, k, word } => loop {
                if *word != 0 {
                    let tz = word.trailing_zeros();
                    *word &= *word - 1;
                    return Some(((*k as u32) - 1) * 64 + tz);
                }
                if *k == words.len() {
                    return None;
                }
                *word = words[*k];
                *k += 1;
            },
            ContainerIter::Runs { runs, cur } => {
                if cur.is_none() {
                    *cur = runs.next().map(|&(s, e)| (u32::from(s), u32::from(e)));
                }
                let (next, last) = (*cur)?;
                *cur = if next < last { Some((next + 1, last)) } else { None };
                Some(next)
            }
        }
    }
}

/// One row of a [`CompressedRel`]: 2¹⁶-aligned chunks sorted by chunk
/// key, each held by the smallest [`Container`] encoding. Empty chunks
/// are never stored.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompressedRow {
    /// `(chunk key, container)` pairs, ascending by key.
    chunks: Vec<(u32, Container)>,
}

impl CompressedRow {
    /// Cardinality of the row — a sum of cached container counts, O(#chunks).
    #[must_use]
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|(_, c)| c.len()).sum()
    }

    /// Whether the row is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Estimated bytes of the row under the byte-accounting formula:
    /// per container, [`CONTAINER_OVERHEAD`] plus 2 bytes per array
    /// entry / 8192 flat bytes per bitmap / 4 bytes per run.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.chunks
            .iter()
            .map(|(_, c)| CONTAINER_OVERHEAD + c.bytes())
            .sum()
    }

    /// Whether column `c` is present.
    #[must_use]
    pub fn contains(&self, c: u32) -> bool {
        let key = c >> 16;
        match self.chunks.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.chunks[i].1.contains((c & 0xFFFF) as u16),
            Err(_) => false,
        }
    }

    /// Inserts column `c`; returns whether it was previously absent.
    pub fn insert(&mut self, c: u32) -> bool {
        let key = c >> 16;
        let v = (c & 0xFFFF) as u16;
        match self.chunks.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.chunks[i].1.insert(v),
            Err(pos) => {
                self.chunks.insert(pos, (key, Container::Array(vec![v])));
                true
            }
        }
    }

    /// Clears the row.
    pub fn clear(&mut self) {
        self.chunks.clear();
    }

    /// Ascending iterator over the row's columns.
    #[must_use]
    pub fn iter(&self) -> RowValues<'_> {
        RowValues {
            chunks: self.chunks.iter(),
            cur: None,
        }
    }

    /// Builds a normalized row from sorted, deduplicated columns: split
    /// by chunk, coalesce each chunk's values into maximal runs, pick
    /// the smallest encoding per chunk.
    #[must_use]
    pub fn from_sorted(vals: &[u32]) -> CompressedRow {
        let mut chunks = Vec::new();
        let mut runs: Vec<(u32, u32)> = Vec::new();
        let mut i = 0;
        while i < vals.len() {
            let key = vals[i] >> 16;
            runs.clear();
            let mut cur = (vals[i] & 0xFFFF, vals[i] & 0xFFFF);
            i += 1;
            while i < vals.len() && vals[i] >> 16 == key {
                let v = vals[i] & 0xFFFF;
                if v == cur.1 + 1 {
                    cur.1 = v;
                } else {
                    runs.push(cur);
                    cur = (v, v);
                }
                i += 1;
            }
            runs.push(cur);
            chunks.push((key, from_runs32(&runs).expect("non-empty chunk")));
        }
        CompressedRow { chunks }
    }

    /// Normalized union of two rows via per-chunk run merges.
    #[must_use]
    pub fn union(&self, other: &CompressedRow) -> CompressedRow {
        let mut chunks = Vec::with_capacity(self.chunks.len().max(other.chunks.len()));
        let (mut i, mut j) = (0, 0);
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ka, ca) = &self.chunks[i];
            let (kb, cb) = &other.chunks[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => {
                    chunks.push((*ka, ca.clone()));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    chunks.push((*kb, cb.clone()));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    ra.clear();
                    rb.clear();
                    ca.extend_runs(&mut ra);
                    cb.extend_runs(&mut rb);
                    let merged = union_runs(&ra, &rb);
                    chunks.push((*ka, from_runs32(&merged).expect("union of non-empty")));
                    i += 1;
                    j += 1;
                }
            }
        }
        chunks.extend(self.chunks[i..].iter().cloned());
        chunks.extend(other.chunks[j..].iter().cloned());
        CompressedRow { chunks }
    }

    /// Normalized intersection of two rows via per-chunk run merges.
    #[must_use]
    pub fn intersect(&self, other: &CompressedRow) -> CompressedRow {
        let mut chunks = Vec::new();
        let (mut i, mut j) = (0, 0);
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        while i < self.chunks.len() && j < other.chunks.len() {
            let (ka, ca) = &self.chunks[i];
            let (kb, cb) = &other.chunks[j];
            match ka.cmp(kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    ra.clear();
                    rb.clear();
                    ca.extend_runs(&mut ra);
                    cb.extend_runs(&mut rb);
                    let met = intersect_runs(&ra, &rb);
                    if let Some(c) = from_runs32(&met) {
                        chunks.push((*ka, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        CompressedRow { chunks }
    }
}

/// Ascending iterator over one [`CompressedRow`]'s columns.
pub struct RowValues<'a> {
    chunks: std::slice::Iter<'a, (u32, Container)>,
    cur: Option<(u32, ContainerIter<'a>)>,
}

impl Iterator for RowValues<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if let Some((base, it)) = &mut self.cur {
                if let Some(v) = it.next() {
                    return Some((*base << 16) | v);
                }
            }
            let (key, c) = self.chunks.next()?;
            self.cur = Some((*key, c.iter()));
        }
    }
}

/// A compressed square boolean matrix over `0..n`: one chunk-container
/// row per source, with a cached total entry count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompressedRel {
    n: usize,
    rows: Vec<CompressedRow>,
    entries: usize,
}

impl CompressedRel {
    /// The empty (all-zero) relation of dimension `n`.
    ///
    /// # Panics
    /// Panics if `n` exceeds `u32::MAX` (column indices are stored as
    /// chunked `u16` values under `u32` keys).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            u32::try_from(n).is_ok(),
            "CompressedRel dimension exceeds u32 index space"
        );
        CompressedRel {
            n,
            rows: vec![CompressedRow::default(); n],
            entries: 0,
        }
    }

    /// The identity relation of dimension `n` (a diagonal fill).
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = CompressedRel::new(n);
        for (i, row) in m.rows.iter_mut().enumerate() {
            row.insert(i as u32);
        }
        m.entries = n;
        m
    }

    /// The dimension `n`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total pairs stored — a cached running count, O(1).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Estimated bytes under the byte-accounting formula, summed over all
    /// containers — the units the relation-memory budget axis accounts
    /// for this backend. O(#containers), not O(#entries).
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.rows.iter().map(CompressedRow::byte_size).sum()
    }

    /// Whether bit `(r, c)` is set.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of range.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.n && c < self.n);
        self.rows[r].contains(c as u32)
    }

    /// Sets bit `(r, c)`; returns whether it was previously clear.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of range.
    pub fn set(&mut self, r: usize, c: usize) -> bool {
        assert!(r < self.n && c < self.n);
        let fresh = self.rows[r].insert(c as u32);
        if fresh {
            self.entries += 1;
        }
        fresh
    }

    /// Row `r`'s chunk-container row.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &CompressedRow {
        assert!(r < self.n);
        &self.rows[r]
    }

    /// Clears row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn clear_row(&mut self, r: usize) {
        assert!(r < self.n);
        self.entries -= self.rows[r].len();
        self.rows[r].clear();
    }

    /// Number of set bits, O(1) (cached).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.entries
    }

    /// Whether no bit is set.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.entries == 0
    }

    /// Union of `other` into `self`, row by row (normalized rows).
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn or_assign(&mut self, other: &CompressedRel) {
        assert_eq!(self.n, other.n, "CompressedRel dimension mismatch");
        let mut entries = 0;
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            if !b.is_empty() {
                if a.is_empty() {
                    *a = b.clone();
                } else {
                    *a = a.union(b);
                }
            }
            entries += a.len();
        }
        self.entries = entries;
    }

    /// Intersection of `other` into `self`, row by row (normalized rows).
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn and_assign(&mut self, other: &CompressedRel) {
        assert_eq!(self.n, other.n, "CompressedRel dimension mismatch");
        let mut entries = 0;
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            if !a.is_empty() {
                if b.is_empty() {
                    a.clear();
                } else {
                    *a = a.intersect(b);
                }
            }
            entries += a.len();
        }
        self.entries = entries;
    }

    /// Ascending iterator over the set columns of row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn iter_row(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(r).iter().map(|c| c as usize)
    }

    /// Ascending lexicographic iterator over all set `(r, c)` pairs — the
    /// `BTreeSet<(usize, usize)>` order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(r, row)| row.iter().map(move |c| (r, c as usize)))
    }

    /// A copy resized to dimension `d ≥ n` (new rows are empty).
    ///
    /// # Panics
    /// Panics if `d < n` (shrinking would silently drop pairs).
    #[must_use]
    pub fn resized(&self, d: usize) -> CompressedRel {
        assert!(d >= self.n, "CompressedRel cannot shrink");
        let mut out = CompressedRel::new(d);
        out.rows[..self.n].clone_from_slice(&self.rows);
        out.entries = self.entries;
        out
    }

    /// Relational composition (`self` applied first): output row `a`
    /// gathers `other`'s rows over every entry of `self`'s row `a`, then
    /// normalizes. See [`compose_governed`](Self::compose_governed).
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn compose(&self, other: &CompressedRel) -> CompressedRel {
        match self.compose_governed(other, &Budget::unlimited(), 1) {
            Ok(m) => m,
            Err(_) => unreachable!("unlimited budget never trips"),
        }
    }

    /// As [`compose`](Self::compose), fanning output rows across
    /// [`effective_workers`]`(threads)` workers (bit-identical at every
    /// worker count) and polling `budget` every [`ROW_POLL_STRIDE`] rows
    /// via [`Budget::check_rel`] with the estimated bytes materialized so
    /// far.
    ///
    /// # Errors
    /// Returns the tripped axis; partial output is discarded.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn compose_governed(
        &self,
        other: &CompressedRel,
        budget: &Budget,
        threads: usize,
    ) -> Result<CompressedRel, BudgetExceeded> {
        assert_eq!(self.n, other.n, "CompressedRel dimension mismatch");
        let n = self.n;
        let mut out = CompressedRel::new(n);
        if n == 0 {
            return Ok(out);
        }
        let bytes = AtomicUsize::new(0);
        let compose_rows =
            |first: usize, rows: &mut [CompressedRow]| -> Result<(), BudgetExceeded> {
                let mut buf: Vec<u32> = Vec::new();
                for (i, orow) in rows.iter_mut().enumerate() {
                    if i % ROW_POLL_STRIDE == 0 {
                        if let Some(reason) = budget.check_rel(bytes.load(Ordering::Relaxed)) {
                            return Err(reason);
                        }
                    }
                    let a = first + i;
                    buf.clear();
                    for b in self.rows[a].iter() {
                        buf.extend(other.rows[b as usize].iter());
                    }
                    buf.sort_unstable();
                    buf.dedup();
                    *orow = CompressedRow::from_sorted(&buf);
                    bytes.fetch_add(orow.byte_size(), Ordering::Relaxed);
                }
                Ok(())
            };
        run_row_tasks(n, threads, &mut out.rows, &compose_rows)?;
        out.entries = out.rows.iter().map(CompressedRow::len).sum();
        Ok(out)
    }

    /// The reflexive-transitive closure: row `r` of the result holds every
    /// node reachable from `r` (including `r` itself), computed by one
    /// semi-naive delta fixpoint per source row, stored normalized.
    #[must_use]
    pub fn closure_reflexive_transitive(&self, threads: usize) -> CompressedRel {
        match self.closure_governed(&Budget::unlimited(), threads) {
            Ok(m) => m,
            Err(_) => unreachable!("unlimited budget never trips"),
        }
    }

    /// As [`closure_reflexive_transitive`](Self::closure_reflexive_transitive),
    /// polling `budget` every [`ROW_POLL_STRIDE`] source rows via
    /// [`Budget::check_rel`] with the estimated bytes materialized so far.
    ///
    /// # Errors
    /// Returns the tripped axis; the partial closure is discarded.
    pub fn closure_governed(
        &self,
        budget: &Budget,
        threads: usize,
    ) -> Result<CompressedRel, BudgetExceeded> {
        let n = self.n;
        let mut out = CompressedRel::new(n);
        if n == 0 {
            return Ok(out);
        }
        let bytes = AtomicUsize::new(0);
        let close_rows = |first: usize, rows: &mut [CompressedRow]| -> Result<(), BudgetExceeded> {
            // Per-worker scratch: a membership flag per node, reset after
            // each source by walking only the nodes that were reached.
            let mut in_closed = vec![false; n];
            for (i, orow) in rows.iter_mut().enumerate() {
                if i % ROW_POLL_STRIDE == 0 {
                    if let Some(reason) = budget.check_rel(bytes.load(Ordering::Relaxed)) {
                        return Err(reason);
                    }
                }
                let src = first + i;
                // Semi-naive delta iteration, exactly as in the sparse
                // backend: only rows discovered by the previous round are
                // re-expanded.
                let mut reach: Vec<u32> = vec![src as u32];
                in_closed[src] = true;
                let mut delta = 0usize;
                while delta < reach.len() {
                    let x = reach[delta] as usize;
                    delta += 1;
                    for t in self.rows[x].iter() {
                        if !in_closed[t as usize] {
                            in_closed[t as usize] = true;
                            reach.push(t);
                        }
                    }
                }
                for &t in &reach {
                    in_closed[t as usize] = false;
                }
                reach.sort_unstable();
                *orow = CompressedRow::from_sorted(&reach);
                bytes.fetch_add(orow.byte_size(), Ordering::Relaxed);
            }
            Ok(())
        };
        run_row_tasks(n, threads, &mut out.rows, &close_rows)?;
        out.entries = out.rows.iter().map(CompressedRow::len).sum();
        Ok(out)
    }
}

/// A governed per-chunk row task: `(first_row, rows)` to a budget verdict.
type RowTask<'a> = dyn Fn(usize, &mut [CompressedRow]) -> Result<(), BudgetExceeded> + Sync + 'a;

/// Fans `f(first_row, rows)` over contiguous row chunks across
/// [`effective_workers`]`(threads)` workers (serial below
/// [`par_min_dim`]), mirroring the sparse backend's task layout so
/// governed stops stay bit-identical per worker count.
fn run_row_tasks(
    n: usize,
    threads: usize,
    rows: &mut [CompressedRow],
    f: &RowTask<'_>,
) -> Result<(), BudgetExceeded> {
    let workers = effective_workers(threads).min(n.max(1));
    if workers <= 1 || n < par_min_dim() {
        f(0, rows)
    } else {
        let chunk = row_task_chunk(n, workers);
        let tasks: Vec<Box<dyn FnOnce() -> Result<(), BudgetExceeded> + Send + '_>> = rows
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, rows)| {
                let g: Box<dyn FnOnce() -> Result<(), BudgetExceeded> + Send + '_> =
                    Box::new(move || f(c * chunk, rows));
                g
            })
            .collect();
        for o in crate::sched::run_tasks(workers, tasks) {
            o?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> CompressedRel {
        let mut m = CompressedRel::new(n);
        for &(a, b) in pairs {
            m.set(a, b);
        }
        m
    }

    #[test]
    fn set_get_iter_ascending_across_chunk_boundary() {
        let mut m = CompressedRel::new(200_000);
        assert!(m.set(0, 65_536));
        assert!(m.set(0, 65_535));
        assert!(m.set(0, 2));
        assert!(!m.set(0, 2));
        assert!(m.set(131_072, 7));
        assert!(m.get(0, 65_535) && m.get(0, 65_536) && !m.get(65_535, 0));
        assert_eq!(
            m.iter().collect::<Vec<_>>(),
            vec![(0, 2), (0, 65_535), (0, 65_536), (131_072, 7)]
        );
        assert_eq!(m.count_ones(), 4);
        assert_eq!(m.entry_count(), 4);
        m.clear_row(0);
        assert_eq!(m.entry_count(), 1);
    }

    #[test]
    fn container_encodings_chosen_by_size() {
        // A single long run spanning a chunk boundary: one run container
        // per chunk, 4 bytes of payload each.
        let row = CompressedRow::from_sorted(&(60_000..70_000).collect::<Vec<u32>>());
        assert_eq!(row.len(), 10_000);
        assert_eq!(row.byte_size(), 2 * (CONTAINER_OVERHEAD + 4));
        // Scattered values stay an array while small...
        let sparse_vals: Vec<u32> = (0..1000).map(|i| i * 7).collect();
        let arr = CompressedRow::from_sorted(&sparse_vals);
        assert_eq!(arr.byte_size(), CONTAINER_OVERHEAD + 2 * 1000);
        // ...and become a bitmap once the array would exceed 8192 bytes.
        let dense_vals: Vec<u32> = (0..10_000).map(|i| i * 6).collect();
        let bm = CompressedRow::from_sorted(&dense_vals);
        assert_eq!(bm.byte_size(), CONTAINER_OVERHEAD + BITMAP_BYTES);
        assert_eq!(bm.len(), 10_000);
        assert!(bm.contains(6 * 9_999) && !bm.contains(5));
        // All three encodings iterate ascending.
        assert_eq!(bm.iter().collect::<Vec<_>>(), dense_vals);
        assert_eq!(arr.iter().collect::<Vec<_>>(), sparse_vals);
    }

    #[test]
    fn point_inserts_promote_and_coalesce() {
        // Runs container: fill 0..=4, then 6, then bridge with 5.
        let mut row = CompressedRow::from_sorted(&[0, 1, 2, 3, 4]);
        assert!(row.insert(6));
        assert!(row.insert(5));
        assert!(!row.insert(3));
        assert_eq!(row.iter().collect::<Vec<_>>(), (0..=6).collect::<Vec<_>>());
        // Array promotes to bitmap past ARRAY_MAX point inserts.
        let mut big = CompressedRow::default();
        for v in 0..=(ARRAY_MAX as u32) {
            assert!(big.insert(v * 2));
        }
        assert_eq!(big.len(), ARRAY_MAX + 1);
        assert_eq!(big.byte_size(), CONTAINER_OVERHEAD + BITMAP_BYTES);
        assert!(big.contains(2 * ARRAY_MAX as u32) && !big.contains(1));
        // The u16 edge: coalescing against a run ending at 65535 must not
        // overflow.
        let mut edge = CompressedRow::from_sorted(&(65_530..=65_535).collect::<Vec<u32>>());
        assert!(!edge.insert(65_535));
        assert!(edge.insert(65_529));
        assert_eq!(edge.len(), 7);
    }

    #[test]
    fn union_meet_normalize() {
        let a = CompressedRow::from_sorted(&[0, 1, 2, 100, 65_535, 65_536]);
        let b = CompressedRow::from_sorted(&[2, 3, 100, 65_536, 200_000]);
        let u = a.union(&b);
        assert_eq!(
            u.iter().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 100, 65_535, 65_536, 200_000]
        );
        let m = a.intersect(&b);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![2, 100, 65_536]);
        let mut ra = from_pairs(70_000, &[(0, 1), (2, 3)]);
        let rb = from_pairs(70_000, &[(0, 1), (4, 69_999)]);
        ra.or_assign(&rb);
        assert_eq!(ra.count_ones(), 3);
        ra.and_assign(&rb);
        assert_eq!(ra.iter().collect::<Vec<_>>(), vec![(0, 1), (4, 69_999)]);
    }

    #[test]
    fn compose_and_closure_match_sparse_kernel() {
        let pairs = [(0, 1), (1, 2), (2, 0), (5, 299)];
        let cp = from_pairs(300, &pairs);
        let mut sp = crate::SparseRel::new(300);
        for &(a, b) in &pairs {
            sp.set(a, b);
        }
        let cc = cp.closure_reflexive_transitive(1);
        let sc = sp.closure_reflexive_transitive(1);
        assert_eq!(cc.iter().collect::<Vec<_>>(), sc.iter().collect::<Vec<_>>());
        assert_eq!(
            cp.compose(&cp).iter().collect::<Vec<_>>(),
            sp.compose(&sp).iter().collect::<Vec<_>>()
        );
        for threads in [2, 4, 8] {
            assert_eq!(cp.closure_reflexive_transitive(threads), cc);
            assert_eq!(cp.compose_governed(&cp, &Budget::unlimited(), threads), Ok(cp.compose(&cp)));
        }
        let id = CompressedRel::identity(300);
        assert_eq!(cp.compose(&id), cp);
        assert_eq!(id.compose(&cp), cp);
    }

    #[test]
    fn governed_ops_trip_on_timing_and_memory_axes() {
        let m = from_pairs(64, &[(0, 1)]);
        let cancelled = {
            let tok = crate::budget::CancelToken::new();
            tok.cancel();
            Budget::unlimited().with_cancel(tok)
        };
        assert_eq!(
            m.compose_governed(&m, &cancelled, 1),
            Err(BudgetExceeded::Cancelled)
        );
        assert_eq!(
            m.closure_governed(&cancelled, 2),
            Err(BudgetExceeded::Cancelled)
        );
        // A zero-byte memory cap trips before the first row of output.
        let capped = Budget::unlimited().with_max_rel_entries(0);
        assert_eq!(m.closure_governed(&capped, 1), Err(BudgetExceeded::RelMemory));
        assert!(m.closure_governed(&Budget::unlimited(), 2).is_ok());
    }

    #[test]
    fn ring_closure_stays_within_byte_budget_sparse_exceeds() {
        // 64-state rings: every closure row is one 64-entry run. The
        // compressed closure costs 12 bytes per row; raw u32 adjacency
        // would cost 256.
        let n = 8192;
        let mut m = CompressedRel::new(n);
        for i in 0..n {
            m.set(i, (i & !63) + ((i + 1) & 63));
        }
        let closed = m.closure_reflexive_transitive(1);
        assert_eq!(closed.entry_count(), n * 64);
        assert_eq!(closed.byte_size(), n * (CONTAINER_OVERHEAD + 4));
        // A budget between the two byte estimates admits the compressed
        // closure and would reject a raw-entry one.
        let cap = 4 * closed.entry_count() / 2;
        assert!(closed.byte_size() < cap);
        let governed = m.closure_governed(&Budget::unlimited().with_max_rel_entries(cap), 1);
        assert_eq!(governed, Ok(closed));
    }

    #[test]
    fn resize_preserves_pairs() {
        let m = from_pairs(3, &[(0, 2), (2, 1)]);
        let big = m.resized(200_000);
        assert_eq!(big.iter().collect::<Vec<_>>(), m.iter().collect::<Vec<_>>());
        assert_eq!(big.dim(), 200_000);
        assert_eq!(big.entry_count(), 2);
    }
}
