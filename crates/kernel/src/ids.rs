//! Identifiers for the symbols of a many-sorted language.
//!
//! These ids are the currency shared by every level of the system: the
//! logic, algebraic, and representation layers all name sorts, function
//! symbols, predicate symbols, and variables by the same small copyable
//! handles, which is what lets one interned term kernel serve all of them.
//! Declarations (names, domains, ranges) live in the owning signature; the
//! kernel only needs the ids and, through [`crate::SortOracle`], the sort
//! discipline.

/// Identifier of a sort within a signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SortId(pub u32);

/// Identifier of a function symbol within a signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Identifier of a predicate symbol within a signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

/// Identifier of a variable within a signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl SortId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FuncId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PredId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VarId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
