//! A fast, deterministic, non-cryptographic hasher for interning tables.
//!
//! The kernel's hot maps are keyed by 32-bit handles ([`crate::TermId`],
//! [`crate::FuncId`]) whose distribution is already dense and sequential;
//! SipHash's DoS resistance buys nothing here and costs a constant factor on
//! every cache probe. This is the FxHash multiply-xor scheme (as used by
//! rustc), implemented locally so the workspace stays dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash scheme.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: a single u64 folded with multiply-xor per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — the kernel's standard map type.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreading() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000u32 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1000, "no collisions on sequential u32s");
        let mut a = FxHasher::default();
        a.write_u32(42);
        let mut b = FxHasher::default();
        b.write_u32(42);
        assert_eq!(a.finish(), b.finish());
    }
}
