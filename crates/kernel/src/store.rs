//! The hash-consed term store.
//!
//! # The hash-consing invariant
//!
//! A [`TermStore`] maintains exactly one node per structurally distinct
//! term: interning `f(t1, …, tn)` first interns the children, then looks the
//! node `(f, child-ids)` up in a dedup table and returns the existing
//! [`TermId`] if present. Consequently **`TermId` equality is semantic
//! (structural) equality** — two interned terms are equal as trees if and
//! only if their ids are equal as `u32`s — and equality, hashing, and
//! subterm sharing are all O(1). Every downstream pass (rewriting
//! memoisation, reachability deduplication, cross-formalism comparison)
//! inherits this for free, which is why the three specification levels share
//! this single kernel.
//!
//! Per-node metadata (groundness, size, depth) is computed once at intern
//! time from the children's metadata; sorts are computed on first demand
//! through a [`SortOracle`] and cached per node.
//!
//! Terms contain no binders (variables are free), so substitution over
//! interned terms is trivially capture-avoiding.

use crate::hash::FxHashMap;
use crate::ids::{FuncId, SortId, VarId};

/// Handle to an interned term. Equality and hashing are O(1) and agree with
/// structural equality of the denoted trees (see the module docs for the
/// invariant). Ids are only meaningful relative to the [`TermStore`] that
/// issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// The raw index into the store.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Crate-internal constructor from a raw id (used by the concurrent
    /// store, whose ids encode a shard in the low bits).
    pub(crate) fn from_raw(raw: u32) -> TermId {
        TermId(raw)
    }

    /// The raw u32 behind the handle.
    pub(crate) fn raw(self) -> u32 {
        self.0
    }
}

/// An interned term node: a variable or an application of a function symbol
/// to already-interned arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermNode {
    /// A variable.
    Var(VarId),
    /// `f(t1, …, tn)`; constants are 0-ary applications.
    App(FuncId, Box<[TermId]>),
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Meta {
    pub(crate) ground: bool,
    pub(crate) size: u32,
    pub(crate) depth: u32,
}

/// Sorting errors reported by [`TermStore::sort_of`], in terms of raw ids;
/// callers holding a signature can render them with names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortError {
    /// A function symbol was applied to the wrong number of arguments.
    ArityMismatch {
        /// The offending function symbol.
        func: FuncId,
        /// Declared arity.
        expected: usize,
        /// Number of arguments found.
        found: usize,
    },
    /// An argument's sort does not match the declared domain sort.
    ArgSort {
        /// The offending function symbol.
        func: FuncId,
        /// Zero-based argument position.
        index: usize,
        /// Declared domain sort at that position.
        expected: SortId,
        /// Sort actually found.
        found: SortId,
    },
}

impl std::fmt::Display for SortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SortError::ArityMismatch {
                func,
                expected,
                found,
            } => write!(
                f,
                "function #{} expects {expected} argument(s), found {found}",
                func.0
            ),
            SortError::ArgSort {
                func,
                index,
                expected,
                found,
            } => write!(
                f,
                "argument {index} of function #{} has sort #{} but #{} is required",
                func.0, found.0, expected.0
            ),
        }
    }
}

impl std::error::Error for SortError {}

/// The sort discipline the kernel consults to compute cached sorts: how
/// variables and function symbols are typed. Implemented by the logic
/// level's `Signature`.
pub trait SortOracle {
    /// The sort of a variable.
    fn var_sort(&self, v: VarId) -> SortId;
    /// The domain sorts of a function symbol.
    fn func_domain(&self, f: FuncId) -> &[SortId];
    /// The range sort of a function symbol.
    fn func_range(&self, f: FuncId) -> SortId;
}

/// A finite binding of variables to interned terms — the substitutions
/// produced by pattern matching and consumed by [`TermStore::subst`].
///
/// Bindings are tiny (an equation rarely has more than a handful of
/// variables), so a linear-scanned vector beats any map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Binding {
    pairs: Vec<(VarId, TermId)>,
}

impl Binding {
    /// The empty binding.
    #[must_use]
    pub fn new() -> Self {
        Binding::default()
    }

    /// Binds `x ↦ t`, replacing any previous binding for `x`.
    pub fn bind(&mut self, x: VarId, t: TermId) {
        for p in &mut self.pairs {
            if p.0 == x {
                p.1 = t;
                return;
            }
        }
        self.pairs.push((x, t));
    }

    /// Looks up the binding for `x`.
    #[must_use]
    pub fn get(&self, x: VarId) -> Option<TermId> {
        self.pairs.iter().find(|p| p.0 == x).map(|p| p.1)
    }

    /// Number of bound variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no variable is bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Removes all bindings, keeping the allocation.
    pub fn clear(&mut self) {
        self.pairs.clear();
    }

    /// Iterates over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, TermId)> + '_ {
        self.pairs.iter().copied()
    }
}

/// The interner/arena. See the module docs for the hash-consing invariant.
#[derive(Debug, Clone, Default)]
pub struct TermStore {
    nodes: Vec<TermNode>,
    meta: Vec<Meta>,
    /// Lazily-computed per-node sort cache (`sort_of`).
    sorts: Vec<Option<SortId>>,
    /// Node hash → candidate ids (collisions resolved structurally; child
    /// comparison is O(arity) because children are already interned).
    dedup: FxHashMap<u64, Vec<TermId>>,
}

pub(crate) fn hash_var(v: VarId) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::hash::FxHasher::default();
    h.write_u32(0x5615_u32);
    h.write_u32(v.0);
    h.finish()
}

pub(crate) fn hash_app(f: FuncId, args: &[TermId]) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::hash::FxHasher::default();
    h.write_u32(0xa442_u32);
    h.write_u32(f.0);
    for a in args {
        h.write_u32(a.0);
    }
    h.finish()
}

/// The intern/read interface shared by every term-store backend: the
/// single-threaded [`TermStore`] and the per-thread
/// [`crate::StoreHandle`] of a [`crate::ConcurrentTermStore`].
///
/// All implementations maintain the hash-consing invariant — one node per
/// structurally distinct term, so [`TermId`] equality is structural
/// equality — which is what lets generic code (the rewriter, reachability
/// exploration, the cross-level bridges) run unchanged over either backend.
pub trait Interner {
    /// Interns a variable term.
    fn var(&mut self, v: VarId) -> TermId;

    /// Interns an application `f(args…)`; constants are 0-ary applications.
    fn app(&mut self, f: FuncId, args: &[TermId]) -> TermId;

    /// Interns a constant (0-ary application).
    fn constant(&mut self, f: FuncId) -> TermId {
        self.app(f, &[])
    }

    /// The node denoted by an id.
    fn node(&self, t: TermId) -> &TermNode;

    /// Whether the term contains no variables (cached at intern time).
    fn is_ground(&self, t: TermId) -> bool;

    /// Number of symbol occurrences (cached at intern time).
    fn size(&self, t: TermId) -> usize;

    /// Maximum nesting depth; a constant or variable has depth 1 (cached).
    fn depth(&self, t: TermId) -> usize;

    /// Number of distinct terms interned so far — the backend's node
    /// accounting, used by [`crate::Budget`] node caps. For a
    /// [`crate::StoreHandle`] this is the *shared* store's count, so every
    /// worker sees the same figure at a synchronized boundary.
    fn len(&self) -> usize;

    /// Whether nothing has been interned yet (companion to [`Interner::len`]).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies a binding, returning the interned result. Ground subtrees
    /// are returned as-is; unbound variables are left in place.
    fn subst(&mut self, t: TermId, binding: &Binding) -> TermId {
        if binding.is_empty() || self.is_ground(t) {
            return t;
        }
        let (f, args) = match self.node(t) {
            TermNode::Var(v) => return binding.get(*v).unwrap_or(t),
            TermNode::App(f, args) => (*f, args.to_vec()),
        };
        let mut changed = false;
        let mut out = Vec::with_capacity(args.len());
        for a in args {
            let b = self.subst(a, binding);
            changed |= b != a;
            out.push(b);
        }
        if changed {
            self.app(f, &out)
        } else {
            t
        }
    }
}

impl Interner for TermStore {
    fn var(&mut self, v: VarId) -> TermId {
        TermStore::var(self, v)
    }

    fn app(&mut self, f: FuncId, args: &[TermId]) -> TermId {
        TermStore::app(self, f, args)
    }

    fn node(&self, t: TermId) -> &TermNode {
        TermStore::node(self, t)
    }

    fn is_ground(&self, t: TermId) -> bool {
        TermStore::is_ground(self, t)
    }

    fn size(&self, t: TermId) -> usize {
        TermStore::size(self, t)
    }

    fn depth(&self, t: TermId) -> usize {
        TermStore::depth(self, t)
    }

    fn len(&self) -> usize {
        TermStore::len(self)
    }

    fn subst(&mut self, t: TermId, binding: &Binding) -> TermId {
        TermStore::subst(self, t, binding)
    }
}

impl TermStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        TermStore::default()
    }

    /// Number of distinct interned terms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, hash: u64, node: TermNode, meta: Meta) -> TermId {
        let id = TermId(u32::try_from(self.nodes.len()).expect("term count fits u32"));
        self.nodes.push(node);
        self.meta.push(meta);
        self.sorts.push(None);
        self.dedup.entry(hash).or_default().push(id);
        id
    }

    /// Interns a variable term.
    pub fn var(&mut self, v: VarId) -> TermId {
        let h = hash_var(v);
        if let Some(ids) = self.dedup.get(&h) {
            for &id in ids {
                if matches!(self.nodes[id.index()], TermNode::Var(w) if w == v) {
                    return id;
                }
            }
        }
        self.push(
            h,
            TermNode::Var(v),
            Meta {
                ground: false,
                size: 1,
                depth: 1,
            },
        )
    }

    /// Interns an application `f(args…)`. Constants are `app(f, &[])`.
    pub fn app(&mut self, f: FuncId, args: &[TermId]) -> TermId {
        let h = hash_app(f, args);
        if let Some(ids) = self.dedup.get(&h) {
            for &id in ids {
                if let TermNode::App(g, gargs) = &self.nodes[id.index()] {
                    if *g == f && gargs.as_ref() == args {
                        return id;
                    }
                }
            }
        }
        let mut ground = true;
        let mut size = 1u32;
        let mut depth = 0u32;
        for a in args {
            let m = self.meta[a.index()];
            ground &= m.ground;
            size = size.saturating_add(m.size);
            depth = depth.max(m.depth);
        }
        self.push(
            h,
            TermNode::App(f, args.into()),
            Meta {
                ground,
                size,
                depth: depth + 1,
            },
        )
    }

    /// Interns a constant (0-ary application).
    pub fn constant(&mut self, f: FuncId) -> TermId {
        self.app(f, &[])
    }

    /// The node denoted by an id.
    ///
    /// # Panics
    /// Panics if the id was issued by a different store.
    #[must_use]
    pub fn node(&self, t: TermId) -> &TermNode {
        &self.nodes[t.index()]
    }

    /// Whether the term contains no variables (cached).
    #[must_use]
    pub fn is_ground(&self, t: TermId) -> bool {
        self.meta[t.index()].ground
    }

    /// Number of symbol occurrences (cached).
    #[must_use]
    pub fn size(&self, t: TermId) -> usize {
        self.meta[t.index()].size as usize
    }

    /// Maximum nesting depth; a constant or variable has depth 1 (cached).
    #[must_use]
    pub fn depth(&self, t: TermId) -> usize {
        self.meta[t.index()].depth as usize
    }

    /// All subterm ids in pre-order, including `t` itself. Shared subterms
    /// appear once per occurrence.
    #[must_use]
    pub fn subterms(&self, t: TermId) -> Vec<TermId> {
        let mut out = Vec::with_capacity(self.size(t));
        let mut stack = vec![t];
        while let Some(id) = stack.pop() {
            out.push(id);
            if let TermNode::App(_, args) = &self.nodes[id.index()] {
                for a in args.iter().rev() {
                    stack.push(*a);
                }
            }
        }
        out
    }

    /// The *distinct* subterm ids of `t` (each shared subtree once) — the
    /// interned analogue of a subterm set, used by completeness and
    /// confluence passes.
    #[must_use]
    pub fn subterm_set(&self, t: TermId) -> Vec<TermId> {
        let mut seen = crate::hash::FxHashSet::default();
        let mut out = Vec::new();
        let mut stack = vec![t];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            out.push(id);
            if let TermNode::App(_, args) = &self.nodes[id.index()] {
                for a in args.iter().rev() {
                    stack.push(*a);
                }
            }
        }
        out
    }

    /// Whether `sub` occurs within `t` (including `sub == t`). O(1) when
    /// `t` is ground and `sub` is not, O(distinct subterms) otherwise.
    #[must_use]
    pub fn contains(&self, t: TermId, sub: TermId) -> bool {
        if t == sub {
            return true;
        }
        // A strictly larger term cannot occur inside a smaller one.
        if self.size(sub) >= self.size(t) {
            return false;
        }
        if self.is_ground(t) && !self.is_ground(sub) {
            return false;
        }
        self.subterm_set(t).contains(&sub)
    }

    /// Accumulates the variables of `t` into `out` (deduplicated, sorted by
    /// the caller's collection). Skips ground subtrees via cached metadata.
    pub fn collect_vars(&self, t: TermId, out: &mut std::collections::BTreeSet<VarId>) {
        if self.is_ground(t) {
            return;
        }
        match &self.nodes[t.index()] {
            TermNode::Var(v) => {
                out.insert(*v);
            }
            TermNode::App(_, args) => {
                for a in args.iter() {
                    self.collect_vars(*a, out);
                }
            }
        }
    }

    /// The sort of an interned term, computed bottom-up through `oracle` and
    /// cached per node: after the first call, re-sorting any term that
    /// shares structure is O(1) per shared node.
    ///
    /// # Errors
    /// Returns a [`SortError`] if the term is ill-sorted; nothing is cached
    /// along the failing path.
    pub fn sort_of(&mut self, t: TermId, oracle: &impl SortOracle) -> Result<SortId, SortError> {
        if let Some(s) = self.sorts[t.index()] {
            return Ok(s);
        }
        let sort = match &self.nodes[t.index()] {
            TermNode::Var(v) => oracle.var_sort(*v),
            TermNode::App(f, args) => {
                let f = *f;
                let args: Vec<TermId> = args.to_vec();
                let expected = oracle.func_domain(f).len();
                if expected != args.len() {
                    return Err(SortError::ArityMismatch {
                        func: f,
                        expected,
                        found: args.len(),
                    });
                }
                for (i, &a) in args.iter().enumerate() {
                    let found = self.sort_of(a, oracle)?;
                    let declared = oracle.func_domain(f)[i];
                    if found != declared {
                        return Err(SortError::ArgSort {
                            func: f,
                            index: i,
                            expected: declared,
                            found,
                        });
                    }
                }
                oracle.func_range(f)
            }
        };
        self.sorts[t.index()] = Some(sort);
        Ok(sort)
    }

    /// Applies a binding to an interned term, returning the interned result.
    /// Ground subtrees are returned as-is (O(1), via cached metadata);
    /// unbound variables are left in place. Terms contain no binders, so the
    /// operation is capture-avoiding by construction.
    pub fn subst(&mut self, t: TermId, binding: &Binding) -> TermId {
        if binding.is_empty() || self.is_ground(t) {
            return t;
        }
        match &self.nodes[t.index()] {
            TermNode::Var(v) => binding.get(*v).unwrap_or(t),
            TermNode::App(f, args) => {
                let f = *f;
                let args: Vec<TermId> = args.to_vec();
                let mut changed = false;
                let mut out = Vec::with_capacity(args.len());
                for a in args {
                    let b = self.subst(a, binding);
                    changed |= b != a;
                    out.push(b);
                }
                if changed {
                    self.app(f, &out)
                } else {
                    t
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy;

    // One sort #0; f: #0 × #0 → #0 (FuncId 10), constants a=#1, b=#2.
    impl SortOracle for Toy {
        fn var_sort(&self, _v: VarId) -> SortId {
            SortId(0)
        }
        fn func_domain(&self, f: FuncId) -> &[SortId] {
            if f == FuncId(10) {
                &[SortId(0), SortId(0)]
            } else {
                &[]
            }
        }
        fn func_range(&self, _f: FuncId) -> SortId {
            SortId(0)
        }
    }

    #[test]
    fn interning_is_idempotent() {
        let mut s = TermStore::new();
        let a = s.constant(FuncId(1));
        let x = s.var(VarId(0));
        let t1 = s.app(FuncId(10), &[a, x]);
        let a2 = s.constant(FuncId(1));
        let x2 = s.var(VarId(0));
        let t2 = s.app(FuncId(10), &[a2, x2]);
        assert_eq!(a, a2);
        assert_eq!(x, x2);
        assert_eq!(t1, t2);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn metadata_is_cached_correctly() {
        let mut s = TermStore::new();
        let a = s.constant(FuncId(1));
        let x = s.var(VarId(0));
        let t = s.app(FuncId(10), &[a, x]);
        let tt = s.app(FuncId(10), &[t, a]);
        assert!(s.is_ground(a));
        assert!(!s.is_ground(t));
        assert!(!s.is_ground(tt));
        assert_eq!(s.size(t), 3);
        assert_eq!(s.depth(t), 2);
        assert_eq!(s.size(tt), 5);
        assert_eq!(s.depth(tt), 3);
        assert_eq!(s.subterms(tt).len(), 5);
        assert_eq!(s.subterm_set(tt).len(), 4); // `a` shared
        assert!(s.contains(tt, t));
        assert!(s.contains(tt, x));
        assert!(!s.contains(t, tt));
    }

    #[test]
    fn sorts_cached_and_errors_reported() {
        let mut s = TermStore::new();
        let a = s.constant(FuncId(1));
        let t = s.app(FuncId(10), &[a, a]);
        assert_eq!(s.sort_of(t, &Toy).unwrap(), SortId(0));
        assert_eq!(s.sort_of(t, &Toy).unwrap(), SortId(0));
        let bad = s.app(FuncId(10), &[a]);
        assert!(matches!(
            s.sort_of(bad, &Toy),
            Err(SortError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            })
        ));
    }

    #[test]
    fn substitution_shares_and_short_circuits() {
        let mut s = TermStore::new();
        let a = s.constant(FuncId(1));
        let b = s.constant(FuncId(2));
        let x = s.var(VarId(0));
        let t = s.app(FuncId(10), &[x, a]);
        let mut bind = Binding::new();
        bind.bind(VarId(0), b);
        let r = s.subst(t, &bind);
        let expected = s.app(FuncId(10), &[b, a]);
        assert_eq!(r, expected);
        // Ground terms are untouched and identical.
        assert_eq!(s.subst(expected, &bind), expected);
        // Unbound variables stay.
        let y = s.var(VarId(1));
        let u = s.app(FuncId(10), &[y, a]);
        assert_eq!(s.subst(u, &bind), u);
    }

    #[test]
    fn stress_100k_distinct_terms_no_collisions() {
        let mut s = TermStore::new();
        let mut ids = Vec::new();
        // 100_000 distinct constants by id.
        for i in 0..100_000u32 {
            ids.push(s.constant(FuncId(i)));
        }
        assert_eq!(s.len(), 100_000);
        let set: std::collections::BTreeSet<_> = ids.iter().copied().collect();
        assert_eq!(set.len(), 100_000, "all ids distinct");
        // Re-interning returns the same ids, store does not grow.
        for i in 0..100_000u32 {
            assert_eq!(s.constant(FuncId(i)), ids[i as usize]);
        }
        assert_eq!(s.len(), 100_000);
        // Deep chain: f(c_i, prev) — distinct at every level.
        let mut t = ids[0];
        let before = s.len();
        for &c in ids.iter().take(1000) {
            t = s.app(FuncId(100_000), &[c, t]);
        }
        assert_eq!(s.len(), before + 1000);
        assert_eq!(s.depth(t), 1001);
    }
}
