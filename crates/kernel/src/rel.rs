//! The multi-backend relation kernel: one [`Rel`] value is a dense
//! [`BitMatrix`], a sparse [`SparseRel`], or a compressed
//! [`CompressedRel`], chosen per relation by a density/dimension
//! crossover policy.
//!
//! Small universes live on the dense backend, where union/meet/compose
//! are word operations (64 pairs per instruction); past the crossover
//! dimension the same relation would cost `n · ⌈n/64⌉` words *per
//! relation* regardless of content (a million-state relation is ~125 GB),
//! so large universes live on the sparse backend, which spends one `u32`
//! entry per pair. Past the *compressed* crossover
//! ([`crate::envcfg`]'s `ECLECTIC_REL_COMPRESSED_MIN_DIM`, default one
//! full 2¹⁶ chunk) relations move to the chunk-container backend, whose
//! run encodings collapse the contiguous reachable blocks that
//! million-state closures produce to a few bytes per row.
//! [`rel_backend_for`] decides: an explicit
//! `ECLECTIC_REL_BACKEND=dense|sparse|compressed` pins every relation to
//! one backend; unset or `auto` picks dense at dimensions up to
//! [`REL_DENSE_MAX_DIM`], compressed at the compressed floor and above,
//! and sparse between. Binary operations between mixed backends coerce
//! both operands to the policy backend for the result dimension, so the
//! choice never leaks into results.
//!
//! Both backends uphold the same *iteration-order contract*: pairs stream
//! in ascending lexicographic `(a, b)` order, exactly the order a
//! `BTreeSet<(usize, usize)>` would produce — every report built on top
//! is bit-identical whichever backend computed it.
//!
//! Tests that need a specific backend regardless of the environment hold
//! a [`force_rel_backend`] guard, which also serializes them against each
//! other (the override is process-global).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::bitmat::BitMatrix;
use crate::container::{CompressedRel, RowValues};
use crate::envcfg::{env_rel_backend, rel_compressed_min_dim, BackendSpec};
use crate::budget::{Budget, BudgetExceeded};
use crate::sparse::SparseRel;

/// Crossover dimension for the `auto` policy: relations of dimension up
/// to this stay dense (the word-parallel kernels win on small universes),
/// larger ones go sparse (content-proportional memory; see
/// `BENCH_rel.json` for the measured crossover).
pub const REL_DENSE_MAX_DIM: usize = 512;

/// Which storage backend a [`Rel`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelBackend {
    /// Dense row-major bit matrix ([`BitMatrix`]).
    Dense,
    /// Sorted adjacency lists ([`SparseRel`]).
    Sparse,
    /// Chunk-container rows ([`CompressedRel`]).
    Compressed,
}

/// A backend override for tests and benches: pin every relation to one
/// backend, or run the `auto` policy with a custom crossover dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelChoice {
    /// Every relation dense, at any dimension.
    Dense,
    /// Every relation sparse, at any dimension.
    Sparse,
    /// Every relation compressed, at any dimension.
    Compressed,
    /// The automatic policy with the given dense crossover dimension
    /// (dense at dimensions `<=` the value, then sparse, then compressed
    /// at the compressed floor and above).
    AutoAt(usize),
}

/// Process-global backend override: 0 = none, 1 = dense, 2 = sparse,
/// 3 = compressed, `k >= 4` = auto with dense crossover dimension `k - 4`.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes holders of [`force_rel_backend`] guards — the override is
/// process-global, so concurrent forced-backend tests must exclude each
/// other.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// RAII guard for a forced backend policy; restores the environment-driven
/// policy on drop. Holding it excludes every other forced-backend section
/// in the process.
pub struct RelBackendGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for RelBackendGuard {
    fn drop(&mut self) {
        OVERRIDE.store(0, Ordering::SeqCst);
    }
}

/// Forces the backend policy for the lifetime of the returned guard.
/// Intended for tests and benches that must exercise a specific backend
/// (or a specific crossover) regardless of `ECLECTIC_REL_BACKEND`.
#[must_use]
pub fn force_rel_backend(choice: RelChoice) -> RelBackendGuard {
    let lock = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let code = match choice {
        RelChoice::Dense => 1,
        RelChoice::Sparse => 2,
        RelChoice::Compressed => 3,
        RelChoice::AutoAt(dim) => dim.saturating_add(4),
    };
    OVERRIDE.store(code, Ordering::SeqCst);
    RelBackendGuard { _lock: lock }
}

/// Process-global fault-injection flag for oracle validation (see
/// [`force_rel_fault`]).
static FAULT: AtomicUsize = AtomicUsize::new(0);

/// Serializes holders of [`force_rel_fault`] guards — the flag is
/// process-global, like the backend override.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// RAII guard for an injected relation-kernel fault; restores correct
/// behaviour on drop. Holding it excludes every other fault section in the
/// process.
pub struct RelFaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for RelFaultGuard {
    fn drop(&mut self) {
        FAULT.store(0, Ordering::SeqCst);
    }
}

/// Injects a deliberate, deterministic fault into the **sparse** backend's
/// `union` for the lifetime of the returned guard: the lexicographically
/// largest pair of each union result is silently dropped, mimicking an
/// off-by-one merge bug.
///
/// This exists purely to prove that the differential fuzzing oracle has
/// teeth — a harness that compares backends pairwise must detect the
/// divergence this fault introduces, or the harness itself is broken.
/// Never enable it outside a test.
#[must_use]
pub fn force_rel_fault() -> RelFaultGuard {
    let lock = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    FAULT.store(1, Ordering::SeqCst);
    RelFaultGuard { _lock: lock }
}

/// Whether a [`force_rel_fault`] guard is live.
fn rel_fault_active() -> bool {
    FAULT.load(Ordering::SeqCst) != 0
}

/// The `auto` tiering: dense up to the dense crossover, compressed at
/// the compressed floor and above, sparse between. (A dense crossover
/// at or above the compressed floor gives sparse no band, which is a
/// legitimate two-tier policy.)
fn auto_backend(dim: usize, dense_max: usize) -> RelBackend {
    if dim <= dense_max {
        RelBackend::Dense
    } else if dim >= rel_compressed_min_dim() {
        RelBackend::Compressed
    } else {
        RelBackend::Sparse
    }
}

/// The backend the current policy assigns to a relation of the given
/// dimension: a [`force_rel_backend`] override wins, then
/// `ECLECTIC_REL_BACKEND`, then the automatic tiering at
/// [`REL_DENSE_MAX_DIM`] and the compressed floor
/// (`ECLECTIC_REL_COMPRESSED_MIN_DIM`).
#[must_use]
pub fn rel_backend_for(dim: usize) -> RelBackend {
    match OVERRIDE.load(Ordering::SeqCst) {
        0 => {}
        1 => return RelBackend::Dense,
        2 => return RelBackend::Sparse,
        3 => return RelBackend::Compressed,
        k => return auto_backend(dim, k - 4),
    }
    match env_rel_backend() {
        BackendSpec::Dense => RelBackend::Dense,
        BackendSpec::Sparse => RelBackend::Sparse,
        BackendSpec::Compressed => RelBackend::Compressed,
        BackendSpec::Unset | BackendSpec::Auto | BackendSpec::Invalid => {
            auto_backend(dim, REL_DENSE_MAX_DIM)
        }
    }
}

/// A binary relation on one of the two storage backends. All operations
/// are backend-transparent: results depend only on the pair set (and the
/// documented dimension semantics), never on which backend held it.
#[derive(Debug, Clone)]
pub enum Rel {
    /// Dense bit-matrix storage.
    Dense(BitMatrix),
    /// Sparse sorted-adjacency storage.
    Sparse(SparseRel),
    /// Compressed chunk-container storage.
    Compressed(CompressedRel),
}

impl Default for Rel {
    fn default() -> Self {
        Rel::Dense(BitMatrix::default())
    }
}

/// Ascending iterator over the set columns of one dense row.
pub struct DenseRowIter<'a> {
    row: &'a [u64],
    k: usize,
    word: u64,
}

impl Iterator for DenseRowIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.word != 0 {
                let tz = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(((self.k - 1) << 6) + tz);
            }
            if self.k == self.row.len() {
                return None;
            }
            self.word = self.row[self.k];
            self.k += 1;
        }
    }
}

/// Ascending iterator over the set columns of one [`Rel`] row, on either
/// backend.
pub enum RowIter<'a> {
    /// A dense row scan.
    Dense(DenseRowIter<'a>),
    /// A sparse adjacency-list scan.
    Sparse(std::slice::Iter<'a, u32>),
    /// A compressed chunk-container scan.
    Compressed(RowValues<'a>),
    /// A row beyond the allocated dimension (always empty).
    Empty,
}

impl Iterator for RowIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            RowIter::Dense(it) => it.next(),
            RowIter::Sparse(it) => it.next().map(|&c| c as usize),
            RowIter::Compressed(it) => it.next().map(|c| c as usize),
            RowIter::Empty => None,
        }
    }
}

impl Rel {
    /// The empty relation of dimension `n` on the policy backend.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Rel::with_backend(n, rel_backend_for(n))
    }

    /// The empty relation of dimension `n` on an explicit backend.
    #[must_use]
    pub fn with_backend(n: usize, backend: RelBackend) -> Self {
        match backend {
            RelBackend::Dense => Rel::Dense(BitMatrix::new(n)),
            RelBackend::Sparse => Rel::Sparse(SparseRel::new(n)),
            RelBackend::Compressed => Rel::Compressed(CompressedRel::new(n)),
        }
    }

    /// The identity relation of dimension `n` on the policy backend.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        match rel_backend_for(n) {
            RelBackend::Dense => Rel::Dense(BitMatrix::identity(n)),
            RelBackend::Sparse => Rel::Sparse(SparseRel::identity(n)),
            RelBackend::Compressed => Rel::Compressed(CompressedRel::identity(n)),
        }
    }

    /// Which backend holds this relation.
    #[must_use]
    pub fn backend(&self) -> RelBackend {
        match self {
            Rel::Dense(_) => RelBackend::Dense,
            Rel::Sparse(_) => RelBackend::Sparse,
            Rel::Compressed(_) => RelBackend::Compressed,
        }
    }

    /// The allocated dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        match self {
            Rel::Dense(m) => m.dim(),
            Rel::Sparse(m) => m.dim(),
            Rel::Compressed(m) => m.dim(),
        }
    }

    /// Estimated bytes of backend storage currently allocated: 8 per
    /// dense `u64` word, 4 per sparse adjacency entry, and the
    /// container-formula estimate for the compressed backend — the same
    /// byte units [`Budget::check_rel`] accounts, comparable across
    /// backends.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        match self {
            Rel::Dense(m) => m.word_count() * 8,
            Rel::Sparse(m) => m.entry_count() * 4,
            Rel::Compressed(m) => m.byte_size(),
        }
    }

    /// Whether bit `(r, c)` is set.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of range.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> bool {
        match self {
            Rel::Dense(m) => m.get(r, c),
            Rel::Sparse(m) => m.get(r, c),
            Rel::Compressed(m) => m.get(r, c),
        }
    }

    /// Sets bit `(r, c)`; returns whether it was previously clear.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of range.
    pub fn set(&mut self, r: usize, c: usize) -> bool {
        match self {
            Rel::Dense(m) => m.set(r, c),
            Rel::Sparse(m) => m.set(r, c),
            Rel::Compressed(m) => m.set(r, c),
        }
    }

    /// Clears row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn clear_row(&mut self, r: usize) {
        match self {
            Rel::Dense(m) => m.row_mut(r).fill(0),
            Rel::Sparse(m) => m.clear_row(r),
            Rel::Compressed(m) => m.clear_row(r),
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        match self {
            Rel::Dense(m) => m.count_ones(),
            Rel::Sparse(m) => m.count_ones(),
            Rel::Compressed(m) => m.count_ones(),
        }
    }

    /// Whether no bit is set.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        match self {
            Rel::Dense(m) => m.is_zero(),
            Rel::Sparse(m) => m.is_zero(),
            Rel::Compressed(m) => m.is_zero(),
        }
    }

    /// Ascending iterator over the set columns of row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn iter_row(&self, r: usize) -> RowIter<'_> {
        assert!(r < self.dim());
        self.row_iter_or_empty(r)
    }

    /// As [`iter_row`](Self::iter_row), but rows beyond the dimension are
    /// empty instead of panicking.
    fn row_iter_or_empty(&self, r: usize) -> RowIter<'_> {
        if r >= self.dim() {
            return RowIter::Empty;
        }
        match self {
            Rel::Dense(m) => RowIter::Dense(DenseRowIter {
                row: m.row(r),
                k: 0,
                word: 0,
            }),
            Rel::Sparse(m) => RowIter::Sparse(m.row(r).iter()),
            Rel::Compressed(m) => RowIter::Compressed(m.row(r).iter()),
        }
    }

    /// Ascending lexicographic iterator over all set `(r, c)` pairs — the
    /// `BTreeSet<(usize, usize)>` order, on either backend.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.dim()).flat_map(move |r| self.iter_row(r).map(move |c| (r, c)))
    }

    /// A copy resized to dimension `d ≥ dim()`, on the backend the policy
    /// assigns to `d` — growth across the crossover migrates a dense
    /// relation to sparse storage (and a forced policy keeps it put).
    ///
    /// # Panics
    /// Panics if `d < dim()`.
    #[must_use]
    pub fn resized(&self, d: usize) -> Rel {
        self.coerced(d, rel_backend_for(d))
    }

    /// A copy at dimension `d ≥ dim()` on an explicit backend.
    ///
    /// # Panics
    /// Panics if `d < dim()`.
    #[must_use]
    pub fn coerced(&self, d: usize, backend: RelBackend) -> Rel {
        assert!(d >= self.dim(), "Rel cannot shrink");
        if self.backend() == backend {
            // Same backend: clone or grow in place.
            return match self {
                Rel::Dense(m) => Rel::Dense(if m.dim() == d { m.clone() } else { m.resized(d) }),
                Rel::Sparse(m) => Rel::Sparse(if m.dim() == d { m.clone() } else { m.resized(d) }),
                Rel::Compressed(m) => {
                    Rel::Compressed(if m.dim() == d { m.clone() } else { m.resized(d) })
                }
            };
        }
        // Cross-backend conversion replays the pair stream; both sides
        // uphold the ascending iteration-order contract, so the sorted
        // inserts stay cheap (appends at the row tail).
        let mut out = Rel::with_backend(d, backend);
        for (r, c) in self.iter() {
            out.set(r, c);
        }
        out
    }

    /// Union at the joined dimension, on the policy backend for it.
    #[must_use]
    pub fn union(&self, other: &Rel) -> Rel {
        let d = self.dim().max(other.dim());
        let backend = rel_backend_for(d);
        let mut out = self.coerced(d, backend);
        let rhs = other.coerced(d, backend);
        match (&mut out, &rhs) {
            (Rel::Dense(a), Rel::Dense(b)) => a.or_assign(b),
            (Rel::Sparse(a), Rel::Sparse(b)) => a.or_assign(b),
            (Rel::Compressed(a), Rel::Compressed(b)) => a.or_assign(b),
            _ => unreachable!("operands coerced to one backend"),
        }
        if rel_fault_active() && matches!(out, Rel::Sparse(_)) {
            // Injected oracle-validation fault: drop the largest pair.
            if let Some(victim) = out.iter().last() {
                let mut broken = Rel::with_backend(d, backend);
                for (r, c) in out.iter() {
                    if (r, c) != victim {
                        broken.set(r, c);
                    }
                }
                return broken;
            }
        }
        out
    }

    /// Intersection at the joined dimension, on the policy backend for it.
    #[must_use]
    pub fn meet(&self, other: &Rel) -> Rel {
        let d = self.dim().max(other.dim());
        let backend = rel_backend_for(d);
        let mut out = self.coerced(d, backend);
        let rhs = other.coerced(d, backend);
        match (&mut out, &rhs) {
            (Rel::Dense(a), Rel::Dense(b)) => a.and_assign(b),
            (Rel::Sparse(a), Rel::Sparse(b)) => a.and_assign(b),
            (Rel::Compressed(a), Rel::Compressed(b)) => a.and_assign(b),
            _ => unreachable!("operands coerced to one backend"),
        }
        out
    }

    /// Relational composition (`self` applied first) at the joined
    /// dimension, on the policy backend for it; rows fan across
    /// [`crate::effective_workers`]`(threads)` workers and `budget` is
    /// polled at row-stride boundaries (timing axes plus the
    /// relation-memory axis).
    ///
    /// # Errors
    /// Returns the tripped axis; partial output is discarded.
    pub fn compose_governed(
        &self,
        other: &Rel,
        budget: &Budget,
        threads: usize,
    ) -> Result<Rel, BudgetExceeded> {
        let d = self.dim().max(other.dim());
        let backend = rel_backend_for(d);
        let lhs = self.coerced(d, backend);
        let rhs = other.coerced(d, backend);
        match (&lhs, &rhs) {
            (Rel::Dense(a), Rel::Dense(b)) => {
                Ok(Rel::Dense(a.compose_governed(b, budget, threads)?))
            }
            (Rel::Sparse(a), Rel::Sparse(b)) => {
                Ok(Rel::Sparse(a.compose_governed(b, budget, threads)?))
            }
            (Rel::Compressed(a), Rel::Compressed(b)) => {
                Ok(Rel::Compressed(a.compose_governed(b, budget, threads)?))
            }
            _ => unreachable!("operands coerced to one backend"),
        }
    }

    /// The reflexive-transitive closure on this relation's own backend and
    /// dimension, `budget`-governed as in
    /// [`compose_governed`](Self::compose_governed).
    ///
    /// # Errors
    /// Returns the tripped axis; the partial closure is discarded.
    pub fn closure_governed(
        &self,
        budget: &Budget,
        threads: usize,
    ) -> Result<Rel, BudgetExceeded> {
        match self {
            Rel::Dense(m) => Ok(Rel::Dense(m.closure_governed(budget, threads)?)),
            Rel::Sparse(m) => Ok(Rel::Sparse(m.closure_governed(budget, threads)?)),
            Rel::Compressed(m) => Ok(Rel::Compressed(m.closure_governed(budget, threads)?)),
        }
    }

    /// The reflexive-transitive closure under an unlimited budget.
    #[must_use]
    pub fn closure_reflexive_transitive(&self, threads: usize) -> Rel {
        match self.closure_governed(&Budget::unlimited(), threads) {
            Ok(m) => m,
            Err(_) => unreachable!("unlimited budget never trips"),
        }
    }

    /// Whether the relation is a partial function (every row holds at most
    /// one entry).
    #[must_use]
    pub fn is_functional(&self) -> bool {
        match self {
            Rel::Dense(m) => (0..m.dim()).all(|r| {
                m.row(r).iter().map(|w| w.count_ones()).sum::<u32>() <= 1
            }),
            Rel::Sparse(m) => (0..m.dim()).all(|r| m.row(r).len() <= 1),
            Rel::Compressed(m) => (0..m.dim()).all(|r| m.row(r).len() <= 1),
        }
    }

    /// Whether the relation is total on `0..n` (every source `< n` has at
    /// least one target).
    #[must_use]
    pub fn is_total(&self, n: usize) -> bool {
        match self {
            Rel::Dense(m) => (0..n).all(|a| a < m.dim() && m.row(a).iter().any(|&w| w != 0)),
            Rel::Sparse(m) => (0..n).all(|a| a < m.dim() && !m.row(a).is_empty()),
            Rel::Compressed(m) => (0..n).all(|a| a < m.dim() && !m.row(a).is_empty()),
        }
    }

    /// One `[p]`-modality sweep: `out[i]` is true iff every target of `i`
    /// lies in `inner` (vacuously true for target-free rows); targets
    /// `≥ inner.len()` count as unsatisfied. Word-parallel on the dense
    /// backend, an adjacency/container scan on the other two.
    #[must_use]
    pub fn box_states(&self, inner: &[bool]) -> Vec<bool> {
        match self {
            Rel::Dense(m) => {
                let mask = dense_inner_mask(m, inner);
                (0..inner.len())
                    .map(|i| {
                        if i >= m.dim() {
                            return true;
                        }
                        m.row(i).iter().zip(&mask).all(|(&r, &msk)| r & !msk == 0)
                    })
                    .collect()
            }
            Rel::Sparse(_) | Rel::Compressed(_) => (0..inner.len())
                .map(|i| {
                    self.row_iter_or_empty(i)
                        .all(|j| j < inner.len() && inner[j])
                })
                .collect(),
        }
    }

    /// One `⟨p⟩`-modality sweep: `out[i]` is true iff some target of `i`
    /// lies in `inner`.
    #[must_use]
    pub fn diamond_states(&self, inner: &[bool]) -> Vec<bool> {
        match self {
            Rel::Dense(m) => {
                let mask = dense_inner_mask(m, inner);
                (0..inner.len())
                    .map(|i| {
                        if i >= m.dim() {
                            return false;
                        }
                        m.row(i).iter().zip(&mask).any(|(&r, &msk)| r & msk != 0)
                    })
                    .collect()
            }
            Rel::Sparse(_) | Rel::Compressed(_) => (0..inner.len())
                .map(|i| {
                    self.row_iter_or_empty(i)
                        .any(|j| j < inner.len() && inner[j])
                })
                .collect(),
        }
    }

    /// Pair-set equality across backends and allocated dimensions.
    #[must_use]
    pub fn set_eq(&self, other: &Rel) -> bool {
        if let (Rel::Dense(a), Rel::Dense(b)) = (self, other) {
            // Word-parallel fast path: compare the shared row prefix, then
            // require every tail word and every extra row to be zero.
            let (small, big) = if a.dim() <= b.dim() { (a, b) } else { (b, a) };
            let ws = small.words_per_row();
            let ns = small.dim();
            for r in 0..ns {
                let rb = big.row(r);
                if small.row(r) != &rb[..ws] || rb[ws..].iter().any(|&w| w != 0) {
                    return false;
                }
            }
            return (ns..big.dim()).all(|r| big.row(r).iter().all(|&w| w == 0));
        }
        let d = self.dim().max(other.dim());
        (0..d).all(|r| {
            self.row_iter_or_empty(r)
                .eq(other.row_iter_or_empty(r))
        })
    }
}

/// `inner` packed into row-aligned words (bits `≥ inner.len()` clear).
fn dense_inner_mask(m: &BitMatrix, inner: &[bool]) -> Vec<u64> {
    let mut mask = vec![0u64; m.words_per_row().max(inner.len().div_ceil(64))];
    for (j, &sat) in inner.iter().enumerate() {
        if sat {
            mask[j >> 6] |= 1u64 << (j & 63);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_policy_pins_and_restores() {
        {
            let _g = force_rel_backend(RelChoice::Sparse);
            assert_eq!(rel_backend_for(1), RelBackend::Sparse);
            assert_eq!(Rel::new(8).backend(), RelBackend::Sparse);
        }
        {
            let _g = force_rel_backend(RelChoice::Dense);
            assert_eq!(rel_backend_for(1 << 20), RelBackend::Dense);
        }
        {
            let _g = force_rel_backend(RelChoice::Compressed);
            assert_eq!(rel_backend_for(1), RelBackend::Compressed);
            assert_eq!(Rel::new(8).backend(), RelBackend::Compressed);
        }
        {
            let _g = force_rel_backend(RelChoice::AutoAt(100));
            assert_eq!(rel_backend_for(100), RelBackend::Dense);
            assert_eq!(rel_backend_for(101), RelBackend::Sparse);
            // The compressed floor still applies above the dense band
            // (default one full chunk unless the env overrides it).
            let floor = crate::envcfg::rel_compressed_min_dim();
            if floor > 101 {
                assert_eq!(rel_backend_for(floor - 1), RelBackend::Sparse);
            }
            assert_eq!(rel_backend_for(floor.max(101)), RelBackend::Compressed);
        }
    }

    #[test]
    fn mixed_backend_ops_agree_with_pure_dense() {
        let _g = force_rel_backend(RelChoice::AutoAt(64));
        // dim 32 → dense, dim 128 → sparse under this crossover.
        let mut small = Rel::new(32);
        small.set(0, 1);
        small.set(3, 31);
        assert_eq!(small.backend(), RelBackend::Dense);
        let mut big = Rel::new(128);
        big.set(0, 1);
        big.set(31, 100);
        big.set(100, 0);
        assert_eq!(big.backend(), RelBackend::Sparse);

        let u = small.union(&big);
        assert_eq!(u.backend(), RelBackend::Sparse);
        assert_eq!(
            u.iter().collect::<Vec<_>>(),
            vec![(0, 1), (3, 31), (31, 100), (100, 0)]
        );
        let m = small.meet(&big);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(0, 1)]);
        let c = big
            .compose_governed(&big, &Budget::unlimited(), 1)
            .unwrap();
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![(31, 0), (100, 1)]);
        // Growth across the crossover migrates storage.
        let grown = small.resized(128);
        assert_eq!(grown.backend(), RelBackend::Sparse);
        assert!(grown.set_eq(&small));
    }

    #[test]
    fn set_eq_spans_backends_and_dims() {
        let _g = force_rel_backend(RelChoice::AutoAt(64));
        let mut d = Rel::with_backend(40, RelBackend::Dense);
        let mut s = Rel::with_backend(300, RelBackend::Sparse);
        let mut c = Rel::with_backend(90_000, RelBackend::Compressed);
        for (a, b) in [(0usize, 5usize), (17, 3), (39, 39)] {
            d.set(a, b);
            s.set(a, b);
            c.set(a, b);
        }
        assert!(d.set_eq(&s) && s.set_eq(&d));
        assert!(d.set_eq(&c) && c.set_eq(&d) && s.set_eq(&c));
        s.set(40, 0);
        assert!(!d.set_eq(&s) && !s.set_eq(&d) && !c.set_eq(&s));
    }

    #[test]
    fn sweeps_and_contracts_agree_across_backends() {
        let pairs = [(0usize, 1usize), (0, 2), (1, 2), (3, 0), (5, 5)];
        let mut d = Rel::with_backend(6, RelBackend::Dense);
        let mut s = Rel::with_backend(6, RelBackend::Sparse);
        let mut c = Rel::with_backend(6, RelBackend::Compressed);
        for &(a, b) in &pairs {
            d.set(a, b);
            s.set(a, b);
            c.set(a, b);
        }
        let inner = vec![false, true, true, false, true, false];
        assert_eq!(d.box_states(&inner), s.box_states(&inner));
        assert_eq!(d.box_states(&inner), c.box_states(&inner));
        assert_eq!(d.diamond_states(&inner), s.diamond_states(&inner));
        assert_eq!(d.diamond_states(&inner), c.diamond_states(&inner));
        assert_eq!(d.is_functional(), s.is_functional());
        assert_eq!(d.is_functional(), c.is_functional());
        for n in 0..7 {
            assert_eq!(d.is_total(n), s.is_total(n));
            assert_eq!(d.is_total(n), c.is_total(n));
        }
        let closed: Vec<_> = d.closure_reflexive_transitive(1).iter().collect();
        assert_eq!(
            closed,
            s.closure_reflexive_transitive(1).iter().collect::<Vec<_>>()
        );
        assert_eq!(
            closed,
            c.closure_reflexive_transitive(1).iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn compressed_coercions_and_byte_accounting() {
        let _g = force_rel_backend(RelChoice::Compressed);
        let mut r = Rel::new(70_000);
        assert_eq!(r.backend(), RelBackend::Compressed);
        for c in 0..640usize {
            r.set(7, 65_200 + c);
        }
        // One run straddling the chunk boundary → two containers. Point
        // inserts keep array encodings (336 + 304 values)...
        assert_eq!(r.count_ones(), 640);
        assert_eq!(r.mem_bytes(), (8 + 2 * 336) + (8 + 2 * 304));
        // ...while bulk-built rows normalize: composing with the identity
        // rebuilds the row as one 4-byte run per chunk.
        let norm = r
            .compose_governed(&Rel::identity(70_000), &Budget::unlimited(), 1)
            .unwrap();
        assert!(norm.set_eq(&r));
        assert_eq!(norm.mem_bytes(), 2 * (8 + 4));
        // Round-trip through the sparse backend preserves the pair set
        // (a dense coercion at this dim would allocate ~600 MB).
        let s = r.coerced(70_000, RelBackend::Sparse);
        assert!(s.set_eq(&r));
        assert_eq!(s.mem_bytes(), 4 * 640);
        let back = s.coerced(70_000, RelBackend::Compressed);
        assert!(back.set_eq(&r));
        assert_eq!(back.mem_bytes(), r.mem_bytes());
    }
}
