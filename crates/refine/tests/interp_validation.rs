//! Unit tests for interpretation validation error paths: `K` must reject
//! arity, kind and Boolean-ness mismatches; the induced algebra must reject
//! ill-typed evaluations; the bridge must reject misaligned carriers.

use std::sync::Arc;

use eclectic_algebraic::{parse_equations, AlgSignature, AlgSpec};
use eclectic_logic::{Domains, Formula, Signature, Term};
use eclectic_refine::{InducedAlgebra, InterpretationK, QueryImpl, RefineError};
use eclectic_rpr::{DbState, ProcDecl, QueryDef, Schema, Stmt};

fn alg_spec() -> AlgSpec {
    let mut a = AlgSignature::new().unwrap();
    let course = a.add_param_sort("course", &["db"]).unwrap();
    a.add_query("offered", &[course], None).unwrap();
    a.add_update("initiate", &[], false).unwrap();
    a.add_update("offer", &[course], true).unwrap();
    a.add_param_var("c", course).unwrap();
    a.add_param_var("c'", course).unwrap();
    let eqs = parse_equations(
        &mut a,
        &[
            ("eq1", "offered(c, initiate) = False"),
            ("eq3", "offered(c, offer(c, U)) = True"),
            ("eq4", "c != c' ==> offered(c, offer(c', U)) = offered(c, U)"),
        ],
    )
    .unwrap();
    AlgSpec::new(a, eqs).unwrap()
}

fn schema() -> (Schema, DbState) {
    let mut sig = Signature::new();
    let course = sig.add_sort("course").unwrap();
    let offered = sig.add_db_predicate("OFFERED", &[course]).unwrap();
    let c = sig.add_var("c", course).unwrap();
    let cv = sig.add_var("x", course).unwrap();
    let p_init = ProcDecl {
        name: "initiate".into(),
        params: vec![],
        body: Stmt::RelAssign(
            offered,
            eclectic_rpr::RelTerm {
                vars: vec![cv],
                wff: Formula::False,
            },
        ),
    };
    let p_offer = ProcDecl {
        name: "offer".into(),
        params: vec![c],
        body: Stmt::Insert(offered, vec![Term::Var(c)]),
    };
    let dom = Domains::from_names(&sig, &[("course", &["db"])]).unwrap();
    let sig = Arc::new(sig);
    let schema = Schema::new(sig.clone(), vec![offered], vec![p_init, p_offer]).unwrap();
    (schema, DbState::new(sig, Arc::new(dom)))
}

fn q_offered(schema: &Schema) -> QueryDef {
    let sig = schema.signature();
    let c = sig.var_id("c").unwrap();
    QueryDef::new(
        sig,
        "offered",
        vec![c],
        Formula::Pred(sig.pred_id("OFFERED").unwrap(), vec![Term::Var(c)]),
    )
    .unwrap()
}

#[test]
fn complete_k_builds() {
    let spec = alg_spec();
    let (schema, template) = schema();
    let k = InterpretationK::new(
        &spec,
        &schema,
        vec![("offered", QueryImpl::Bool(q_offered(&schema)))],
        &[("initiate", "initiate"), ("offer", "offer")],
    )
    .unwrap();
    // The induced algebra evaluates the level-2 term tree via the schema.
    let mut ind = InducedAlgebra::new(&spec, &schema, &k, template).unwrap();
    let alg = spec.signature().clone();
    let mut lsig = alg.logic().clone();
    let t = eclectic_logic::parse_term(&mut lsig, "offered(db, offer(db, initiate))").unwrap();
    let v = ind.eval_term(&t, &std::collections::BTreeMap::new()).unwrap();
    assert_eq!(v, eclectic_refine::IndValue::Bool(true));
}

#[test]
fn missing_query_mapping_rejected() {
    let spec = alg_spec();
    let (schema, _) = schema();
    let err = InterpretationK::new(
        &spec,
        &schema,
        vec![],
        &[("initiate", "initiate"), ("offer", "offer")],
    )
    .unwrap_err();
    assert!(matches!(err, RefineError::BadInterpretation(_)));
}

#[test]
fn missing_update_mapping_rejected() {
    let spec = alg_spec();
    let (schema, _) = schema();
    let err = InterpretationK::new(
        &spec,
        &schema,
        vec![("offered", QueryImpl::Bool(q_offered(&schema)))],
        &[("initiate", "initiate")],
    )
    .unwrap_err();
    assert!(matches!(err, RefineError::BadInterpretation(_)));
}

#[test]
fn unknown_procedure_rejected() {
    let spec = alg_spec();
    let (schema, _) = schema();
    let err = InterpretationK::new(
        &spec,
        &schema,
        vec![("offered", QueryImpl::Bool(q_offered(&schema)))],
        &[("initiate", "initiate"), ("offer", "missing_proc")],
    )
    .unwrap_err();
    assert!(matches!(err, RefineError::BadInterpretation(_)));
}

#[test]
fn arity_mismatch_rejected() {
    let spec = alg_spec();
    let (schema, _) = schema();
    // Map the unary update `offer` to the nullary procedure `initiate`.
    let err = InterpretationK::new(
        &spec,
        &schema,
        vec![("offered", QueryImpl::Bool(q_offered(&schema)))],
        &[("initiate", "initiate"), ("offer", "initiate")],
    )
    .unwrap_err();
    assert!(matches!(err, RefineError::BadInterpretation(_)));
}

#[test]
fn wrong_query_arity_rejected() {
    let spec = alg_spec();
    let (schema, _) = schema();
    let sig = schema.signature();
    // A nullary wff where a unary query is expected.
    let bad = QueryDef::new(sig, "offered", vec![], Formula::True).unwrap();
    let err = InterpretationK::new(
        &spec,
        &schema,
        vec![("offered", QueryImpl::Bool(bad))],
        &[("initiate", "initiate"), ("offer", "offer")],
    )
    .unwrap_err();
    assert!(matches!(err, RefineError::BadInterpretation(_)));
}

#[test]
fn bridge_rejects_misaligned_carriers() {
    let spec = alg_spec();
    let (schema, _) = schema();
    // Domains whose element name differs from the parameter name.
    let dom = Domains::from_names(schema.signature(), &[("course", &["not_db"])]).unwrap();
    let template = DbState::new(schema.signature().clone(), Arc::new(dom));
    let k = InterpretationK::new(
        &spec,
        &schema,
        vec![("offered", QueryImpl::Bool(q_offered(&schema)))],
        &[("initiate", "initiate"), ("offer", "offer")],
    )
    .unwrap();
    assert!(matches!(
        InducedAlgebra::new(&spec, &schema, &k, template),
        Err(RefineError::BridgeMismatch(_))
    ));
}
