//! Random-but-equivalent query implementations for the differential
//! fuzzer.
//!
//! The interpretation `K` maps each level-2 Boolean query to a wff of
//! `L3`; *any* logically equivalent wff induces the same algebra, so the
//! fuzzer draws a random syntactic variant per query — `P`, `¬¬P`,
//! `P ∧ True`, `P ∨ False` — from its seed stream. Every engine axis must
//! agree on the induced behaviour regardless of which variant it was
//! handed; a divergence here means some evaluator special-cases a
//! connective incorrectly.

use eclectic_kernel::Rng;
use eclectic_logic::Formula;

/// Wraps `base` in one of four equivalence-preserving shells, chosen by the
/// next draw of `rng`: identity, double negation, conjunction with `True`,
/// or disjunction with `False`.
#[must_use]
pub fn equivalent_variant(base: Formula, rng: &mut Rng) -> Formula {
    match rng.below(4) {
        0 => base,
        1 => base.not().not(),
        2 => base.and(Formula::True),
        _ => base.or(Formula::False),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclectic_logic::{Signature, Term};

    #[test]
    fn variants_are_equivalent_under_evaluation() {
        // Evaluate each variant of `R(db)` over a one-relation structure:
        // all four shells must agree with the base, in both truth states.
        let mut sig = Signature::new();
        let course = sig.add_sort("course").unwrap();
        let db = sig.add_constant("db", course).unwrap();
        let r = sig.add_db_predicate("R", &[course]).unwrap();
        let base = Formula::Pred(r, vec![Term::constant(db)]);

        let domains = eclectic_logic::Domains::from_names(&sig, &[("course", &["db"])]).unwrap();
        let sig = std::sync::Arc::new(sig);
        let domains = std::sync::Arc::new(domains);
        for filled in [false, true] {
            let mut st = eclectic_logic::Structure::new(sig.clone(), domains.clone());
            st.set_constant(db, eclectic_logic::Elem(0)).unwrap();
            if filled {
                st.insert_pred(r, vec![eclectic_logic::Elem(0)]).unwrap();
            }
            let env = eclectic_logic::Valuation::new();
            let expect = eclectic_logic::eval::satisfies(&st, &env, &base).unwrap();
            assert_eq!(expect, filled);
            let mut rng = Rng::new(99);
            for _ in 0..16 {
                let v = equivalent_variant(base.clone(), &mut rng);
                assert_eq!(eclectic_logic::eval::satisfies(&st, &env, &v).unwrap(), expect);
            }
        }
    }

    #[test]
    fn variant_choice_is_seed_deterministic() {
        let mut sig = Signature::new();
        let course = sig.add_sort("course").unwrap();
        let db = sig.add_constant("db", course).unwrap();
        let r = sig.add_db_predicate("R", &[course]).unwrap();
        let base = Formula::Pred(r, vec![Term::constant(db)]);
        let draw = |seed| {
            let mut rng = Rng::new(seed);
            format!("{:?}", equivalent_variant(base.clone(), &mut rng))
        };
        assert_eq!(draw(5), draw(5));
        let distinct: std::collections::BTreeSet<_> = (0..16).map(draw).collect();
        assert!(distinct.len() > 1);
    }
}
