//! Cross-formalism agreement (paper §6): replaying the same update trace at
//! the functions level (term rewriting) and at the representation level
//! (procedure execution) must yield the same answer to every query — the
//! one-to-one correspondence between query functions and relations.
//!
//! With more than one thread (see [`eclectic_kernel::env_threads`]) the
//! level-2 side of each step — one rewriting evaluation per (query,
//! parameter tuple) — is fanned out across worker threads sharing one
//! [`ConcurrentTermStore`] and [`SharedMemo`]; level-3 execution and the
//! comparisons stay on the calling thread, in the same (query, tuple) order
//! as the serial check, so the reported mismatch (if any) is identical.

use std::collections::BTreeMap;
use std::sync::Arc;

use eclectic_algebraic::{induction, AlgError, AlgSpec, Rewriter};
use eclectic_kernel::{
    env_threads, run_tasks, Budget, BudgetExceeded, ConcurrentTermStore, Exhaustion, IndexQueue,
    Interner, SharedMemo, StoreHandle, TermId,
};
use eclectic_logic::{Elem, FuncId, Term};
use eclectic_rpr::DbState;

use crate::error::{RefineError, Result};
use crate::interp2::{IndValue, InducedAlgebra};
use crate::reach::budget_stop;

/// One operation of a replayable trace: update name plus parameter elements.
pub type Op = (String, Vec<Elem>);

/// A disagreement between the two levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Query name.
    pub query: String,
    /// Rendered parameter tuple.
    pub params: String,
    /// Level-2 (rewriting) answer.
    pub level2: String,
    /// Level-3 (execution) answer.
    pub level3: String,
    /// Number of operations applied before the disagreement.
    pub after_ops: usize,
}

/// Statistics from a cross-check run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossCheckStats {
    /// Operations replayed.
    pub ops: usize,
    /// Query instances compared.
    pub comparisons: usize,
}

/// One comparison site: a query, its parameter tuple as terms, and the same
/// tuple interned. Enumerated once per check, not once per step.
type QueryItem = (FuncId, Vec<Term>, Vec<TermId>);

/// Replays `ops` at both levels, comparing every query after every step,
/// using [`env_threads`] worker threads for the level-2 evaluations.
/// Returns the first mismatch, if any.
///
/// # Errors
/// Propagates rewriting/execution errors (e.g. the trace must start with an
/// `initiate`-style constant; the first op's update must take no state).
pub fn cross_check(
    spec: &AlgSpec,
    ind: &mut InducedAlgebra<'_>,
    ops: &[Op],
) -> Result<(Option<Mismatch>, CrossCheckStats)> {
    cross_check_threads(spec, ind, ops, env_threads())
}

/// As [`cross_check`], with an explicit thread count.
///
/// # Errors
/// See [`cross_check`].
pub fn cross_check_threads(
    spec: &AlgSpec,
    ind: &mut InducedAlgebra<'_>,
    ops: &[Op],
    threads: usize,
) -> Result<(Option<Mismatch>, CrossCheckStats)> {
    cross_check_budget(spec, ind, ops, &Budget::unlimited(), threads)
        .map(|(m, stats, _)| (m, stats))
}

/// As [`cross_check_threads`], governed by a [`Budget`]. The budget is
/// polled before each trace operation with the number of operations fully
/// replayed so far, so a node cap stops after the same operation at every
/// thread count; deadline and cancellation trips additionally interrupt the
/// level-2 evaluations mid-operation and report the operations completed.
/// Exhaustion returns the statistics so far with an [`Exhaustion`] record
/// instead of failing.
///
/// # Errors
/// See [`cross_check`]; budget exhaustion is *not* an error.
pub fn cross_check_budget(
    spec: &AlgSpec,
    ind: &mut InducedAlgebra<'_>,
    ops: &[Op],
    budget: &Budget,
    threads: usize,
) -> Result<(Option<Mismatch>, CrossCheckStats, Option<Exhaustion>)> {
    let threads = eclectic_kernel::effective_workers(threads);
    if threads <= 1 {
        cross_check_serial(ind, ops, budget, Rewriter::new(spec))
    } else {
        cross_check_parallel(spec, ind, ops, budget, threads)
    }
}

/// Enumerates every (query, parameter tuple) comparison site, with the
/// tuples both as terms (for level 3) and interned (for level 2). The term
/// and id enumerations align because `param_tuples` and `param_tuple_ids`
/// produce tuples in the same order.
fn query_items<S: Interner>(
    rw: &mut Rewriter<'_, S>,
    ind: &InducedAlgebra<'_>,
) -> Result<Vec<QueryItem>> {
    let alg = rw.spec().signature().clone();
    let mut items = Vec::new();
    let queries: Vec<_> = alg.queries().collect();
    for q in queries {
        let qsorts = alg.query_params(q)?;
        let tuple_ids = induction::param_tuple_ids(rw, &qsorts)?;
        for (params, param_ids) in induction::param_tuples(&alg, &qsorts)?
            .into_iter()
            .zip(tuple_ids)
        {
            // Pre-validate the bridge mapping so workers never need it.
            for &p in &param_ids {
                ind.bridge().elem_of_id(rw.store(), p)?;
            }
            items.push((q, params, param_ids));
        }
    }
    Ok(items)
}

/// Extends the interned level-2 trace term by one operation and runs the
/// induced level-3 update, returning the new (term, state) pair.
fn step<S: Interner>(
    rw: &mut Rewriter<'_, S>,
    ind: &mut InducedAlgebra<'_>,
    name: &str,
    args: &[Elem],
    term: &mut Option<TermId>,
    state: &mut Option<DbState>,
) -> Result<(TermId, DbState)> {
    let alg = rw.spec().signature().clone();
    let u = alg
        .logic()
        .func_id(name)
        .map_err(|e| RefineError::BadInterpretation(format!("{e}")))?;
    let takes_state = alg.update_takes_state(u)?;
    let sorts = alg.update_params(u)?;
    if sorts.len() != args.len() {
        return Err(RefineError::BadInterpretation(format!(
            "`{name}` takes {} parameter(s), trace supplies {}",
            sorts.len(),
            args.len()
        )));
    }
    let mut targs: Vec<Term> = Vec::with_capacity(args.len() + 1);
    for (&sort, &e) in sorts.iter().zip(args) {
        let lsort = ind.bridge().logic_sort(sort)?;
        targs.push(ind.bridge().term_of_elem(lsort, e)?);
    }
    // Level 2: extend the interned trace term, sharing the previous trace.
    let targ_ids: Vec<TermId> = targs.iter().map(|t| rw.intern(t)).collect();
    let new_term = if takes_state {
        let prev = term.take().ok_or_else(|| {
            RefineError::BadInterpretation(format!(
                "trace applies `{name}` before any initial state"
            ))
        })?;
        let mut a = targ_ids;
        a.push(prev);
        rw.app_id(u, &a)
    } else {
        rw.app_id(u, &targ_ids)
    };
    // Level 3: run the induced update.
    let mut env = BTreeMap::new();
    let mut full_args = targs;
    if takes_state {
        let prev_state = state.take().expect("state tracks term");
        let sv = alg.state_var();
        env.insert(sv, IndValue::State(prev_state));
        full_args.push(Term::Var(sv));
    }
    let next_state = match ind.eval_term(&Term::App(u, full_args), &env)? {
        IndValue::State(s) => s,
        _ => unreachable!("updates produce states"),
    };
    Ok((new_term, next_state))
}

/// Compares one site's level-2 answer against level-3 execution, building
/// the mismatch report if they disagree.
fn compare_site<S: Interner>(
    rw: &mut Rewriter<'_, S>,
    ind: &mut InducedAlgebra<'_>,
    item: &QueryItem,
    l2: TermId,
    next_state: &DbState,
    after_ops: usize,
) -> Result<Option<Mismatch>> {
    let (q, params, param_ids) = item;
    let alg = rw.spec().signature().clone();
    let elems: Vec<Elem> = param_ids
        .iter()
        .map(|&p| ind.bridge().elem_of_id(rw.store(), p).map(|(_, e)| e))
        .collect::<Result<_>>()?;
    let sv = alg.state_var();
    let mut env = BTreeMap::new();
    env.insert(sv, IndValue::State(next_state.clone()));
    let mut qargs: Vec<Term> = params.clone();
    qargs.push(Term::Var(sv));
    let l3 = ind.eval_term(&Term::App(*q, qargs), &env)?;
    let l2v = level2_value(ind, rw, l2)?;
    if l2v != l3 {
        let qname = alg.logic().func(*q).name.clone();
        let l2_term = rw.extern_term(l2);
        return Ok(Some(Mismatch {
            query: qname,
            params: format!("{elems:?}"),
            level2: eclectic_algebraic::term_str(&alg, &l2_term),
            level3: format!("{l3:?}"),
            after_ops,
        }));
    }
    Ok(None)
}

fn cross_check_serial<S: Interner>(
    ind: &mut InducedAlgebra<'_>,
    ops: &[Op],
    budget: &Budget,
    mut rw: Rewriter<'_, S>,
) -> Result<(Option<Mismatch>, CrossCheckStats, Option<Exhaustion>)> {
    let mut stats = CrossCheckStats::default();
    let exhaust =
        |stats, reason, i| Ok((None, stats, Some(budget.exhaustion("cross", reason, i))));
    if let Some(reason) = budget.check(0) {
        return exhaust(stats, reason, 0);
    }
    rw.set_budget(budget.without_node_cap());
    let items = match query_items(&mut rw, ind) {
        Ok(items) => items,
        Err(e) => match budget_stop(&e) {
            Some(reason) => return exhaust(stats, reason, 0),
            None => return Err(e),
        },
    };

    let mut term: Option<TermId> = None;
    let mut state: Option<DbState> = None;

    for (i, (name, args)) in ops.iter().enumerate() {
        if let Some(reason) = budget.check(i) {
            return exhaust(stats, reason, i);
        }
        let (new_term, next_state) = match step(&mut rw, ind, name, args, &mut term, &mut state) {
            Ok(pair) => pair,
            Err(e) => match budget_stop(&e) {
                Some(reason) => return exhaust(stats, reason, i),
                None => return Err(e),
            },
        };
        stats.ops += 1;
        for item in &items {
            stats.comparisons += 1;
            let l2 = match rw.eval_query_id(item.0, &item.2, new_term) {
                Ok(l2) => l2,
                Err(AlgError::Budget { reason }) => return exhaust(stats, reason, i),
                Err(e) => return Err(e.into()),
            };
            if let Some(m) = compare_site(&mut rw, ind, item, l2, &next_state, i + 1)? {
                return Ok((Some(m), stats, None));
            }
        }
        term = Some(new_term);
        state = Some(next_state);
    }
    Ok((None, stats, None))
}

fn cross_check_parallel(
    spec: &AlgSpec,
    ind: &mut InducedAlgebra<'_>,
    ops: &[Op],
    budget: &Budget,
    threads: usize,
) -> Result<(Option<Mismatch>, CrossCheckStats, Option<Exhaustion>)> {
    let mut stats = CrossCheckStats::default();
    let exhaust =
        |stats, reason, i| Ok((None, stats, Some(budget.exhaustion("cross", reason, i))));
    if let Some(reason) = budget.check(0) {
        return exhaust(stats, reason, 0);
    }
    let store = ConcurrentTermStore::shared();
    let memo = Arc::new(SharedMemo::default());
    let mut rw0 = Rewriter::with_store(spec, StoreHandle::new(store.clone()));
    rw0.set_shared_memo(memo.clone());
    rw0.set_budget(budget.without_node_cap());
    let items = match query_items(&mut rw0, ind) {
        Ok(items) => items,
        Err(e) => match budget_stop(&e) {
            Some(reason) => return exhaust(stats, reason, 0),
            None => return Err(e),
        },
    };

    let mut workers: Vec<Rewriter<'_, StoreHandle>> = (0..threads)
        .map(|_| {
            let mut rw = Rewriter::with_store(spec, StoreHandle::new(store.clone()));
            rw.set_shared_memo(memo.clone());
            rw.set_budget(budget.without_node_cap());
            rw
        })
        .collect();

    let mut term: Option<TermId> = None;
    let mut state: Option<DbState> = None;

    for (i, (name, args)) in ops.iter().enumerate() {
        if let Some(reason) = budget.check(i) {
            return exhaust(stats, reason, i);
        }
        let (new_term, next_state) = match step(&mut rw0, ind, name, args, &mut term, &mut state) {
            Ok(pair) => pair,
            Err(e) => match budget_stop(&e) {
                Some(reason) => return exhaust(stats, reason, i),
                None => return Err(e),
            },
        };
        stats.ops += 1;

        // Fan the level-2 evaluations across the workers; ids are
        // comparable across rewriters because every handle interns into the
        // same concurrent store. Sites are claimed in chunks off a shared
        // queue and slotted by site index, so the merge replays serial
        // site order whatever the claim interleaving was.
        let nworkers = workers.len().min(items.len()).max(1);
        let queue = IndexQueue::new(items.len(), nworkers);
        type SitesOut = (
            Vec<(usize, TermId)>,
            Option<(usize, BudgetExceeded)>,
            Option<(usize, RefineError)>,
        );
        let site_outs: Vec<SitesOut> = {
            let queue = &queue;
            let items = &items;
            let tasks: Vec<Box<dyn FnOnce() -> SitesOut + Send + '_>> = workers
                .iter_mut()
                .take(nworkers)
                .map(|w| {
                    let f: Box<dyn FnOnce() -> SitesOut + Send + '_> = Box::new(move || {
                        let mut out = Vec::new();
                        while let Some(range) = queue.claim() {
                            for k in range {
                                let (q, _, param_ids) = &items[k];
                                match w.eval_query_id(*q, param_ids, new_term) {
                                    Ok(id) => out.push((k, id)),
                                    Err(AlgError::Budget { reason }) => {
                                        return (out, Some((k, reason)), None);
                                    }
                                    Err(e) => {
                                        return (out, None, Some((k, RefineError::Alg(e))));
                                    }
                                }
                            }
                        }
                        (out, None, None)
                    });
                    f
                })
                .collect();
            run_tasks(nworkers, tasks)
        };
        // Replay in site order: the earliest hard error wins (exactly the
        // one the serial site loop would have hit), else the earliest
        // timing stop.
        let first_err = site_outs
            .iter()
            .filter_map(|(_, _, e)| e.as_ref().map(|(k, _)| *k))
            .min();
        if let Some(k0) = first_err {
            let (_, e) = site_outs
                .into_iter()
                .filter_map(|(_, _, e)| e)
                .find(|(k, _)| *k == k0)
                .expect("error index recorded");
            return Err(e);
        }
        let stop = site_outs
            .iter()
            .filter_map(|(_, s, _)| *s)
            .min_by_key(|(k, _)| *k);
        if let Some((_, reason)) = stop {
            // A timing axis tripped inside a worker: this operation's
            // comparisons are incomplete, so drop them and report the
            // operations fully replayed.
            return exhaust(stats, reason, i);
        }
        let mut slots: Vec<Option<TermId>> = vec![None; items.len()];
        for (ids, _, _) in site_outs {
            for (k, id) in ids {
                slots[k] = Some(id);
            }
        }
        let l2s: Vec<TermId> = slots
            .into_iter()
            .map(|slot| slot.expect("every site evaluated"))
            .collect();

        // Level 3 and the comparison stay serial, in site order.
        for (item, &l2) in items.iter().zip(&l2s) {
            stats.comparisons += 1;
            if let Some(m) = compare_site(&mut rw0, ind, item, l2, &next_state, i + 1)? {
                return Ok((Some(m), stats, None));
            }
        }
        term = Some(new_term);
        state = Some(next_state);
    }
    Ok((None, stats, None))
}

fn level2_value<S: Interner>(
    ind: &InducedAlgebra<'_>,
    rw: &mut Rewriter<'_, S>,
    t: TermId,
) -> Result<IndValue> {
    if t == rw.true_id() {
        return Ok(IndValue::Bool(true));
    }
    if t == rw.false_id() {
        return Ok(IndValue::Bool(false));
    }
    let (sort, e) = ind.bridge().elem_of_id(rw.store(), t)?;
    Ok(IndValue::Param(sort, e))
}

/// Generates a pseudo-random replayable trace of `len` operations starting
/// with the given initial update name; `choose(n)` picks an index below `n`
/// (callers supply the RNG so the crate stays dependency-free).
///
/// # Errors
/// Propagates signature errors.
pub fn random_ops(
    spec: &AlgSpec,
    ind: &InducedAlgebra<'_>,
    initial: &str,
    len: usize,
    mut choose: impl FnMut(usize) -> usize,
) -> Result<Vec<Op>> {
    let alg = spec.signature();
    let mut ops: Vec<Op> = vec![(initial.to_string(), Vec::new())];
    let updates: Vec<_> = alg
        .updates()
        .filter(|&u| alg.update_takes_state(u).unwrap_or(false))
        .collect();
    if updates.is_empty() {
        return Ok(ops);
    }
    for _ in 0..len {
        let u = updates[choose(updates.len()) % updates.len()];
        let sorts = alg.update_params(u)?;
        let mut args = Vec::with_capacity(sorts.len());
        for s in sorts {
            let lsort = ind.bridge().logic_sort(s)?;
            let card = ind.domains().card(lsort).max(1);
            args.push(Elem((choose(card) % card) as u32));
        }
        ops.push((alg.logic().func(u).name.clone(), args));
    }
    Ok(ops)
}
