//! Cross-formalism agreement (paper §6): replaying the same update trace at
//! the functions level (term rewriting) and at the representation level
//! (procedure execution) must yield the same answer to every query — the
//! one-to-one correspondence between query functions and relations.

use std::collections::BTreeMap;

use eclectic_algebraic::{induction, AlgSpec, Rewriter};
use eclectic_kernel::TermId;
use eclectic_logic::{Elem, Term};
use eclectic_rpr::DbState;

use crate::error::{RefineError, Result};
use crate::interp2::{InducedAlgebra, IndValue};

/// One operation of a replayable trace: update name plus parameter elements.
pub type Op = (String, Vec<Elem>);

/// A disagreement between the two levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Query name.
    pub query: String,
    /// Rendered parameter tuple.
    pub params: String,
    /// Level-2 (rewriting) answer.
    pub level2: String,
    /// Level-3 (execution) answer.
    pub level3: String,
    /// Number of operations applied before the disagreement.
    pub after_ops: usize,
}

/// Statistics from a cross-check run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossCheckStats {
    /// Operations replayed.
    pub ops: usize,
    /// Query instances compared.
    pub comparisons: usize,
}

/// Replays `ops` at both levels, comparing every query after every step.
/// Returns the first mismatch, if any.
///
/// # Errors
/// Propagates rewriting/execution errors (e.g. the trace must start with an
/// `initiate`-style constant; the first op's update must take no state).
pub fn cross_check(
    spec: &AlgSpec,
    ind: &mut InducedAlgebra<'_>,
    ops: &[Op],
) -> Result<(Option<Mismatch>, CrossCheckStats)> {
    let alg = spec.signature().clone();
    let mut rw = Rewriter::new(spec);
    let mut stats = CrossCheckStats::default();

    // Level-2 state is tracked as an interned trace term: each step appends
    // one update by id, sharing the entire previous trace, and each query is
    // evaluated through the rewriter's id-keyed memo table.
    let mut term: Option<TermId> = None;
    let mut state: Option<DbState> = None;

    for (i, (name, args)) in ops.iter().enumerate() {
        let u = alg
            .logic()
            .func_id(name)
            .map_err(|e| RefineError::BadInterpretation(format!("{e}")))?;
        let takes_state = alg.update_takes_state(u)?;
        let sorts = alg.update_params(u)?;
        if sorts.len() != args.len() {
            return Err(RefineError::BadInterpretation(format!(
                "`{name}` takes {} parameter(s), trace supplies {}",
                sorts.len(),
                args.len()
            )));
        }
        let mut targs: Vec<Term> = Vec::with_capacity(args.len() + 1);
        for (&sort, &e) in sorts.iter().zip(args) {
            let lsort = ind.bridge().logic_sort(sort)?;
            targs.push(ind.bridge().term_of_elem(lsort, e)?);
        }
        // Level 2: extend the interned trace term.
        let targ_ids: Vec<TermId> = targs.iter().map(|t| rw.intern(t)).collect();
        let new_term = if takes_state {
            let prev = term.take().ok_or_else(|| {
                RefineError::BadInterpretation(format!(
                    "trace applies `{name}` before any initial state"
                ))
            })?;
            let mut a = targ_ids;
            a.push(prev);
            rw.app_id(u, &a)
        } else {
            rw.app_id(u, &targ_ids)
        };
        // Level 3: run the induced update.
        let mut env = BTreeMap::new();
        let mut full_args = targs;
        if takes_state {
            let prev_state = state.take().expect("state tracks term");
            let sv = alg.state_var();
            env.insert(sv, IndValue::State(prev_state));
            full_args.push(Term::Var(sv));
        }
        let next_state = match ind.eval_term(&Term::App(u, full_args), &env)? {
            IndValue::State(s) => s,
            _ => unreachable!("updates produce states"),
        };

        stats.ops += 1;

        // Compare every query at both levels. The level-2 side stays
        // interned end to end; tuples are enumerated in the same order by
        // `param_tuples` and `param_tuple_ids`, so the two zips align.
        let queries: Vec<_> = alg.queries().collect();
        for q in queries {
            let qsorts = alg.query_params(q)?;
            let tuple_ids = induction::param_tuple_ids(&mut rw, &qsorts)?;
            for (params, param_ids) in induction::param_tuples(&alg, &qsorts)?
                .into_iter()
                .zip(tuple_ids)
            {
                stats.comparisons += 1;
                let l2 = rw.eval_query_id(q, &param_ids, new_term)?;
                let elems: Vec<Elem> = param_ids
                    .iter()
                    .map(|&p| ind.bridge().elem_of_id(rw.store(), p).map(|(_, e)| e))
                    .collect::<Result<_>>()?;
                let sv = alg.state_var();
                let mut env = BTreeMap::new();
                env.insert(sv, IndValue::State(next_state.clone()));
                let mut qargs: Vec<Term> = params;
                qargs.push(Term::Var(sv));
                let l3 = ind.eval_term(&Term::App(q, qargs), &env)?;
                let l2v = level2_value(spec, ind, &mut rw, l2)?;
                if l2v != l3 {
                    let qname = alg.logic().func(q).name.clone();
                    let l2_term = rw.extern_term(l2);
                    return Ok((
                        Some(Mismatch {
                            query: qname,
                            params: format!("{elems:?}"),
                            level2: eclectic_algebraic::term_str(&alg, &l2_term),
                            level3: format!("{l3:?}"),
                            after_ops: i + 1,
                        }),
                        stats,
                    ));
                }
            }
        }

        term = Some(new_term);
        state = Some(next_state);
    }
    Ok((None, stats))
}

fn level2_value(
    _spec: &AlgSpec,
    ind: &InducedAlgebra<'_>,
    rw: &mut Rewriter<'_>,
    t: TermId,
) -> Result<IndValue> {
    if t == rw.true_id() {
        return Ok(IndValue::Bool(true));
    }
    if t == rw.false_id() {
        return Ok(IndValue::Bool(false));
    }
    let (sort, e) = ind.bridge().elem_of_id(rw.store(), t)?;
    Ok(IndValue::Param(sort, e))
}

/// Generates a pseudo-random replayable trace of `len` operations starting
/// with the given initial update name; `choose(n)` picks an index below `n`
/// (callers supply the RNG so the crate stays dependency-free).
///
/// # Errors
/// Propagates signature errors.
pub fn random_ops(
    spec: &AlgSpec,
    ind: &InducedAlgebra<'_>,
    initial: &str,
    len: usize,
    mut choose: impl FnMut(usize) -> usize,
) -> Result<Vec<Op>> {
    let alg = spec.signature();
    let mut ops: Vec<Op> = vec![(initial.to_string(), Vec::new())];
    let updates: Vec<_> = alg
        .updates()
        .filter(|&u| alg.update_takes_state(u).unwrap_or(false))
        .collect();
    if updates.is_empty() {
        return Ok(ops);
    }
    for _ in 0..len {
        let u = updates[choose(updates.len()) % updates.len()];
        let sorts = alg.update_params(u)?;
        let mut args = Vec::with_capacity(sorts.len());
        for s in sorts {
            let lsort = ind.bridge().logic_sort(s)?;
            let card = ind.domains().card(lsort).max(1);
            args.push(Elem((choose(card) % card) as u32));
        }
        ops.push((alg.logic().func(u).name.clone(), args));
    }
    Ok(ops)
}
