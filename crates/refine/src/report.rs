//! Human-readable rendering of refinement reports.

use std::fmt;

use crate::interp2::EquationCheckReport;
use crate::obligations::Refine12Report;
use crate::witness::ValidReachableReport;

/// A combined report for one full tri-level verification run.
#[derive(Debug, Clone)]
pub struct FullReport {
    /// The 1→2 obligations: (a) sufficient completeness, (b) static
    /// consistency, (d) transition consistency.
    pub refine12: Refine12Report,
    /// Obligation (c): every valid state is reachable.
    pub valid_reachable: ValidReachableReport,
    /// The 2→3 check: every `A2` equation valid in `N(U)`.
    pub equations: EquationCheckReport,
}

impl FullReport {
    /// Whether every obligation holds.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.refine12.is_correct() && self.valid_reachable.holds() && self.equations.is_correct()
    }
}

impl fmt::Display for FullReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "tri-level verification report")?;
        writeln!(f, "==============================")?;
        let r = &self.refine12;
        writeln!(
            f,
            "(a) termination: {} (same-level edges: {}, ascending: {})",
            if r.termination.is_terminating() { "ok" } else { "FAILED" },
            r.termination.same_level_edges.len(),
            r.termination.ascending.len()
        )?;
        if let Some(cycle) = &r.termination.cycle {
            writeln!(f, "    cycle: {}", cycle.join(" -> "))?;
        }
        writeln!(
            f,
            "(a) sufficient completeness: {} ({} ground queries evaluated, {} stuck, {} uncovered pairs)",
            if r.completeness.is_sufficiently_complete() { "ok" } else { "FAILED" },
            r.completeness.evaluated,
            r.completeness.stuck.len(),
            r.completeness.missing.len()
        )?;
        writeln!(
            f,
            "(b) reachable => valid: {} ({} states, {} violations{})",
            if r.static_violations.is_empty() { "ok" } else { "FAILED" },
            r.exploration.universe.state_count(),
            r.static_violations.len(),
            if r.exploration.truncated { ", truncated" } else { "" }
        )?;
        for v in r.static_violations.iter().take(3) {
            writeln!(f, "    {} fails at {}", v.axiom, v.witness)?;
        }
        writeln!(
            f,
            "(c) valid => reachable: {} ({} valid, {} reached{})",
            if self.valid_reachable.holds() { "ok" } else { "FAILED" },
            self.valid_reachable.valid,
            self.valid_reachable.reachable_valid,
            if self.valid_reachable.exploration_truncated {
                ", exploration truncated"
            } else {
                ""
            }
        )?;
        for s in self.valid_reachable.unreachable.iter().take(3) {
            writeln!(f, "    unreached: {s}")?;
        }
        writeln!(
            f,
            "(d) transition consistency: {} ({} violations)",
            if r.transition_violations.is_empty() { "ok" } else { "FAILED" },
            r.transition_violations.len()
        )?;
        for v in r.transition_violations.iter().take(3) {
            writeln!(f, "    {} fails at {}", v.axiom, v.witness)?;
        }
        writeln!(
            f,
            "2->3 equations: {} ({} instances over {} states, {} failures{})",
            if self.equations.is_correct() { "ok" } else { "FAILED" },
            self.equations.instances,
            self.equations.states,
            self.equations.failures.len(),
            if self.equations.truncated { ", truncated" } else { "" }
        )?;
        for e in self.equations.failures.iter().take(3) {
            writeln!(f, "    {} fails with {} at {}", e.equation, e.assignment, e.state)?;
        }
        writeln!(
            f,
            "verdict: {}",
            if self.is_correct() {
                "CORRECT REFINEMENT"
            } else {
                "REFINEMENT VIOLATIONS FOUND"
            }
        )
    }
}
