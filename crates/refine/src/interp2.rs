//! Interpretation `K` and the induced mapping `N`: functions level →
//! representation level (paper §5.3–5.4).
//!
//! `K` maps each level-2 update function to a procedure of the schema and
//! each level-2 query to a wff of `L3` (a [`QueryDef`], or a
//! [`FuncQueryDef`] for non-Boolean targets). The mapping `N` then turns a
//! representation-level universe into a finitely generated structure of
//! `L2`: states are database states, updates act by running the procedures,
//! queries evaluate their wffs — the [`InducedAlgebra`]. `T3` correctly
//! refines `T2` iff every equation of `A2` is valid in the induced algebra,
//! which [`check_equations`] verifies by bounded induction on trace length.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use eclectic_algebraic::{AlgSpec, OpKind, Rewriter};
use eclectic_kernel::{run_workers, Budget, Exhaustion, IndexQueue};
use eclectic_logic::{Domains, Elem, Formula, FuncId, SortId, Term, VarId};
use eclectic_rpr::{exec, DbState, FuncQueryDef, QueryDef, Schema};

use crate::bridge::ParamBridge;
use crate::error::{RefineError, Result};

/// The representation of one level-2 query at level 3.
#[derive(Debug, Clone)]
pub enum QueryImpl {
    /// Boolean query: a wff over the parameters.
    Bool(QueryDef),
    /// Non-Boolean query: a wff relating parameters to a unique output.
    Func(FuncQueryDef),
}

/// The interpretation `K`.
#[derive(Debug, Clone)]
pub struct InterpretationK {
    queries: BTreeMap<FuncId, QueryImpl>,
    updates: BTreeMap<FuncId, String>,
}

impl InterpretationK {
    /// Builds `K`, checking coverage (every query and update of `L2` must be
    /// interpreted) and arity agreement with the schema's procedures.
    ///
    /// # Errors
    /// Returns [`RefineError::BadInterpretation`] on the first problem.
    pub fn new(
        spec: &AlgSpec,
        schema: &Schema,
        queries: Vec<(&str, QueryImpl)>,
        updates: &[(&str, &str)],
    ) -> Result<Self> {
        let alg = spec.signature();
        let bad = |m: String| RefineError::BadInterpretation(m);

        let mut qmap = BTreeMap::new();
        for (qname, qi) in queries {
            let q = alg
                .logic()
                .func_id(qname)
                .map_err(|e| bad(format!("{e}")))?;
            if alg.kind(q) != OpKind::Query {
                return Err(bad(format!("`{qname}` is not a query function")));
            }
            let params = alg.query_params(q).map_err(RefineError::Alg)?;
            let got = match &qi {
                QueryImpl::Bool(d) => d.params.len(),
                QueryImpl::Func(d) => d.params.len(),
            };
            if got != params.len() {
                return Err(bad(format!(
                    "query `{qname}` takes {} parameter(s), K provides {got}",
                    params.len()
                )));
            }
            let is_bool = alg.logic().func(q).range == alg.bool_sort();
            match (&qi, is_bool) {
                (QueryImpl::Bool(_), true) | (QueryImpl::Func(_), false) => {}
                (QueryImpl::Bool(_), false) => {
                    return Err(bad(format!(
                        "query `{qname}` is non-Boolean but K maps it to a Boolean wff"
                    )))
                }
                (QueryImpl::Func(_), true) => {
                    return Err(bad(format!(
                        "query `{qname}` is Boolean but K maps it to a functional wff"
                    )))
                }
            }
            qmap.insert(q, qi);
        }

        let mut umap = BTreeMap::new();
        for (uname, pname) in updates {
            let u = alg
                .logic()
                .func_id(uname)
                .map_err(|e| bad(format!("{e}")))?;
            if alg.kind(u) != OpKind::Update {
                return Err(bad(format!("`{uname}` is not an update function")));
            }
            let proc = schema
                .proc(pname)
                .ok_or_else(|| bad(format!("schema has no procedure `{pname}`")))?;
            let params = alg.update_params(u).map_err(RefineError::Alg)?;
            if proc.params.len() != params.len() {
                return Err(bad(format!(
                    "update `{uname}` takes {} parameter(s), `{pname}` takes {}",
                    params.len(),
                    proc.params.len()
                )));
            }
            umap.insert(u, (*pname).to_string());
        }

        for q in alg.queries() {
            if !qmap.contains_key(&q) {
                return Err(bad(format!(
                    "query `{}` has no interpretation",
                    alg.logic().func(q).name
                )));
            }
        }
        for u in alg.updates() {
            if !umap.contains_key(&u) {
                return Err(bad(format!(
                    "update `{}` has no interpretation",
                    alg.logic().func(u).name
                )));
            }
        }
        Ok(InterpretationK {
            queries: qmap,
            updates: umap,
        })
    }

    /// The query implementation for a level-2 query.
    #[must_use]
    pub fn query_impl(&self, q: FuncId) -> Option<&QueryImpl> {
        self.queries.get(&q)
    }

    /// The procedure name for a level-2 update.
    #[must_use]
    pub fn proc_name(&self, u: FuncId) -> Option<&str> {
        self.updates.get(&u).map(String::as_str)
    }
}

/// A value of the induced algebra `N(U)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndValue {
    /// A Boolean.
    Bool(bool),
    /// A parameter value: `(logic sort, element)`.
    Param(SortId, Elem),
    /// A database state (the carrier of sort `state`).
    State(DbState),
}

/// The structure of `L2` induced by a schema under `K` (the mapping `N`).
#[derive(Debug)]
pub struct InducedAlgebra<'a> {
    spec: &'a AlgSpec,
    schema: &'a Schema,
    k: &'a InterpretationK,
    bridge: ParamBridge,
    domains: Arc<Domains>,
    /// Template used to evaluate `initiate`-style state constants.
    template: DbState,
    /// Rewriter for parameter-only terms (their semantics is shared across
    /// levels, given by the parameter equations of `A2`).
    rw: Rewriter<'a>,
}

impl<'a> InducedAlgebra<'a> {
    /// Creates the induced algebra; `template` supplies the domains and the
    /// start state on which `initiate` acts.
    ///
    /// # Errors
    /// Returns bridge errors if parameter names do not align.
    pub fn new(
        spec: &'a AlgSpec,
        schema: &'a Schema,
        k: &'a InterpretationK,
        template: DbState,
    ) -> Result<Self> {
        let bridge = ParamBridge::new(spec.signature(), schema.signature(), template.domains())?;
        Ok(InducedAlgebra {
            spec,
            schema,
            k,
            bridge,
            domains: template.domains().clone(),
            template,
            rw: Rewriter::new(spec),
        })
    }

    /// The bridge between parameter names and carrier elements.
    #[must_use]
    pub fn bridge(&self) -> &ParamBridge {
        &self.bridge
    }

    /// The shared domains.
    #[must_use]
    pub fn domains(&self) -> &Arc<Domains> {
        &self.domains
    }

    /// Evaluates a level-2 term in the induced algebra.
    ///
    /// # Errors
    /// Propagates execution/evaluation errors; unbound variables are
    /// reported as interpretation errors.
    pub fn eval_term(&mut self, t: &Term, env: &BTreeMap<VarId, IndValue>) -> Result<IndValue> {
        let alg = self.spec.signature().clone();
        match t {
            Term::Var(v) => env.get(v).cloned().ok_or_else(|| {
                RefineError::BadInterpretation(format!(
                    "unbound variable `{}` in induced evaluation",
                    alg.logic().var(*v).name
                ))
            }),
            Term::App(f, args) => match alg.kind(*f) {
                OpKind::Parameter => self.eval_param_app(*f, args, env),
                OpKind::Update => {
                    let proc = self
                        .k
                        .proc_name(*f)
                        .ok_or_else(|| {
                            RefineError::BadInterpretation("update not mapped by K".into())
                        })?
                        .to_string();
                    let takes_state = alg.update_takes_state(*f)?;
                    let (param_args, state) = if takes_state {
                        let (ps, st) = args.split_at(args.len() - 1);
                        let state = match self.eval_term(&st[0], env)? {
                            IndValue::State(s) => s,
                            _ => {
                                return Err(RefineError::BadInterpretation(
                                    "update applied to a non-state".into(),
                                ))
                            }
                        };
                        (ps.to_vec(), state)
                    } else {
                        (args.to_vec(), self.template.clone())
                    };
                    let elems = self.eval_param_elems(&param_args, env)?;
                    let next = exec::call_deterministic(self.schema, &state, &proc, &elems)?;
                    Ok(IndValue::State(next))
                }
                OpKind::Query => {
                    let (ps, st) = args.split_at(args.len() - 1);
                    let state = match self.eval_term(&st[0], env)? {
                        IndValue::State(s) => s,
                        _ => {
                            return Err(RefineError::BadInterpretation(
                                "query applied to a non-state".into(),
                            ))
                        }
                    };
                    let elems = self.eval_param_elems(ps, env)?;
                    match self.k.query_impl(*f) {
                        Some(QueryImpl::Bool(d)) => Ok(IndValue::Bool(d.eval(&state, &elems)?)),
                        Some(QueryImpl::Func(d)) => {
                            let out = d.eval(&state, &elems)?;
                            let sort = state.signature().var(d.output).sort;
                            Ok(IndValue::Param(sort, out))
                        }
                        None => Err(RefineError::BadInterpretation(
                            "query not mapped by K".into(),
                        )),
                    }
                }
            },
        }
    }

    /// Evaluates a parameter-sorted application: Boolean connectives and
    /// equality checks directly; anything else by rewriting (its arguments
    /// must be state-free).
    fn eval_param_app(
        &mut self,
        f: FuncId,
        args: &[Term],
        env: &BTreeMap<VarId, IndValue>,
    ) -> Result<IndValue> {
        let alg = self.spec.signature().clone();
        if f == alg.true_fn() {
            return Ok(IndValue::Bool(true));
        }
        if f == alg.false_fn() {
            return Ok(IndValue::Bool(false));
        }
        if f == alg.not_fn() {
            let a = self.eval_bool(&args[0], env)?;
            return Ok(IndValue::Bool(!a));
        }
        if f == alg.and_fn() {
            let a = self.eval_bool(&args[0], env)?;
            let b = self.eval_bool(&args[1], env)?;
            return Ok(IndValue::Bool(a && b));
        }
        if f == alg.or_fn() {
            let a = self.eval_bool(&args[0], env)?;
            let b = self.eval_bool(&args[1], env)?;
            return Ok(IndValue::Bool(a || b));
        }
        if f == alg.imp_fn() {
            let a = self.eval_bool(&args[0], env)?;
            let b = self.eval_bool(&args[1], env)?;
            return Ok(IndValue::Bool(!a || b));
        }
        if f == alg.iff_fn() {
            let a = self.eval_bool(&args[0], env)?;
            let b = self.eval_bool(&args[1], env)?;
            return Ok(IndValue::Bool(a == b));
        }
        if alg.param_sorts().any(|s| alg.eq_fn(s) == Some(f)) {
            let a = self.eval_term(&args[0], env)?;
            let b = self.eval_term(&args[1], env)?;
            return Ok(IndValue::Bool(a == b));
        }
        // Constant parameter name?
        if args.is_empty() {
            if let Ok((sort, e)) = self.bridge.elem(f) {
                return Ok(IndValue::Param(sort, e));
            }
        }
        // General parameter function: substitute evaluated arguments as
        // parameter-name constants, then rewrite to a parameter name.
        let mut ground = Vec::with_capacity(args.len());
        for a in args {
            let v = self.eval_term(a, env)?;
            ground.push(self.term_of_value(&v)?);
        }
        let n = self.rw.normalize(&Term::App(f, ground))?;
        self.value_of_param_term(&n)
    }

    fn eval_bool(&mut self, t: &Term, env: &BTreeMap<VarId, IndValue>) -> Result<bool> {
        match self.eval_term(t, env)? {
            IndValue::Bool(b) => Ok(b),
            _ => Err(RefineError::BadInterpretation(
                "expected a Boolean value".into(),
            )),
        }
    }

    fn eval_param_elems(
        &mut self,
        args: &[Term],
        env: &BTreeMap<VarId, IndValue>,
    ) -> Result<Vec<Elem>> {
        args.iter()
            .map(|a| match self.eval_term(a, env)? {
                IndValue::Param(_, e) => Ok(e),
                IndValue::Bool(_) | IndValue::State(_) => Err(RefineError::BadInterpretation(
                    "expected a parameter value".into(),
                )),
            })
            .collect()
    }

    /// The level-2 term (parameter name) denoting a non-state value.
    fn term_of_value(&self, v: &IndValue) -> Result<Term> {
        let alg = self.spec.signature();
        match v {
            IndValue::Bool(true) => Ok(alg.true_term()),
            IndValue::Bool(false) => Ok(alg.false_term()),
            IndValue::Param(sort, e) => self.bridge.term_of_elem(*sort, *e),
            IndValue::State(_) => Err(RefineError::BadInterpretation(
                "states have no parameter-name denotation".into(),
            )),
        }
    }

    fn value_of_param_term(&self, t: &Term) -> Result<IndValue> {
        let alg = self.spec.signature();
        if *t == alg.true_term() {
            return Ok(IndValue::Bool(true));
        }
        if *t == alg.false_term() {
            return Ok(IndValue::Bool(false));
        }
        let (sort, e) = self.bridge.elem_of_term(t)?;
        Ok(IndValue::Param(sort, e))
    }

    /// Evaluates an equation condition in the induced algebra.
    ///
    /// # Errors
    /// Propagates evaluation errors; predicates and modalities are invalid.
    pub fn eval_condition(&mut self, f: &Formula, env: &BTreeMap<VarId, IndValue>) -> Result<bool> {
        match f {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Not(p) => Ok(!self.eval_condition(p, env)?),
            Formula::And(p, q) => Ok(self.eval_condition(p, env)? && self.eval_condition(q, env)?),
            Formula::Or(p, q) => Ok(self.eval_condition(p, env)? || self.eval_condition(q, env)?),
            Formula::Implies(p, q) => {
                Ok(!self.eval_condition(p, env)? || self.eval_condition(q, env)?)
            }
            Formula::Iff(p, q) => Ok(self.eval_condition(p, env)? == self.eval_condition(q, env)?),
            Formula::Eq(a, b) => Ok(self.eval_term(a, env)? == self.eval_term(b, env)?),
            Formula::Exists(x, p) | Formula::Forall(x, p) => {
                let universal = matches!(f, Formula::Forall(..));
                let alg_sort = self.spec.signature().logic().var(*x).sort;
                let lsort = self.bridge.logic_sort(alg_sort)?;
                for e in self.domains.clone().elems(lsort) {
                    let mut env2 = env.clone();
                    env2.insert(*x, IndValue::Param(lsort, e));
                    let holds = self.eval_condition(p, &env2)?;
                    if universal && !holds {
                        return Ok(false);
                    }
                    if !universal && holds {
                        return Ok(true);
                    }
                }
                Ok(universal)
            }
            Formula::Pred(..) | Formula::Possibly(..) | Formula::Necessarily(..) => Err(
                RefineError::BadInterpretation("invalid construct in equation condition".into()),
            ),
        }
    }

    /// Enumerates the database states reachable by at most `max_depth`
    /// procedure calls from the interpreted `initiate`, using
    /// [`eclectic_kernel::env_threads`] worker threads.
    ///
    /// # Errors
    /// Propagates execution errors; hitting `max_states` reports truncation
    /// via the second component.
    pub fn reachable_states(
        &mut self,
        max_depth: usize,
        max_states: usize,
    ) -> Result<(Vec<DbState>, bool)> {
        self.reachable_states_threads(max_depth, max_states, eclectic_kernel::env_threads())
    }

    /// As [`InducedAlgebra::reachable_states`], with an explicit thread
    /// count. Procedure execution is pure (state in, state out), so the
    /// BFS parallelises level-synchronously: workers run the procedure
    /// calls of a level, the merge admits results in (parent, operation)
    /// order — the serial FIFO order — so the returned state order is
    /// identical for every thread count.
    ///
    /// # Errors
    /// See [`InducedAlgebra::reachable_states`].
    pub fn reachable_states_threads(
        &mut self,
        max_depth: usize,
        max_states: usize,
        threads: usize,
    ) -> Result<(Vec<DbState>, bool)> {
        self.reachable_states_budget(max_depth, max_states, &Budget::unlimited(), threads)
            .map(|(order, truncated, _)| (order, truncated))
    }

    /// As [`InducedAlgebra::reachable_states_threads`], governed by a
    /// [`Budget`]. The budget is polled once per BFS level with the number
    /// of distinct states admitted so far (a pure function of the levels
    /// completed, independent of thread count); exhaustion returns the
    /// states admitted so far with `truncated` set and an [`Exhaustion`]
    /// record instead of failing.
    ///
    /// # Errors
    /// Propagates execution errors; budget exhaustion is *not* an error.
    pub fn reachable_states_budget(
        &mut self,
        max_depth: usize,
        max_states: usize,
        budget: &Budget,
        threads: usize,
    ) -> Result<(Vec<DbState>, bool, Option<Exhaustion>)> {
        let threads = eclectic_kernel::effective_workers(threads);
        if let Some(reason) = budget.check(0) {
            return Ok((Vec::new(), true, Some(budget.exhaustion("reach", reason, 0))));
        }
        let alg = self.spec.signature().clone();
        let mut initial = Vec::new();
        for u in alg.updates() {
            if !alg.update_takes_state(u)? {
                // Apply with every parameter tuple.
                for params in self.param_tuples_for_update(u)? {
                    let t = Term::App(u, params);
                    match self.eval_term(&t, &BTreeMap::new())? {
                        IndValue::State(s) => initial.push(s),
                        _ => unreachable!("updates produce states"),
                    }
                }
            }
        }
        // Precompute the operation list once: every state-taking procedure
        // with every parameter-element tuple, in (update, tuple) order.
        let mut ops: Vec<(String, Vec<Elem>)> = Vec::new();
        for u in alg.updates() {
            if !alg.update_takes_state(u)? {
                continue;
            }
            let proc = self.k.proc_name(u).expect("coverage checked").to_string();
            for params in self.param_tuples_for_update(u)? {
                let elems: Vec<Elem> = params
                    .iter()
                    .map(|p| self.bridge.elem_of_term(p).map(|(_, e)| e))
                    .collect::<Result<_>>()?;
                ops.push((proc.clone(), elems));
            }
        }

        let mut seen: BTreeSet<DbState> = BTreeSet::new();
        let mut order = Vec::new();
        let mut truncated = false;
        let mut frontier: Vec<DbState> = Vec::new();
        for s in initial {
            if seen.insert(s.clone()) {
                order.push(s.clone());
                frontier.push(s);
            }
        }

        let schema = self.schema;
        let mut exhausted = None;
        let mut d = 0;
        while !frontier.is_empty() {
            if d >= max_depth {
                truncated = true;
                break;
            }
            if let Some(reason) = budget.check(seen.len()) {
                // Level boundary: `seen` holds exactly the states the
                // completed levels admitted, at every thread count.
                truncated = true;
                exhausted = Some(budget.exhaustion("reach", reason, d));
                break;
            }
            // All successors of the level, grouped per parent in op order.
            let per_parent: Vec<Vec<DbState>> = if threads <= 1 || frontier.len() == 1 {
                let mut out = Vec::with_capacity(frontier.len());
                for st in &frontier {
                    out.push(
                        ops.iter()
                            .map(|(proc, elems)| {
                                exec::call_deterministic(schema, st, proc, elems)
                                    .map_err(RefineError::from)
                            })
                            .collect::<Result<Vec<DbState>>>()?,
                    );
                }
                out
            } else {
                let workers = threads.min(frontier.len());
                let queue = IndexQueue::new(frontier.len(), workers);
                type ParentOut = (Vec<(usize, Vec<DbState>)>, Option<(usize, RefineError)>);
                let results: Vec<ParentOut> = run_workers(workers, |_| {
                    let ops = &ops;
                    let frontier = &frontier;
                    let queue = &queue;
                    move || {
                        let mut done = Vec::new();
                        while let Some(range) = queue.claim() {
                            for k in range {
                                let st = &frontier[k];
                                match ops
                                    .iter()
                                    .map(|(proc, elems)| {
                                        exec::call_deterministic(schema, st, proc, elems)
                                            .map_err(RefineError::from)
                                    })
                                    .collect::<Result<Vec<DbState>>>()
                                {
                                    Ok(succs) => done.push((k, succs)),
                                    Err(e) => return (done, Some((k, e))),
                                }
                            }
                        }
                        (done, None)
                    }
                });
                // Replay in parent order; the earliest error is exactly the
                // one the serial loop would have hit first.
                let first_err = results
                    .iter()
                    .filter_map(|(_, e)| e.as_ref().map(|(k, _)| *k))
                    .min();
                if let Some(k0) = first_err {
                    let (_, e) = results
                        .into_iter()
                        .filter_map(|(_, e)| e)
                        .find(|(k, _)| *k == k0)
                        .expect("error index recorded");
                    return Err(e);
                }
                let mut slots: Vec<Option<Vec<DbState>>> = vec![None; frontier.len()];
                for (done, _) in results {
                    for (k, succs) in done {
                        slots[k] = Some(succs);
                    }
                }
                slots
                    .into_iter()
                    .map(|s| s.expect("every parent expanded"))
                    .collect()
            };
            // Merge in (parent, operation) order — the serial FIFO order.
            let mut next_frontier = Vec::new();
            for succs in per_parent {
                for next in succs {
                    if seen.len() >= max_states && !seen.contains(&next) {
                        truncated = true;
                        continue;
                    }
                    if seen.insert(next.clone()) {
                        order.push(next.clone());
                        next_frontier.push(next);
                    }
                }
            }
            frontier = next_frontier;
            d += 1;
        }
        Ok((order, truncated, exhausted))
    }

    /// All parameter-name tuples for an update's parameter sorts.
    fn param_tuples_for_update(&self, u: FuncId) -> Result<Vec<Vec<Term>>> {
        let alg = self.spec.signature();
        let sorts = alg.update_params(u)?;
        let mut out = vec![Vec::new()];
        for s in sorts {
            let lsort = self.bridge.logic_sort(s)?;
            let mut next = Vec::new();
            for prefix in &out {
                for e in self.domains.elems(lsort) {
                    let mut t = prefix.clone();
                    t.push(self.bridge.term_of_elem(lsort, e)?);
                    next.push(t);
                }
            }
            out = next;
        }
        Ok(out)
    }
}

/// One failed equation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct EquationFailure {
    /// Equation name.
    pub equation: String,
    /// Rendering of the state at which it failed.
    pub state: String,
    /// Rendering of the parameter assignment.
    pub assignment: String,
}

/// Summary of checking every `A2` equation in the induced algebra.
#[derive(Debug, Clone, Default)]
pub struct EquationCheckReport {
    /// Ground instances evaluated.
    pub instances: usize,
    /// Database states visited.
    pub states: usize,
    /// Failures found (empty for a correct refinement).
    pub failures: Vec<EquationFailure>,
    /// Whether state enumeration was truncated.
    pub truncated: bool,
    /// Set when a [`Budget`] tripped during enumeration or instance
    /// evaluation; the counts above cover the completed prefix.
    pub exhausted: Option<Exhaustion>,
}

impl EquationCheckReport {
    /// Whether the refinement is correct (no equation failed).
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Checks that every equation of `A2` is valid in `N(U)`: for every
/// reachable database state, every assignment of the equation's parameter
/// variables, if the condition holds then both sides evaluate equal — the
/// paper's §5.4 induction on trace length, executed exhaustively up to
/// `max_depth`.
///
/// # Errors
/// Propagates evaluation errors.
pub fn check_equations(
    ind: &mut InducedAlgebra<'_>,
    max_depth: usize,
    max_states: usize,
    max_failures: usize,
) -> Result<EquationCheckReport> {
    check_equations_budget(ind, max_depth, max_states, max_failures, &Budget::unlimited())
}

/// As [`check_equations`], governed by a [`Budget`]: state enumeration is
/// budgeted (see [`InducedAlgebra::reachable_states_budget`]) and instance
/// evaluation polls the budget before each state with the number of
/// instances evaluated so far. Exhaustion returns the partial report with
/// `exhausted` set instead of failing.
///
/// # Errors
/// Propagates evaluation errors; budget exhaustion is *not* an error.
pub fn check_equations_budget(
    ind: &mut InducedAlgebra<'_>,
    max_depth: usize,
    max_states: usize,
    max_failures: usize,
    budget: &Budget,
) -> Result<EquationCheckReport> {
    let spec = ind.spec;
    let alg = spec.signature().clone();
    let (states, truncated, reach_exhausted) =
        ind.reachable_states_budget(max_depth, max_states, budget, eclectic_kernel::env_threads())?;
    let mut report = EquationCheckReport {
        states: states.len(),
        truncated,
        ..EquationCheckReport::default()
    };
    if reach_exhausted.is_some() {
        report.exhausted = reach_exhausted;
        return Ok(report);
    }

    for eq in spec.equations() {
        // Variables of the equation: parameter vars get all values, the
        // state variable ranges over reachable states.
        let mut param_vars: Vec<(VarId, SortId)> = Vec::new();
        let mut state_vars: Vec<VarId> = Vec::new();
        for v in eq.lhs.vars() {
            let sort = alg.logic().var(v).sort;
            if sort == alg.state_sort() {
                state_vars.push(v);
            } else {
                param_vars.push((v, ind.bridge.logic_sort(sort)?));
            }
        }
        if state_vars.len() > 1 {
            return Err(RefineError::BadInterpretation(
                "equations with several state variables are not supported".into(),
            ));
        }

        // Cartesian product of parameter assignments.
        let mut assignments: Vec<BTreeMap<VarId, IndValue>> = vec![BTreeMap::new()];
        for (v, lsort) in &param_vars {
            let mut next = Vec::new();
            for env in &assignments {
                for e in ind.domains.elems(*lsort) {
                    let mut env2 = env.clone();
                    env2.insert(*v, IndValue::Param(*lsort, e));
                    next.push(env2);
                }
            }
            assignments = next;
        }

        for st in &states {
            if let Some(reason) = budget.check(report.instances) {
                report.exhausted =
                    Some(budget.exhaustion("equations", reason, report.instances));
                return Ok(report);
            }
            for env in &assignments {
                let mut env = env.clone();
                if let Some(&sv) = state_vars.first() {
                    env.insert(sv, IndValue::State(st.clone()));
                }
                report.instances += 1;
                if !ind.eval_condition(&eq.condition, &env)? {
                    continue;
                }
                let lhs = ind.eval_term(&eq.lhs, &env)?;
                let rhs = ind.eval_term(&eq.rhs, &env)?;
                if lhs != rhs {
                    report.failures.push(EquationFailure {
                        equation: eq.name.clone(),
                        state: st.render().unwrap_or_else(|_| "<state>".into()),
                        assignment: render_env(&alg, ind, &env),
                    });
                    if report.failures.len() >= max_failures {
                        return Ok(report);
                    }
                }
            }
        }
    }
    Ok(report)
}

fn render_env(
    alg: &eclectic_algebraic::AlgSignature,
    ind: &InducedAlgebra<'_>,
    env: &BTreeMap<VarId, IndValue>,
) -> String {
    let mut parts = Vec::new();
    for (v, val) in env {
        let name = &alg.logic().var(*v).name;
        let rendered = match val {
            IndValue::Bool(b) => b.to_string(),
            IndValue::Param(sort, e) => ind
                .domains
                .elem_name(ind.schema.signature(), *sort, *e)
                .unwrap_or("?")
                .to_string(),
            IndValue::State(_) => "<state>".to_string(),
        };
        parts.push(format!("{name}={rendered}"));
    }
    parts.join(", ")
}
