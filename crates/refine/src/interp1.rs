//! Interpretation `I`: information level → functions level (paper §4.3).
//!
//! `I` maps each db-predicate symbol of `L1` to a term of `L2` of Boolean
//! sort — here the common one-to-one case the paper's example uses: each
//! db-predicate `p(x̄)` is interpreted as the query application
//! `q(x̄, σ) = True` for a like-sorted Boolean query `q`.

use std::collections::BTreeMap;

use eclectic_algebraic::{AlgSignature, OpKind};
use eclectic_logic::{FuncId, PredId, Signature};

use crate::error::{RefineError, Result};

/// The interpretation `I`: db-predicate ↔ Boolean query, one-to-one.
#[derive(Debug, Clone)]
pub struct InterpretationI {
    map: BTreeMap<PredId, FuncId>,
}

impl InterpretationI {
    /// Builds `I` from `(db-predicate name, query name)` pairs, validating
    /// sort-by-sort correspondence (by sort name) and that every
    /// db-predicate of the information level is covered.
    ///
    /// # Errors
    /// Returns [`RefineError::BadInterpretation`] on the first problem.
    pub fn new(
        info_sig: &Signature,
        alg: &AlgSignature,
        pairs: &[(&str, &str)],
    ) -> Result<Self> {
        let bad = |m: String| RefineError::BadInterpretation(m);
        let mut map = BTreeMap::new();
        for (pname, qname) in pairs {
            let p = info_sig
                .pred_id(pname)
                .map_err(|e| bad(format!("{e}")))?;
            if !info_sig.pred(p).db_predicate {
                return Err(bad(format!("`{pname}` is not a db-predicate")));
            }
            let q = alg
                .logic()
                .func_id(qname)
                .map_err(|e| bad(format!("{e}")))?;
            if alg.kind(q) != OpKind::Query {
                return Err(bad(format!("`{qname}` is not a query function")));
            }
            if alg.logic().func(q).range != alg.bool_sort() {
                return Err(bad(format!("query `{qname}` is not Boolean")));
            }
            let qparams = alg.query_params(q).map_err(RefineError::Alg)?;
            let pdomain = &info_sig.pred(p).domain;
            if qparams.len() != pdomain.len() {
                return Err(bad(format!(
                    "`{pname}` has arity {} but `{qname}` takes {} parameter(s)",
                    pdomain.len(),
                    qparams.len()
                )));
            }
            for (&ps, &qs) in pdomain.iter().zip(&qparams) {
                if info_sig.sort_name(ps) != alg.logic().sort_name(qs) {
                    return Err(bad(format!(
                        "sort mismatch between `{pname}` and `{qname}`: `{}` vs `{}`",
                        info_sig.sort_name(ps),
                        alg.logic().sort_name(qs)
                    )));
                }
            }
            if map.insert(p, q).is_some() {
                return Err(bad(format!("`{pname}` interpreted twice")));
            }
        }
        for p in info_sig.db_pred_ids() {
            if !map.contains_key(&p) {
                return Err(bad(format!(
                    "db-predicate `{}` has no interpretation",
                    info_sig.pred(p).name
                )));
            }
        }
        Ok(InterpretationI { map })
    }

    /// The query interpreting a db-predicate.
    ///
    /// # Errors
    /// Returns [`RefineError::BadInterpretation`] for unmapped predicates.
    pub fn query_for(&self, p: PredId) -> Result<FuncId> {
        self.map.get(&p).copied().ok_or_else(|| {
            RefineError::BadInterpretation("db-predicate has no interpretation".into())
        })
    }

    /// Iterates over the `(db-predicate, query)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (PredId, FuncId)> + '_ {
        self.map.iter().map(|(p, q)| (*p, *q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Signature, AlgSignature) {
        let mut info = Signature::new();
        let student = info.add_sort("student").unwrap();
        let course = info.add_sort("course").unwrap();
        info.add_db_predicate("offered", &[course]).unwrap();
        info.add_db_predicate("takes", &[student, course]).unwrap();

        let mut alg = AlgSignature::new().unwrap();
        let astudent = alg.add_param_sort("student", &["ana"]).unwrap();
        let acourse = alg.add_param_sort("course", &["db"]).unwrap();
        alg.add_query("q_offered", &[acourse], None).unwrap();
        alg.add_query("q_takes", &[astudent, acourse], None).unwrap();
        alg.add_update("initiate", &[], false).unwrap();
        (info, alg)
    }

    #[test]
    fn valid_interpretation() {
        let (info, alg) = setup();
        let i = InterpretationI::new(
            &info,
            &alg,
            &[("offered", "q_offered"), ("takes", "q_takes")],
        )
        .unwrap();
        let offered = info.pred_id("offered").unwrap();
        let q = alg.logic().func_id("q_offered").unwrap();
        assert_eq!(i.query_for(offered).unwrap(), q);
        assert_eq!(i.pairs().count(), 2);
    }

    #[test]
    fn missing_coverage_rejected() {
        let (info, alg) = setup();
        assert!(matches!(
            InterpretationI::new(&info, &alg, &[("offered", "q_offered")]),
            Err(RefineError::BadInterpretation(_))
        ));
    }

    #[test]
    fn arity_and_sort_checked() {
        let (info, alg) = setup();
        assert!(InterpretationI::new(
            &info,
            &alg,
            &[("offered", "q_takes"), ("takes", "q_takes")]
        )
        .is_err());
        // Not a query.
        assert!(InterpretationI::new(
            &info,
            &alg,
            &[("offered", "initiate"), ("takes", "q_takes")]
        )
        .is_err());
        // Not a db-predicate name.
        assert!(InterpretationI::new(&info, &alg, &[("nope", "q_offered")]).is_err());
    }
}
