//! # eclectic-refine
//!
//! The refinement machinery binding the three specification levels of
//! Casanova, Veloso & Furtado (PODS 1984):
//!
//! - [`InterpretationI`] (§4.3): db-predicates of the information level →
//!   Boolean queries of the functions level; [`reach`] builds the induced
//!   Kripke universe `M(T2)` whose states are reachable ground state terms
//!   modulo observational equality;
//! - [`obligations`] (§4.4): the proof obligations (a) sufficient
//!   completeness, (b) every reachable state is valid, (d) transition
//!   consistency; [`witness`] covers (c) every valid state is reachable;
//! - [`InterpretationK`] and [`InducedAlgebra`] (§5.3–5.4): queries →
//!   level-3 wffs, updates → procedures; the mapping `N` interprets the
//!   functions level inside a representation-level universe, and
//!   [`check_equations`] verifies every `A2` equation there by bounded
//!   induction on trace length;
//! - [`equivalence`] (§6): the same trace replayed at levels 2 and 3 gives
//!   the same answer to every query;
//! - [`FullReport`]: everything aggregated with a human-readable rendering.

#![warn(missing_docs)]

mod bridge;
pub mod equivalence;
mod error;
mod interp1;
mod interp2;
pub mod obligations;
pub mod random;
pub mod reach;
mod report;
pub mod witness;

pub use bridge::ParamBridge;
pub use equivalence::{
    cross_check, cross_check_budget, cross_check_threads, random_ops, CrossCheckStats, Mismatch,
    Op,
};
pub use error::{RefineError, Result};
pub use interp1::InterpretationI;
pub use interp2::{
    check_equations, check_equations_budget, EquationCheckReport, EquationFailure, IndValue,
    InducedAlgebra, InterpretationK, QueryImpl,
};
pub use obligations::{
    check_dynamic, check_dynamic_budget, check_dynamic_threads, check_refinement_1_2,
    check_refinement_1_2_budget, obligation_axioms, obligation_completeness,
    obligation_exploration, obligation_termination, plan_dynamic, DynamicFailure, DynamicPlan,
    DynamicPrep, DynamicReport, DynamicUnitOutcome, Refine12Config, Refine12Report,
    StateViolation,
};
pub use reach::{
    explore_algebraic, explore_algebraic_budget, explore_algebraic_threads, structure_of,
    structure_of_id, AlgExploreLimits, AlgebraicExploration,
};
pub use report::FullReport;
pub use witness::{check_valid_reachable, ValidReachableReport};
