//! The §4.4 proof obligations, mechanised as bounded verification:
//!
//! (a) sufficient completeness (termination + exhaustive evaluation);
//! (b) every reachable state is valid (static consistency);
//! (c) every valid state is reachable (see [`crate::witness`]);
//! (d) transition consistency.

use std::sync::Arc;

use eclectic_algebraic::{completeness, termination, AlgSpec};
use eclectic_kernel::{run_workers_prio, Budget, BudgetExceeded, Exhaustion, IndexQueue, Priority};
use eclectic_logic::{Domains, Elem, Formula, Signature, Theory, Valuation};
use eclectic_rpr::pdl::Pdl;
use eclectic_rpr::{denote, pdl, DbState, DenoteCache, FiniteUniverse, RprError, Schema, Stmt};
use eclectic_temporal::{constraints, satisfaction, AccessibilityPolicy, StateIdx};

use crate::error::Result;
use crate::interp1::InterpretationI;
use crate::reach::{explore_algebraic_budget, AlgExploreLimits, AlgebraicExploration};

/// One axiom violation, with a replayable witness trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StateViolation {
    /// Name of the violated axiom.
    pub axiom: String,
    /// Universe state index.
    pub state: StateIdx,
    /// Rendering of the witness trace term reaching the state.
    pub witness: String,
}

/// Configuration for the 1→2 refinement check.
#[derive(Debug, Clone, Copy, Default)]
pub struct Refine12Config {
    /// Exploration bounds.
    pub limits: AlgExploreLimits,
    /// How accessibility is interpreted for the modal axioms.
    pub policy: AccessibilityPolicy,
    /// Depth for the exhaustive sufficient-completeness pass.
    pub completeness_depth: usize,
    /// Wall-clock deadline for the whole check, in milliseconds
    /// (`None` = no deadline).
    pub deadline_ms: Option<u64>,
    /// Cap on hash-consed term nodes (`None` = no cap).
    pub max_nodes: Option<usize>,
}

impl Refine12Config {
    /// Reasonable defaults: exploration depth 6, single-step accessibility,
    /// completeness depth 3.
    #[must_use]
    pub fn quick() -> Self {
        Refine12Config {
            limits: AlgExploreLimits::default(),
            policy: AccessibilityPolicy::AsIs,
            completeness_depth: 3,
            deadline_ms: None,
            max_nodes: None,
        }
    }

    /// A [`Budget`] over the configured limits, started now. Unlimited when
    /// neither `deadline_ms` nor `max_nodes` is set.
    #[must_use]
    pub fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline_ms(ms);
        }
        if let Some(n) = self.max_nodes {
            b = b.with_max_nodes(n);
        }
        b
    }

    /// Thorough bounds: exploration depth 10, otherwise as [`quick`].
    ///
    /// [`quick`]: Refine12Config::quick
    #[must_use]
    pub fn thorough() -> Self {
        Refine12Config {
            limits: AlgExploreLimits {
                max_depth: 10,
                ..AlgExploreLimits::default()
            },
            ..Refine12Config::quick()
        }
    }
}

/// The outcome of checking that `T2` correctly refines `T1`.
#[derive(Debug, Clone)]
pub struct Refine12Report {
    /// (a) circularity analysis of the Q-equations.
    pub termination: termination::TerminationReport,
    /// (a) coverage + exhaustive evaluation.
    pub completeness: completeness::CompletenessReport,
    /// (b) static-axiom violations at reachable states.
    pub static_violations: Vec<StateViolation>,
    /// (d) transition-axiom violations at reachable states.
    pub transition_violations: Vec<StateViolation>,
    /// The exploration that produced the universe `M(T2)`.
    pub exploration: AlgebraicExploration,
}

impl Refine12Report {
    /// Whether every checked obligation holds.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.termination.is_terminating()
            && self.completeness.is_sufficiently_complete()
            && self.static_violations.is_empty()
            && self.transition_violations.is_empty()
    }

    /// The first budget exhaustion hit while producing this report, if any
    /// (the completeness pass runs before the exploration).
    #[must_use]
    pub fn exhausted(&self) -> Option<&Exhaustion> {
        self.completeness
            .exhausted
            .as_ref()
            .or(self.exploration.exhausted.as_ref())
    }
}

/// Checks obligations (a), (b) and (d) for `T2` against `T1` under `I`.
///
/// # Errors
/// Propagates exploration and evaluation errors.
pub fn check_refinement_1_2(
    theory: &Theory,
    spec: &AlgSpec,
    interp: &InterpretationI,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    config: Refine12Config,
) -> Result<Refine12Report> {
    check_refinement_1_2_budget(
        theory,
        spec,
        interp,
        info_sig,
        domains,
        config,
        &config.budget(),
    )
}

/// As [`check_refinement_1_2`], governed by an explicit [`Budget`] (shared
/// with other stages by the caller; `config.deadline_ms`/`config.max_nodes`
/// are ignored in favour of `budget`). When the completeness pass or the
/// exploration exhausts the budget, the remaining obligations are skipped
/// and the partial report carries the exhaustion — see
/// [`Refine12Report::exhausted`].
///
/// # Errors
/// Propagates exploration and evaluation errors; budget exhaustion is *not*
/// an error.
pub fn check_refinement_1_2_budget(
    theory: &Theory,
    spec: &AlgSpec,
    interp: &InterpretationI,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    config: Refine12Config,
    budget: &Budget,
) -> Result<Refine12Report> {
    let threads = eclectic_kernel::env_threads();
    let termination = obligation_termination(spec)?;
    let completeness =
        obligation_completeness(spec, config.completeness_depth, budget, threads)?;
    let exploration =
        obligation_exploration(spec, interp, info_sig, domains, config.limits, budget, threads)?;
    let (static_violations, transition_violations) =
        obligation_axioms(theory, spec, config.policy, &exploration)?;
    Ok(Refine12Report {
        termination,
        completeness,
        static_violations,
        transition_violations,
        exploration,
    })
}

/// Obligation (a), circularity half: the Q-equation termination analysis.
/// A per-obligation entry point, so an obligation-DAG scheduler can run it
/// as its own pool task.
///
/// # Errors
/// Propagates analysis errors.
pub fn obligation_termination(spec: &AlgSpec) -> Result<termination::TerminationReport> {
    Ok(termination::check_termination(spec)?)
}

/// Obligation (a), coverage half: the exhaustive sufficient-completeness
/// sweep at `depth`, reporting up to 20 stuck terms. A per-obligation
/// entry point for obligation-DAG schedulers; independent of the other
/// refine12 obligations.
///
/// # Errors
/// Propagates evaluation errors; budget exhaustion is *not* an error.
pub fn obligation_completeness(
    spec: &AlgSpec,
    depth: usize,
    budget: &Budget,
    threads: usize,
) -> Result<completeness::CompletenessReport> {
    Ok(completeness::exhaustive_budget(spec, depth, 20, budget, threads)?)
}

/// The universe construction `M(T2)`: bounded exploration of the
/// algebraic transition system. A per-obligation entry point; its
/// completion is what unblocks the axiom sweep (obligations (b)/(d)) and
/// the witness enumeration (obligation (c)) in the obligation DAG.
///
/// # Errors
/// Propagates exploration errors; budget exhaustion is *not* an error.
pub fn obligation_exploration(
    spec: &AlgSpec,
    interp: &InterpretationI,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    limits: AlgExploreLimits,
    budget: &Budget,
    threads: usize,
) -> Result<AlgebraicExploration> {
    explore_algebraic_budget(spec, interp, info_sig, domains, limits, budget, threads)
}

/// Obligations (b) and (d): the per-axiom per-state satisfaction sweep
/// over an explored universe, split into `(static, transition)`
/// violations. When the exploration was truncated by a budget the sweep
/// is skipped (a prefix universe would report spurious partial-model
/// violations) and both lists come back empty — the caller surfaces the
/// exploration's exhaustion instead.
///
/// # Errors
/// Propagates evaluation errors.
pub fn obligation_axioms(
    theory: &Theory,
    spec: &AlgSpec,
    policy: AccessibilityPolicy,
    exploration: &AlgebraicExploration,
) -> Result<(Vec<StateViolation>, Vec<StateViolation>)> {
    if exploration.exhausted.is_some() {
        return Ok((Vec::new(), Vec::new()));
    }

    let universe;
    let u = match policy {
        AccessibilityPolicy::AsIs => &exploration.universe,
        AccessibilityPolicy::TransitiveClosure => {
            let mut c = exploration.universe.clone();
            c.close_reflexive_transitive();
            universe = c;
            &universe
        }
    };

    let mut static_violations = Vec::new();
    let mut transition_violations = Vec::new();
    for ax in &theory.axioms {
        for s in u.state_indices() {
            if !satisfaction::models_at(u, s, &ax.formula)? {
                let v = StateViolation {
                    axiom: ax.name.clone(),
                    state: s,
                    witness: format!(
                        "{}",
                        eclectic_logic::term_display(
                            spec.signature().logic(),
                            &exploration.witnesses[s.index()]
                        )
                    ),
                };
                match ax.kind() {
                    eclectic_logic::ConstraintKind::Static => static_violations.push(v),
                    eclectic_logic::ConstraintKind::Transition => transition_violations.push(v),
                }
            }
        }
    }
    Ok((static_violations, transition_violations))
}

/// One failed dynamic-logic contract: a procedure application whose
/// denotation is not a total function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicFailure {
    /// Procedure name.
    pub proc: String,
    /// The concrete parameter values.
    pub args: Vec<Elem>,
    /// What went wrong (`not total` / `not functional`).
    pub reason: String,
}

/// Outcome of the §5.1.2/§5.3 dynamic-logic obligations: every
/// deterministic while-free procedure body denotes a *total function* on
/// the universe — totality is the PDL validity of `⟨body⟩True`, checked
/// through the batched model checker; functionality is read off the cached
/// denotation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynamicReport {
    /// Contract violations found.
    pub failures: Vec<DynamicFailure>,
    /// (proc, args) applications checked.
    pub checked: usize,
    /// Size of the enumerated universe (0 when skipped).
    pub universe_states: usize,
    /// Procedures outside the contract's fragment (nondeterministic or
    /// containing `while`), listed by name and left unchecked.
    pub unchecked_procs: Vec<String>,
    /// Set when the universe exceeded the cap and the check was skipped.
    pub skipped: Option<String>,
    /// Denotation-cache counters for the run (one shared cache; every
    /// functionality read reuses the totality phase's denotation).
    pub cache_stats: eclectic_rpr::CacheStats,
    /// Set when a [`Budget`] tripped: `checked` then counts the
    /// applications verified before stopping.
    pub exhausted: Option<Exhaustion>,
}

impl DynamicReport {
    /// Whether every checked contract holds.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Checks the dynamic-logic obligations over the representation schema,
/// using `ECLECTIC_THREADS` workers (see [`eclectic_kernel::env_threads`])
/// for the denotation phase.
///
/// # Errors
/// Propagates enumeration/evaluation errors (a universe over `cap` is a
/// graceful skip, not an error).
pub fn check_dynamic(schema: &Schema, template: &DbState, cap: usize) -> Result<DynamicReport> {
    check_dynamic_threads(schema, template, cap, eclectic_kernel::env_threads())
}

/// As [`check_dynamic`] with an explicit worker count.
///
/// # Errors
/// See [`check_dynamic`].
pub fn check_dynamic_threads(
    schema: &Schema,
    template: &DbState,
    cap: usize,
    threads: usize,
) -> Result<DynamicReport> {
    check_dynamic_budget(schema, template, cap, &Budget::unlimited(), threads)
}

/// As [`check_dynamic_threads`], governed by a [`Budget`]. Workers poll the
/// budget before each serial-order application slot with the slot index, so
/// a node cap stops after the same number of applications at every worker
/// count; deadline and cancellation stops report the applications whose
/// serial-order prefix completed. Exhaustion returns the partial report
/// with `exhausted` set instead of failing.
///
/// # Errors
/// See [`check_dynamic`]; budget exhaustion is *not* an error.
pub fn check_dynamic_budget(
    schema: &Schema,
    template: &DbState,
    cap: usize,
    budget: &Budget,
    threads: usize,
) -> Result<DynamicReport> {
    let plan = match plan_dynamic(schema, template, cap, budget)? {
        DynamicPrep::Done(report) => return Ok(report),
        DynamicPrep::Plan(plan) => plan,
    };
    let threads = eclectic_kernel::effective_workers(threads);
    if threads <= 1 || plan.apps.len() < 2 {
        return plan.run_serial(budget, threads);
    }
    plan.run_striding(budget, threads)
}

/// The per-application results of one dynamic obligation unit: slot-keyed
/// failure lists, the unit's cache counters, and its earliest budget stop
/// (serial slot index + reason), if any.
pub type DynamicUnitOutcome = (
    Vec<(usize, Vec<DynamicFailure>)>,
    eclectic_rpr::CacheStats,
    Option<(usize, BudgetExceeded)>,
);

/// What [`plan_dynamic`] produced: either a finished report (empty budget,
/// oversized universe, or no checkable applications) or a plan whose
/// per-procedure obligations can run as independent pool tasks.
pub enum DynamicPrep<'s> {
    /// The check completed (or was skipped) during planning.
    Done(DynamicReport),
    /// Per-procedure obligations remain; see [`DynamicPlan`]. Boxed: the
    /// plan (universe + flattened applications) dwarfs the `Done` report.
    Plan(Box<DynamicPlan<'s>>),
}

/// The flattened dynamic-obligation workload: the enumerated universe plus
/// every (procedure, argument-tuple) application in serial order, grouped
/// into per-procedure slot ranges so an obligation-DAG scheduler can run
/// [`DynamicPlan::run_proc`] units in parallel and [`DynamicPlan::merge`]
/// their outcomes into the same report the monolithic
/// [`check_dynamic_budget`] produces.
pub struct DynamicPlan<'s> {
    u: FiniteUniverse,
    apps: Vec<(&'s eclectic_rpr::ProcDecl, Vec<Elem>, Valuation)>,
    proc_ranges: Vec<std::ops::Range<usize>>,
    base: DynamicReport,
    /// Denotation-level governed ops poll only the timing axes; the node
    /// cap stays at the serial-order application slots, so a capped
    /// partial stops after the same slot at every worker count.
    timing: Budget,
}

/// Enumerates the universe and flattens the checkable applications,
/// producing either a finished report or a [`DynamicPlan`].
///
/// # Errors
/// Propagates enumeration errors (a universe over `cap` is a graceful
/// skip, not an error).
pub fn plan_dynamic<'s>(
    schema: &'s Schema,
    template: &DbState,
    cap: usize,
    budget: &Budget,
) -> Result<DynamicPrep<'s>> {
    if let Some(reason) = budget.check(0) {
        return Ok(DynamicPrep::Done(DynamicReport {
            exhausted: Some(budget.exhaustion("dynamic", reason, 0)),
            ..DynamicReport::default()
        }));
    }
    let u = match FiniteUniverse::enumerate(template, schema.relations(), &[], cap) {
        Ok(u) => u,
        Err(RprError::UniverseTooLarge { required, cap }) => {
            return Ok(DynamicPrep::Done(DynamicReport {
                skipped: Some(format!(
                    "universe of {required} states exceeds the cap of {cap}"
                )),
                ..DynamicReport::default()
            }));
        }
        Err(e) => return Err(e.into()),
    };

    let sig = u.signature().clone();
    let domains = u.domains().clone();
    let mut base = DynamicReport {
        universe_states: u.len(),
        ..DynamicReport::default()
    };

    // Flatten the (procedure, argument-tuple) applications in serial order,
    // remembering each procedure's contiguous slot range.
    let mut apps: Vec<(&eclectic_rpr::ProcDecl, Vec<Elem>, Valuation)> = Vec::new();
    let mut proc_ranges = Vec::new();
    for proc in schema.procs() {
        if !proc.body.is_deterministic() || !while_free(&proc.body) {
            base.unchecked_procs.push(proc.name.clone());
            continue;
        }
        let start = apps.len();
        for args in arg_tuples(&sig, &domains, &proc.params) {
            let mut env = Valuation::new();
            for (&param, &value) in proc.params.iter().zip(&args) {
                env.set(param, value);
            }
            apps.push((proc, args, env));
        }
        if apps.len() > start {
            proc_ranges.push(start..apps.len());
        }
    }
    base.checked = apps.len();

    let timing = budget.without_node_cap();
    Ok(DynamicPrep::Plan(Box::new(DynamicPlan {
        u,
        apps,
        proc_ranges,
        base,
        timing,
    })))
}

impl<'s> DynamicPlan<'s> {
    /// Number of per-procedure obligation units.
    #[must_use]
    pub fn procs(&self) -> usize {
        self.proc_ranges.len()
    }

    /// Total number of application slots.
    #[must_use]
    pub fn apps_len(&self) -> usize {
        self.apps.len()
    }

    /// Runs the dynamic obligations of procedure unit `i` (one contiguous
    /// slot range, processed in increasing serial order with a private
    /// denotation cache), polling `budget` at each global slot index. The
    /// prefix invariant of the slot-replay merge holds because a unit only
    /// skips slots at or after its own stop.
    ///
    /// # Errors
    /// Propagates non-budget evaluation errors.
    pub fn run_proc(&self, i: usize, budget: &Budget, threads: usize) -> Result<DynamicUnitOutcome> {
        let mut cache = DenoteCache::new();
        let mut out = Vec::new();
        let mut stop = None;
        for k in self.proc_ranges[i].clone() {
            let (proc, args, env) = &self.apps[k];
            if let Some(reason) = budget.check(k) {
                stop = Some((k, reason));
                break;
            }
            match check_application(&self.u, proc, args, env, &mut cache, &self.timing, threads) {
                Ok(failures) => out.push((k, failures)),
                Err(e) => match crate::reach::budget_stop(&e) {
                    Some(reason) => {
                        stop = Some((k, reason));
                        break;
                    }
                    None => return Err(e),
                },
            }
        }
        Ok((out, cache.stats(), stop))
    }

    /// Replays per-unit outcomes in serial slot order into the final
    /// report: earliest stop wins, every slot below it has a verdict, and
    /// the failure list is bit-identical however the units were scheduled.
    /// Cache counters are summed across units and are scheduling-dependent.
    #[must_use]
    pub fn merge(self, outcomes: Vec<DynamicUnitOutcome>, budget: &Budget) -> DynamicReport {
        let mut report = self.base;
        let mut slots: Vec<Option<Vec<DynamicFailure>>> = vec![None; self.apps.len()];
        let mut stop: Option<(usize, BudgetExceeded)> = None;
        for (unit, stats, s) in outcomes {
            report.cache_stats.computed += stats.computed;
            report.cache_stats.hits += stats.hits;
            for (k, failures) in unit {
                slots[k] = Some(failures);
            }
            if s.is_some_and(|(k, _)| stop.is_none_or(|(k0, _)| k < k0)) {
                stop = s;
            }
        }
        // Every slot before the earliest stop has an outcome: a unit only
        // skips slots at or after its own stop, and all stops are >= the
        // earliest one.
        let covered = stop.map_or(self.apps.len(), |(k, _)| k);
        for slot in slots.into_iter().take(covered) {
            report.failures.extend(slot.expect("every application checked"));
        }
        if let Some((k, reason)) = stop {
            report.checked = k;
            report.exhausted = Some(budget.exhaustion("dynamic", reason, k));
        }
        report
    }

    /// The pre-plan serial path: one shared denotation cache over all
    /// applications, row-level parallelism inside the relational operators
    /// when `threads > 1`.
    fn run_serial(self, budget: &Budget, threads: usize) -> Result<DynamicReport> {
        let mut report = self.base;
        let mut cache = DenoteCache::new();
        for (k, (proc, args, env)) in self.apps.iter().enumerate() {
            if let Some(reason) = budget.check(k) {
                report.checked = k;
                report.exhausted = Some(budget.exhaustion("dynamic", reason, k));
                break;
            }
            // With a single application slot the row-level parallelism
            // inside the relational operators still applies.
            match check_application(&self.u, proc, args, env, &mut cache, &self.timing, threads) {
                Ok(failures) => report.failures.extend(failures),
                Err(e) => match crate::reach::budget_stop(&e) {
                    Some(reason) => {
                        report.checked = k;
                        report.exhausted = Some(budget.exhaustion("dynamic", reason, k));
                        break;
                    }
                    None => return Err(e),
                },
            }
        }
        report.cache_stats = cache.stats();
        Ok(report)
    }

    /// The chain-DAG parallel path: workers stride over all applications
    /// through an [`IndexQueue`], each with its own denotation cache (the
    /// environment differs between applications, so cross-application
    /// sharing is marginal; within one application the totality and
    /// functionality reads share the body's denotation).
    fn run_striding(self, budget: &Budget, threads: usize) -> Result<DynamicReport> {
        let workers = threads.min(self.apps.len());
        let queue = IndexQueue::new(self.apps.len(), workers);
        let results: Vec<Result<DynamicUnitOutcome>> =
            run_workers_prio(workers, Priority::Bulk, |_| {
                let apps = &self.apps;
                let u = &self.u;
                let timing = &self.timing;
                let queue = &queue;
                move || {
                    let mut cache = DenoteCache::new();
                    let mut out = Vec::new();
                    let mut stop = None;
                    'claims: while let Some(range) = queue.claim() {
                        for k in range {
                            let (proc, args, env) = &apps[k];
                            if let Some(reason) = budget.check(k) {
                                stop = Some((k, reason));
                                break 'claims;
                            }
                            match check_application(u, proc, args, env, &mut cache, timing, 1) {
                                Ok(failures) => out.push((k, failures)),
                                Err(e) => match crate::reach::budget_stop(&e) {
                                    Some(reason) => {
                                        stop = Some((k, reason));
                                        break 'claims;
                                    }
                                    None => return Err(e),
                                },
                            }
                        }
                    }
                    Ok((out, cache.stats(), stop))
                }
            });
        let outcomes = results.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(self.merge(outcomes, budget))
    }
}

/// Checks one procedure application's contracts: totality is the PDL
/// validity of `⟨body⟩True` through the batched model checker;
/// functionality is read off the (now cached) denotation.
fn check_application(
    u: &FiniteUniverse,
    proc: &eclectic_rpr::ProcDecl,
    args: &[Elem],
    env: &Valuation,
    cache: &mut DenoteCache,
    timing: &Budget,
    threads: usize,
) -> Result<Vec<DynamicFailure>> {
    let mut failures = Vec::new();
    let total = Pdl::after_some(proc.body.clone(), Pdl::Atom(Formula::True));
    let batch =
        pdl::check_batch_budget_with(std::slice::from_ref(&total), u, env, cache, timing, threads)?;
    if let Some(ex) = batch.exhausted {
        // Re-raise as an error so the striding loops unwind; the wrappers
        // convert it back into a graceful partial report.
        return Err(crate::reach::budget_err(ex.reason));
    }
    if !batch.valid[0] {
        failures.push(DynamicFailure {
            proc: proc.name.clone(),
            args: args.to_vec(),
            reason: "not total: some state has no successor".into(),
        });
    }
    // The totality phase cached m(body); this lookup is free.
    let m = denote::meaning_cached(u, &proc.body, env, cache)?;
    if !m.is_functional() {
        failures.push(DynamicFailure {
            proc: proc.name.clone(),
            args: args.to_vec(),
            reason: "not functional: some state has two successors".into(),
        });
    }
    Ok(failures)
}

/// Whether a statement contains no `while` loop (the fragment whose
/// deterministic members denote total functions).
fn while_free(s: &Stmt) -> bool {
    match s {
        Stmt::While(..) => false,
        Stmt::Seq(p, q) | Stmt::Union(p, q) => while_free(p) && while_free(q),
        Stmt::IfThenElse(_, p, q) => while_free(p) && while_free(q),
        Stmt::IfThen(_, p) | Stmt::Star(p) => while_free(p),
        Stmt::Assign(..)
        | Stmt::RelAssign(..)
        | Stmt::Test(_)
        | Stmt::Insert(..)
        | Stmt::Delete(..)
        | Stmt::Skip => true,
    }
}

/// All argument tuples over the parameter sorts (cartesian product).
fn arg_tuples(
    sig: &Signature,
    domains: &Domains,
    params: &[eclectic_logic::VarId],
) -> Vec<Vec<Elem>> {
    let mut out = vec![Vec::new()];
    for &p in params {
        let elems: Vec<Elem> = domains.elems(sig.var(p).sort).collect();
        let mut next = Vec::with_capacity(out.len() * elems.len().max(1));
        for prefix in &out {
            for &e in &elems {
                let mut t = prefix.clone();
                t.push(e);
                next.push(t);
            }
        }
        out = next;
    }
    out
}

/// The consistent states of the explored universe (models of the static
/// axioms) — used by obligation (c).
///
/// # Errors
/// Propagates evaluation errors.
pub fn consistent_states(
    theory: &Theory,
    exploration: &AlgebraicExploration,
) -> Result<Vec<StateIdx>> {
    Ok(constraints::consistent_states(theory, &exploration.universe)?)
}
