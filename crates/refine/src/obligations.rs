//! The §4.4 proof obligations, mechanised as bounded verification:
//!
//! (a) sufficient completeness (termination + exhaustive evaluation);
//! (b) every reachable state is valid (static consistency);
//! (c) every valid state is reachable (see [`crate::witness`]);
//! (d) transition consistency.

use std::sync::Arc;

use eclectic_algebraic::{completeness, termination, AlgSpec};
use eclectic_logic::{Domains, Signature, Theory};
use eclectic_temporal::{constraints, satisfaction, AccessibilityPolicy, StateIdx};

use crate::error::Result;
use crate::interp1::InterpretationI;
use crate::reach::{explore_algebraic, AlgExploreLimits, AlgebraicExploration};

/// One axiom violation, with a replayable witness trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StateViolation {
    /// Name of the violated axiom.
    pub axiom: String,
    /// Universe state index.
    pub state: StateIdx,
    /// Rendering of the witness trace term reaching the state.
    pub witness: String,
}

/// Configuration for the 1→2 refinement check.
#[derive(Debug, Clone, Copy, Default)]
pub struct Refine12Config {
    /// Exploration bounds.
    pub limits: AlgExploreLimits,
    /// How accessibility is interpreted for the modal axioms.
    pub policy: AccessibilityPolicy,
    /// Depth for the exhaustive sufficient-completeness pass.
    pub completeness_depth: usize,
}

impl Refine12Config {
    /// Reasonable defaults: exploration depth 6, single-step accessibility,
    /// completeness depth 3.
    #[must_use]
    pub fn quick() -> Self {
        Refine12Config {
            limits: AlgExploreLimits::default(),
            policy: AccessibilityPolicy::AsIs,
            completeness_depth: 3,
        }
    }
}

/// The outcome of checking that `T2` correctly refines `T1`.
#[derive(Debug, Clone)]
pub struct Refine12Report {
    /// (a) circularity analysis of the Q-equations.
    pub termination: termination::TerminationReport,
    /// (a) coverage + exhaustive evaluation.
    pub completeness: completeness::CompletenessReport,
    /// (b) static-axiom violations at reachable states.
    pub static_violations: Vec<StateViolation>,
    /// (d) transition-axiom violations at reachable states.
    pub transition_violations: Vec<StateViolation>,
    /// The exploration that produced the universe `M(T2)`.
    pub exploration: AlgebraicExploration,
}

impl Refine12Report {
    /// Whether every checked obligation holds.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.termination.is_terminating()
            && self.completeness.is_sufficiently_complete()
            && self.static_violations.is_empty()
            && self.transition_violations.is_empty()
    }
}

/// Checks obligations (a), (b) and (d) for `T2` against `T1` under `I`.
///
/// # Errors
/// Propagates exploration and evaluation errors.
pub fn check_refinement_1_2(
    theory: &Theory,
    spec: &AlgSpec,
    interp: &InterpretationI,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    config: Refine12Config,
) -> Result<Refine12Report> {
    let termination = termination::check_termination(spec)?;
    let completeness = completeness::exhaustive(spec, config.completeness_depth, 20)?;

    let exploration = explore_algebraic(spec, interp, info_sig, domains, config.limits)?;

    let universe;
    let u = match config.policy {
        AccessibilityPolicy::AsIs => &exploration.universe,
        AccessibilityPolicy::TransitiveClosure => {
            let mut c = exploration.universe.clone();
            c.close_reflexive_transitive();
            universe = c;
            &universe
        }
    };

    let mut static_violations = Vec::new();
    let mut transition_violations = Vec::new();
    for ax in &theory.axioms {
        for s in u.state_indices() {
            if !satisfaction::models_at(u, s, &ax.formula)? {
                let v = StateViolation {
                    axiom: ax.name.clone(),
                    state: s,
                    witness: format!(
                        "{}",
                        eclectic_logic::term_display(
                            spec.signature().logic(),
                            &exploration.witnesses[s.index()]
                        )
                    ),
                };
                match ax.kind() {
                    eclectic_logic::ConstraintKind::Static => static_violations.push(v),
                    eclectic_logic::ConstraintKind::Transition => transition_violations.push(v),
                }
            }
        }
    }

    Ok(Refine12Report {
        termination,
        completeness,
        static_violations,
        transition_violations,
        exploration,
    })
}

/// The consistent states of the explored universe (models of the static
/// axioms) — used by obligation (c).
///
/// # Errors
/// Propagates evaluation errors.
pub fn consistent_states(
    theory: &Theory,
    exploration: &AlgebraicExploration,
) -> Result<Vec<StateIdx>> {
    Ok(constraints::consistent_states(theory, &exploration.universe)?)
}
