//! The induced mapping `M` from an algebraic specification to a Kripke
//! universe of the information level (paper §4.3's "alternative semantical
//! characterization of correct refinement").
//!
//! Each reachable ground state term (trace of updates) is mapped, through
//! the interpretation `I`, to a structure of `L1`: the table of db-predicate
//! `p` is the set of parameter tuples whose interpreting query evaluates to
//! `True` by rewriting. States are deduplicated by their *full* observation
//! table (observational equality, §4.1); accessibility edges are single
//! update applications.
//!
//! # Parallel exploration
//!
//! [`explore_algebraic`] runs a *level-synchronous* breadth-first search:
//! with more than one thread (see [`eclectic_kernel::env_threads`]) every
//! BFS level is split across worker threads, each owning a thread-local
//! [`Rewriter`] over a [`StoreHandle`] of one shared
//! [`ConcurrentTermStore`], plus a [`SharedMemo`] so normal forms computed
//! by one worker are reused by all. Workers evaluate observation keys and
//! candidate structures; the main thread then merges discoveries serially
//! in (parent order, successor order) — exactly the order the serial FIFO
//! search admits states — so state numbering, edges, witnesses and depths
//! are **bit-identical** to the single-threaded result.
//!
//! Worker-side structure computation keyed by observation id is sound
//! because the observation key covers *every* query at *every* parameter
//! tuple, and the induced structure is a function of exactly those query
//! values: equal keys imply equal structures.

use std::sync::Arc;

use eclectic_algebraic::induction::SuccessorPlan;
use eclectic_algebraic::{induction, observe, AlgError, AlgSpec, Rewriter};
use eclectic_kernel::{
    env_threads, run_tasks, Budget, BudgetExceeded, ConcurrentTermStore, Exhaustion, FxHashMap,
    IndexQueue, Interner, SharedMemo, StoreHandle, TermId,
};
use eclectic_logic::{Domains, Signature, Structure, Term};
use eclectic_temporal::{StateIdx, Universe};

use crate::bridge::ParamBridge;
use crate::error::{RefineError, Result};
use crate::interp1::InterpretationI;

/// Bounds for algebraic exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgExploreLimits {
    /// Maximum update applications from `initiate`.
    pub max_depth: usize,
    /// Maximum distinct (observational) states.
    pub max_states: usize,
}

impl Default for AlgExploreLimits {
    fn default() -> Self {
        AlgExploreLimits {
            max_depth: 6,
            max_states: 10_000,
        }
    }
}

/// The result of exploring an algebraic specification into a universe.
#[derive(Debug, Clone)]
pub struct AlgebraicExploration {
    /// The induced Kripke universe `M(T2)` over the information signature.
    pub universe: Universe,
    /// A witness trace term per universe state, in state-index order.
    pub witnesses: Vec<Term>,
    /// Depth (updates from `initiate`) at which each state was first seen.
    pub depth: Vec<usize>,
    /// Whether exploration hit a limit.
    pub truncated: bool,
    /// Whether two observationally distinct states collapsed onto the same
    /// `L1` structure (the interpretation abstracts information away).
    pub abstraction_collision: bool,
    /// Set when a [`Budget`] tripped: the exploration holds the levels
    /// completed before exhaustion (`truncated` is also set).
    pub exhausted: Option<Exhaustion>,
}

/// Explores the reachable states of `spec` and builds `M(T2)`, using
/// [`env_threads`] worker threads (the `ECLECTIC_THREADS` knob).
///
/// # Errors
/// Propagates rewriting/bridge errors; limit hits set `truncated` instead
/// of failing.
pub fn explore_algebraic(
    spec: &AlgSpec,
    interp: &InterpretationI,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    limits: AlgExploreLimits,
) -> Result<AlgebraicExploration> {
    explore_algebraic_threads(spec, interp, info_sig, domains, limits, env_threads())
}

/// As [`explore_algebraic`], with an explicit thread count. `threads <= 1`
/// runs the serial search over a private [`eclectic_kernel::TermStore`];
/// more threads run the level-synchronous parallel search over a shared
/// [`ConcurrentTermStore`]. Both produce bit-identical explorations.
///
/// # Errors
/// See [`explore_algebraic`].
pub fn explore_algebraic_threads(
    spec: &AlgSpec,
    interp: &InterpretationI,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    limits: AlgExploreLimits,
    threads: usize,
) -> Result<AlgebraicExploration> {
    explore_algebraic_budget(
        spec,
        interp,
        info_sig,
        domains,
        limits,
        &Budget::unlimited(),
        threads,
    )
}

/// As [`explore_algebraic_threads`], governed by a [`Budget`]. The budget is
/// polled once per BFS level against the term store's node count, so a node
/// cap stops at the same level boundary regardless of thread count; deadline
/// and cancellation trips additionally interrupt workers mid-level and stop
/// at the enclosing level. Exhaustion sets `truncated` and `exhausted` on
/// the partial exploration instead of failing.
///
/// # Errors
/// See [`explore_algebraic`]; budget exhaustion is *not* an error.
pub fn explore_algebraic_budget(
    spec: &AlgSpec,
    interp: &InterpretationI,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    limits: AlgExploreLimits,
    budget: &Budget,
    threads: usize,
) -> Result<AlgebraicExploration> {
    let threads = eclectic_kernel::effective_workers(threads);
    if threads <= 1 {
        explore_serial(
            spec,
            interp,
            info_sig,
            domains,
            limits,
            budget,
            Rewriter::new(spec),
        )
    } else {
        explore_parallel(spec, interp, info_sig, domains, limits, budget, threads)
    }
}

/// Extracts the budget-trip reason from a propagated rewriting error, if
/// that is what `e` is.
pub(crate) fn budget_stop(e: &RefineError) -> Option<BudgetExceeded> {
    match e {
        RefineError::Alg(AlgError::Budget { reason }) => Some(*reason),
        RefineError::Rpr(eclectic_rpr::RprError::Budget { reason }) => Some(*reason),
        _ => None,
    }
}

/// A budget trip re-raised as an error so the exploration bodies can unwind
/// through `?`; the wrappers convert it back into a graceful partial report.
pub(crate) fn budget_err(reason: BudgetExceeded) -> RefineError {
    RefineError::Alg(AlgError::Budget { reason })
}

/// Shared per-exploration context for state admission.
struct AdmitCtx<'c> {
    keys: &'c observe::ObsKeys,
    interp: &'c InterpretationI,
    bridge: &'c ParamBridge,
    info_sig: &'c Arc<Signature>,
    domains: &'c Arc<Domains>,
}

/// Mutable exploration state shared by admission and merge.
struct Explore {
    universe: Universe,
    witnesses: Vec<Term>,
    depth: Vec<usize>,
    by_obs: FxHashMap<TermId, StateIdx>,
    truncated: bool,
    abstraction_collision: bool,
    exhausted: Option<Exhaustion>,
}

impl Explore {
    fn new(info_sig: &Arc<Signature>, domains: &Arc<Domains>) -> Self {
        Explore {
            universe: Universe::new(info_sig.clone(), domains.clone()),
            witnesses: Vec::new(),
            depth: Vec::new(),
            by_obs: FxHashMap::default(),
            truncated: false,
            abstraction_collision: false,
            exhausted: None,
        }
    }

    /// Admits an interned ground state term: deduplicates by packed
    /// observation id, computes the induced structure only for fresh
    /// observational states. Returns the state index and whether it is a
    /// fresh frontier entry.
    fn admit<S: Interner>(
        &mut self,
        rw: &mut Rewriter<'_, S>,
        ctx: &AdmitCtx<'_>,
        row: &mut Vec<TermId>,
        term: TermId,
        d: usize,
    ) -> Result<(StateIdx, bool)> {
        let obs = ctx.keys.key_id(rw, term, row)?;
        if let Some(&idx) = self.by_obs.get(&obs) {
            return Ok((idx, false));
        }
        let st = structure_of_id(rw, ctx.interp, ctx.bridge, ctx.info_sig, ctx.domains, term)?;
        self.insert_fresh_obs(obs, st, || rw.extern_term(term), d)
    }

    /// Installs a structure for a fresh observation id (not in `by_obs`).
    /// `witness` is only materialised when the structure is genuinely new.
    fn insert_fresh_obs(
        &mut self,
        obs: TermId,
        st: Structure,
        witness: impl FnOnce() -> Term,
        d: usize,
    ) -> Result<(StateIdx, bool)> {
        let pre_existing = self.universe.find_state(&st).is_some();
        let (idx, fresh) = self.universe.add_state(st)?;
        if pre_existing {
            // Same L1 structure reached from a different observation table.
            self.abstraction_collision = true;
            self.by_obs.insert(obs, idx);
            return Ok((idx, false));
        }
        debug_assert!(fresh);
        self.by_obs.insert(obs, idx);
        self.witnesses.push(witness());
        self.depth.push(d);
        Ok((idx, true))
    }

    fn finish(self) -> AlgebraicExploration {
        AlgebraicExploration {
            universe: self.universe,
            witnesses: self.witnesses,
            depth: self.depth,
            truncated: self.truncated,
            abstraction_collision: self.abstraction_collision,
            exhausted: self.exhausted,
        }
    }

    /// Records a budget trip: the exploration so far becomes the partial
    /// result, marked truncated.
    fn exhaust(&mut self, budget: &Budget, reason: BudgetExceeded, levels: usize) {
        self.truncated = true;
        self.exhausted = Some(budget.exhaustion("explore", reason, levels));
    }
}

/// The serial search, generic over the term-store backend. States are
/// deduplicated by *packed observation id* (one interned tuple node per
/// observation row — see [`observe::ObsKeys::key_id`]), so frontier lookup
/// is a single id hash. Observation rows and successor lists reuse scratch
/// buffers across states.
fn explore_serial<S: Interner>(
    spec: &AlgSpec,
    interp: &InterpretationI,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    limits: AlgExploreLimits,
    budget: &Budget,
    mut rw: Rewriter<'_, S>,
) -> Result<AlgebraicExploration> {
    let mut ex = Explore::new(info_sig, domains);
    if let Some(reason) = budget.check(rw.store().len()) {
        ex.exhaust(budget, reason, 0);
        return Ok(ex.finish());
    }
    // The search polls the node cap itself at level boundaries; the
    // rewriter only watches the timing axes (deadline, cancellation).
    rw.set_budget(budget.without_node_cap());
    let mut level = 0usize;
    if let Err(e) = explore_serial_body(spec, interp, info_sig, domains, limits, budget, &mut rw, &mut ex, &mut level)
    {
        match budget_stop(&e) {
            Some(reason) => ex.exhaust(budget, reason, level),
            None => return Err(e),
        }
    }
    Ok(ex.finish())
}

#[allow(clippy::too_many_arguments)]
fn explore_serial_body<S: Interner>(
    spec: &AlgSpec,
    interp: &InterpretationI,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    limits: AlgExploreLimits,
    budget: &Budget,
    rw: &mut Rewriter<'_, S>,
    ex: &mut Explore,
    level: &mut usize,
) -> Result<()> {
    let bridge = ParamBridge::new(spec.signature(), info_sig, domains)?;
    let keys = observe::ObsKeys::new(rw)?;
    let plan = SuccessorPlan::new(rw)?;
    let ctx = AdmitCtx {
        keys: &keys,
        interp,
        bridge: &bridge,
        info_sig,
        domains,
    };

    let mut row: Vec<TermId> = Vec::with_capacity(keys.arity());
    let mut succs: Vec<TermId> = Vec::with_capacity(plan.count());

    let initials = induction::initial_state_ids(rw)?;
    if initials.is_empty() {
        return Err(RefineError::Alg(
            eclectic_algebraic::AlgError::BadDescription("no initial state constant".into()),
        ));
    }

    let mut queue: std::collections::VecDeque<(StateIdx, TermId, usize)> =
        std::collections::VecDeque::new();
    for t in initials {
        let (idx, fresh) = ex.admit(rw, &ctx, &mut row, t, 0)?;
        if fresh {
            queue.push_back((idx, t, 0));
        }
    }

    while let Some((idx, term, d)) = queue.pop_front() {
        if d >= limits.max_depth {
            ex.truncated = true;
            continue;
        }
        if d > *level {
            // First pop of a new BFS level: every shallower state has been
            // expanded, so the store's node count here is a pure function of
            // the levels completed — the same poll the parallel search makes
            // between levels.
            *level = d;
            if let Some(reason) = budget.check(rw.store().len()) {
                return Err(budget_err(reason));
            }
        }
        plan.successors_into(rw, term, &mut succs);
        for &succ in &succs {
            if ex.universe.state_count() >= limits.max_states {
                ex.truncated = true;
                break;
            }
            let (sidx, fresh) = ex.admit(rw, &ctx, &mut row, succ, d + 1)?;
            ex.universe.add_edge(idx, sidx);
            if fresh {
                queue.push_back((sidx, succ, d + 1));
            }
        }
    }

    Ok(())
}

/// Per-item worker output: the successors of one frontier state, each with
/// its packed observation id.
type ItemSuccs = Vec<(TermId, TermId)>;

/// One worker task's output: successors keyed by frontier index, the
/// candidate structures for observation keys not yet in the dedup map,
/// the budget trip (if any) that made the worker stop early, and the
/// first hard error (if any), both keyed by the frontier index they
/// occurred at so the merge can replay serial order.
type TaskResult = (
    Vec<(usize, ItemSuccs)>,
    FxHashMap<TermId, Structure>,
    Option<(usize, BudgetExceeded)>,
    Option<(usize, RefineError)>,
);

/// A persistent worker: a rewriter over a shared-store handle plus scratch
/// buffers, reused across BFS levels.
struct Worker<'a> {
    rw: Rewriter<'a, StoreHandle>,
    row: Vec<TermId>,
    succs: Vec<TermId>,
}

/// The level-synchronous parallel search. Every level runs two phases:
///
/// * **Phase A (parallel):** the frontier is split into contiguous chunks,
///   one per worker. Each worker builds the successors of its states,
///   evaluates their packed observation ids, and computes the induced
///   structure for every observation id not already admitted (deduplicated
///   locally). `by_obs` is only *read* during this phase.
/// * **Phase B (serial merge):** discoveries are merged in (parent order,
///   successor order) — the exact order the serial FIFO pops them — so the
///   admitted states, their numbering, edges, witnesses and depths are
///   bit-identical to [`explore_serial`].
fn explore_parallel(
    spec: &AlgSpec,
    interp: &InterpretationI,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    limits: AlgExploreLimits,
    budget: &Budget,
    threads: usize,
) -> Result<AlgebraicExploration> {
    let store = ConcurrentTermStore::shared();
    let mut ex = Explore::new(info_sig, domains);
    if let Some(reason) = budget.check(store.len()) {
        ex.exhaust(budget, reason, 0);
        return Ok(ex.finish());
    }
    let mut level = 0usize;
    if let Err(e) = explore_parallel_body(
        spec, interp, info_sig, domains, limits, budget, threads, &store, &mut ex, &mut level,
    ) {
        match budget_stop(&e) {
            Some(reason) => ex.exhaust(budget, reason, level),
            None => return Err(e),
        }
    }
    Ok(ex.finish())
}

#[allow(clippy::too_many_arguments)]
fn explore_parallel_body(
    spec: &AlgSpec,
    interp: &InterpretationI,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    limits: AlgExploreLimits,
    budget: &Budget,
    threads: usize,
    store: &Arc<ConcurrentTermStore>,
    ex: &mut Explore,
    level: &mut usize,
) -> Result<()> {
    let bridge = ParamBridge::new(spec.signature(), info_sig, domains)?;
    let memo = Arc::new(SharedMemo::default());
    let mut rw0 = Rewriter::with_store(spec, StoreHandle::new(store.clone()));
    rw0.set_shared_memo(memo.clone());
    rw0.set_budget(budget.without_node_cap());
    let keys = observe::ObsKeys::new(&mut rw0)?;
    let plan = SuccessorPlan::new(&mut rw0)?;
    let ctx = AdmitCtx {
        keys: &keys,
        interp,
        bridge: &bridge,
        info_sig,
        domains,
    };

    let mut row: Vec<TermId> = Vec::with_capacity(keys.arity());

    let initials = induction::initial_state_ids(&mut rw0)?;
    if initials.is_empty() {
        return Err(RefineError::Alg(
            eclectic_algebraic::AlgError::BadDescription("no initial state constant".into()),
        ));
    }

    // The BFS frontier, admitted level by level. The serial FIFO queue
    // always holds states of at most two consecutive depths, and the depth
    // limit/truncation checks apply uniformly per level, so a frontier
    // vector per level reproduces its order exactly.
    let mut frontier: Vec<(StateIdx, TermId, usize)> = Vec::new();
    for t in initials {
        let (idx, fresh) = ex.admit(&mut rw0, &ctx, &mut row, t, 0)?;
        if fresh {
            frontier.push((idx, t, 0));
        }
    }

    let mut workers: Vec<Worker<'_>> = (0..threads)
        .map(|_| {
            let mut rw = Rewriter::with_store(spec, StoreHandle::new(store.clone()));
            rw.set_shared_memo(memo.clone());
            rw.set_budget(budget.without_node_cap());
            Worker {
                rw,
                row: Vec::with_capacity(keys.arity()),
                succs: Vec::with_capacity(plan.count()),
            }
        })
        .collect();

    while !frontier.is_empty() {
        let d = frontier[0].2;
        if d >= limits.max_depth {
            // The serial search pops each of these and marks truncation.
            ex.truncated = true;
            break;
        }
        if d > 0 {
            // Level boundary: the shared store holds exactly the nodes the
            // completed levels interned (hash-consing makes the set, hence
            // the count, schedule-independent), so this poll stops at the
            // same level as the serial search for the node axis.
            *level = d;
            if let Some(reason) = budget.check(store.len()) {
                return Err(budget_err(reason));
            }
        }

        // Phase A: expand the level in parallel. Frontier items are
        // claimed in chunks off a shared queue (idle scheduler workers
        // steal the tail of a slow worker's share) and keyed by frontier
        // index, so the merge below replays serial order regardless of
        // which worker expanded what.
        let nworkers = workers.len().min(frontier.len()).max(1);
        let queue = IndexQueue::new(frontier.len(), nworkers);
        let by_obs = &ex.by_obs;
        let task_results: Vec<TaskResult> = {
            let queue = &queue;
            let frontier = &frontier;
            let tasks: Vec<Box<dyn FnOnce() -> TaskResult + Send + '_>> = workers
                .iter_mut()
                .take(nworkers)
                .map(|w| {
                    let ctx = &ctx;
                    let plan = &plan;
                    let f: Box<dyn FnOnce() -> TaskResult + Send + '_> = Box::new(move || {
                        let mut per_item: Vec<(usize, ItemSuccs)> = Vec::new();
                        let mut structs: FxHashMap<TermId, Structure> = FxHashMap::default();
                        while let Some(range) = queue.claim() {
                            for k in range {
                                let (_, term, _) = frontier[k];
                                plan.successors_into(&mut w.rw, term, &mut w.succs);
                                let mut out: ItemSuccs = Vec::with_capacity(w.succs.len());
                                for i in 0..w.succs.len() {
                                    let succ = w.succs[i];
                                    let obs = match ctx.keys.key_id(&mut w.rw, succ, &mut w.row)
                                    {
                                        Ok(obs) => obs,
                                        Err(AlgError::Budget { reason }) => {
                                            return (per_item, structs, Some((k, reason)), None);
                                        }
                                        Err(e) => {
                                            return (per_item, structs, None, Some((k, e.into())));
                                        }
                                    };
                                    if !by_obs.contains_key(&obs) && !structs.contains_key(&obs) {
                                        let st = match structure_of_id(
                                            &mut w.rw,
                                            ctx.interp,
                                            ctx.bridge,
                                            ctx.info_sig,
                                            ctx.domains,
                                            succ,
                                        ) {
                                            Ok(st) => st,
                                            Err(e) => match budget_stop(&e) {
                                                Some(reason) => {
                                                    return (
                                                        per_item,
                                                        structs,
                                                        Some((k, reason)),
                                                        None,
                                                    );
                                                }
                                                None => {
                                                    return (per_item, structs, None, Some((k, e)));
                                                }
                                            },
                                        };
                                        structs.insert(obs, st);
                                    }
                                    out.push((succ, obs));
                                }
                                per_item.push((k, out));
                            }
                        }
                        (per_item, structs, None, None)
                    });
                    f
                })
                .collect();
            run_tasks(nworkers, tasks)
        };

        // Surface the first error in frontier order — the same error the
        // serial search hits first among those its admission order would
        // reach.
        let first_err = task_results
            .iter()
            .filter_map(|(_, _, _, e)| e.as_ref().map(|(k, _)| *k))
            .min();
        if let Some(k0) = first_err {
            let (_, e) = task_results
                .into_iter()
                .filter_map(|(_, _, _, e)| e)
                .find(|(k, _)| *k == k0)
                .expect("error index recorded");
            return Err(e);
        }
        let stop = task_results
            .iter()
            .filter_map(|(_, _, s, _)| s.as_ref().map(|(_, r)| *r))
            .next();
        let mut slots: Vec<Option<ItemSuccs>> = vec![None; frontier.len()];
        let mut fresh_structs: FxHashMap<TermId, Structure> = FxHashMap::default();
        for (items, structs, _, _) in task_results {
            for (k, out) in items {
                slots[k] = Some(out);
            }
            // Workers deduplicate locally; across workers the entries for
            // one observation id are identical structures.
            fresh_structs.extend(structs);
        }
        if let Some(reason) = stop {
            // A timing axis tripped inside a worker: the level is
            // incomplete, so discard it and report the levels that finished.
            *level = d;
            return Err(budget_err(reason));
        }
        let per_item: Vec<ItemSuccs> = slots
            .into_iter()
            .map(|slot| slot.expect("every frontier item expanded"))
            .collect();

        // Phase B: serial merge in (parent, successor) order.
        let mut next: Vec<(StateIdx, TermId, usize)> = Vec::new();
        for (&(pidx, _, _), succs) in frontier.iter().zip(&per_item) {
            for &(succ, obs) in succs {
                if ex.universe.state_count() >= limits.max_states {
                    ex.truncated = true;
                    break;
                }
                if let Some(&sidx) = ex.by_obs.get(&obs) {
                    ex.universe.add_edge(pidx, sidx);
                    continue;
                }
                let st = fresh_structs
                    .remove(&obs)
                    .expect("phase A computed a structure for every fresh observation");
                let (sidx, fresh) =
                    ex.insert_fresh_obs(obs, st, || rw0.extern_term(succ), d + 1)?;
                ex.universe.add_edge(pidx, sidx);
                if fresh {
                    next.push((sidx, succ, d + 1));
                }
            }
        }
        frontier = next;
    }

    Ok(())
}

/// Builds the `L1` structure induced by a ground state term: each
/// db-predicate holds of the tuples whose interpreting query rewrites to
/// `True`.
pub fn structure_of<S: Interner>(
    rw: &mut Rewriter<'_, S>,
    interp: &InterpretationI,
    bridge: &ParamBridge,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    state_term: &Term,
) -> Result<Structure> {
    let state = rw.intern(state_term);
    structure_of_id(rw, interp, bridge, info_sig, domains, state)
}

/// As [`structure_of`], over an already-interned state term — the hot-path
/// variant used by exploration: queries are evaluated by id with no term
/// trees built.
pub fn structure_of_id<S: Interner>(
    rw: &mut Rewriter<'_, S>,
    interp: &InterpretationI,
    bridge: &ParamBridge,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    state: TermId,
) -> Result<Structure> {
    let alg = rw.spec().signature().clone();
    let mut st = Structure::new(info_sig.clone(), domains.clone());
    let tru = rw.true_id();
    let fls = rw.false_id();
    for (p, q) in interp.pairs() {
        let qsorts = alg.query_params(q)?;
        let lsorts: Vec<_> = qsorts
            .iter()
            .map(|&s| bridge.logic_sort(s))
            .collect::<Result<_>>()?;
        for tuple in domains.tuples(&lsorts) {
            let args: Vec<TermId> = tuple
                .iter()
                .zip(&lsorts)
                .map(|(&e, &s)| Ok(rw.app_id(bridge.constant(s, e)?, &[])))
                .collect::<Result<_>>()?;
            let v = rw.eval_query_id(q, &args, state)?;
            if v == tru {
                st.insert_pred(p, tuple)?;
            } else if v != fls {
                return Err(RefineError::Alg(
                    eclectic_algebraic::AlgError::NotSufficientlyComplete {
                        term: eclectic_algebraic::term_str(&alg, &rw.extern_term(v)),
                    },
                ));
            }
        }
    }
    Ok(st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclectic_algebraic::{parse_equations, AlgSignature};

    /// Offered-only courses spec over 2 courses.
    fn setup() -> (AlgSpec, InterpretationI, Arc<Signature>, Arc<Domains>) {
        let mut a = AlgSignature::new().unwrap();
        let course = a.add_param_sort("course", &["db", "ai"]).unwrap();
        a.add_query("q_offered", &[course], None).unwrap();
        a.add_update("initiate", &[], false).unwrap();
        a.add_update("offer", &[course], true).unwrap();
        a.add_update("cancel", &[course], true).unwrap();
        a.add_param_var("c", course).unwrap();
        a.add_param_var("c'", course).unwrap();
        let eqs = parse_equations(
            &mut a,
            &[
                ("eq1", "q_offered(c, initiate) = False"),
                ("eq3", "q_offered(c, offer(c, U)) = True"),
                (
                    "eq4",
                    "c != c' ==> q_offered(c, offer(c', U)) = q_offered(c, U)",
                ),
                ("eq6", "q_offered(c, cancel(c, U)) = False"),
                (
                    "eq7",
                    "c != c' ==> q_offered(c, cancel(c', U)) = q_offered(c, U)",
                ),
            ],
        )
        .unwrap();
        let spec = AlgSpec::new(a, eqs).unwrap();

        let mut info = Signature::new();
        let icourse = info.add_sort("course").unwrap();
        info.add_db_predicate("offered", &[icourse]).unwrap();
        let dom = Domains::from_names(&info, &[("course", &["db", "ai"])]).unwrap();
        let interp =
            InterpretationI::new(&info, spec.signature(), &[("offered", "q_offered")]).unwrap();
        (spec, interp, Arc::new(info), Arc::new(dom))
    }

    #[test]
    fn explores_the_powerset_of_offers() {
        let (spec, interp, info, dom) = setup();
        let exp = explore_algebraic(
            &spec,
            &interp,
            &info,
            &dom,
            AlgExploreLimits {
                max_depth: 5,
                max_states: 100,
            },
        )
        .unwrap();
        // offer/cancel generate all 4 subsets of {db, ai}.
        assert_eq!(exp.universe.state_count(), 4);
        assert!(!exp.truncated);
        assert!(!exp.abstraction_collision);
        assert_eq!(exp.witnesses.len(), 4);
        // Every state has 4 outgoing edges (2 offers + 2 cancels), possibly
        // self-looping; count distinct targets ≥ 1.
        for s in exp.universe.state_indices() {
            assert!(!exp.universe.successors(s).is_empty());
        }
        // Depths: initiate at 0; singletons at 1; full set at 2.
        assert_eq!(exp.depth.iter().filter(|&&d| d == 0).count(), 1);
        assert_eq!(exp.depth.iter().filter(|&&d| d == 1).count(), 2);
        assert_eq!(exp.depth.iter().filter(|&&d| d == 2).count(), 1);
    }

    #[test]
    fn depth_limit_truncates() {
        let (spec, interp, info, dom) = setup();
        let exp = explore_algebraic(
            &spec,
            &interp,
            &info,
            &dom,
            AlgExploreLimits {
                max_depth: 1,
                max_states: 100,
            },
        )
        .unwrap();
        assert!(exp.truncated);
        assert_eq!(exp.universe.state_count(), 3); // {} and the singletons
    }

    #[test]
    fn structures_reflect_queries() {
        let (spec, interp, info, dom) = setup();
        let alg = spec.signature().clone();
        let bridge = ParamBridge::new(&alg, &info, &dom).unwrap();
        let mut rw = Rewriter::new(&spec);
        let initiate = alg.logic().func_id("initiate").unwrap();
        let offer = alg.logic().func_id("offer").unwrap();
        let db = Term::constant(alg.logic().func_id("db").unwrap());
        let t = Term::App(offer, vec![db, Term::constant(initiate)]);
        let st = structure_of(&mut rw, &interp, &bridge, &info, &dom, &t).unwrap();
        let offered = info.pred_id("offered").unwrap();
        assert!(st.pred_holds(offered, &[eclectic_logic::Elem(0)]));
        assert!(!st.pred_holds(offered, &[eclectic_logic::Elem(1)]));
    }

    #[test]
    fn node_cap_zero_exhausts_before_exploring() {
        let (spec, interp, info, dom) = setup();
        let budget = Budget::unlimited().with_max_nodes(0);
        let mut reports = Vec::new();
        for threads in [1, 2, 4] {
            let exp = explore_algebraic_budget(
                &spec,
                &interp,
                &info,
                &dom,
                AlgExploreLimits::default(),
                &budget,
                threads,
            )
            .unwrap();
            assert_eq!(exp.universe.state_count(), 0);
            assert!(exp.truncated);
            let e = exp.exhausted.expect("node cap 0 must exhaust");
            assert_eq!(e.stage, "explore");
            assert_eq!(e.completed_units, 0);
            reports.push(e);
        }
        assert!(reports.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn cancelled_budget_returns_partial_exploration() {
        let (spec, interp, info, dom) = setup();
        let tok = eclectic_kernel::CancelToken::new();
        tok.cancel();
        let budget = Budget::unlimited().with_cancel(tok);
        for threads in [1, 4] {
            let exp = explore_algebraic_budget(
                &spec,
                &interp,
                &info,
                &dom,
                AlgExploreLimits::default(),
                &budget,
                threads,
            )
            .unwrap();
            assert!(exp.truncated);
            let e = exp.exhausted.expect("cancelled budget must exhaust");
            assert_eq!(e.reason, eclectic_kernel::BudgetExceeded::Cancelled);
        }
    }

    #[test]
    fn unlimited_budget_matches_ungoverned_exploration() {
        let (spec, interp, info, dom) = setup();
        let limits = AlgExploreLimits {
            max_depth: 5,
            max_states: 100,
        };
        let plain = explore_algebraic_threads(&spec, &interp, &info, &dom, limits, 1).unwrap();
        let gov = explore_algebraic_budget(
            &spec,
            &interp,
            &info,
            &dom,
            limits,
            &Budget::unlimited(),
            1,
        )
        .unwrap();
        assert_eq!(gov.universe.state_count(), plain.universe.state_count());
        assert_eq!(gov.witnesses, plain.witnesses);
        assert!(gov.exhausted.is_none());
    }

    #[test]
    fn parallel_exploration_is_bit_identical_to_serial() {
        let (spec, interp, info, dom) = setup();
        let limits = AlgExploreLimits {
            max_depth: 5,
            max_states: 100,
        };
        let serial = explore_algebraic_threads(&spec, &interp, &info, &dom, limits, 1).unwrap();
        for threads in [2, 4, 8] {
            let par =
                explore_algebraic_threads(&spec, &interp, &info, &dom, limits, threads).unwrap();
            assert_eq!(par.universe.state_count(), serial.universe.state_count());
            assert_eq!(par.universe.edge_count(), serial.universe.edge_count());
            assert_eq!(par.witnesses, serial.witnesses);
            assert_eq!(par.depth, serial.depth);
            assert_eq!(par.truncated, serial.truncated);
            assert_eq!(par.abstraction_collision, serial.abstraction_collision);
            for s in serial.universe.state_indices() {
                assert_eq!(par.universe.successors(s), serial.universe.successors(s));
            }
        }
    }
}
