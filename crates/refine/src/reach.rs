//! The induced mapping `M` from an algebraic specification to a Kripke
//! universe of the information level (paper §4.3's "alternative semantical
//! characterization of correct refinement").
//!
//! Each reachable ground state term (trace of updates) is mapped, through
//! the interpretation `I`, to a structure of `L1`: the table of db-predicate
//! `p` is the set of parameter tuples whose interpreting query evaluates to
//! `True` by rewriting. States are deduplicated by their *full* observation
//! table (observational equality, §4.1); accessibility edges are single
//! update applications.

use std::collections::VecDeque;
use std::sync::Arc;

use eclectic_algebraic::{induction, observe, AlgSpec, Rewriter};
use eclectic_kernel::{FxHashMap, TermId};
use eclectic_logic::{Domains, Signature, Structure, Term};
use eclectic_temporal::{StateIdx, Universe};

use crate::bridge::ParamBridge;
use crate::error::{RefineError, Result};
use crate::interp1::InterpretationI;

/// Bounds for algebraic exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgExploreLimits {
    /// Maximum update applications from `initiate`.
    pub max_depth: usize,
    /// Maximum distinct (observational) states.
    pub max_states: usize,
}

impl Default for AlgExploreLimits {
    fn default() -> Self {
        AlgExploreLimits {
            max_depth: 6,
            max_states: 10_000,
        }
    }
}

/// The result of exploring an algebraic specification into a universe.
#[derive(Debug, Clone)]
pub struct AlgebraicExploration {
    /// The induced Kripke universe `M(T2)` over the information signature.
    pub universe: Universe,
    /// A witness trace term per universe state, in state-index order.
    pub witnesses: Vec<Term>,
    /// Depth (updates from `initiate`) at which each state was first seen.
    pub depth: Vec<usize>,
    /// Whether exploration hit a limit.
    pub truncated: bool,
    /// Whether two observationally distinct states collapsed onto the same
    /// `L1` structure (the interpretation abstracts information away).
    pub abstraction_collision: bool,
}

/// Explores the reachable states of `spec` and builds `M(T2)`.
///
/// # Errors
/// Propagates rewriting/bridge errors; limit hits set `truncated` instead
/// of failing.
pub fn explore_algebraic(
    spec: &AlgSpec,
    interp: &InterpretationI,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    limits: AlgExploreLimits,
) -> Result<AlgebraicExploration> {
    let bridge = ParamBridge::new(spec.signature(), info_sig, domains)?;
    let mut rw = Rewriter::new(spec);
    // States are deduplicated by *observation key*: the vector of interned
    // normal forms of every simple observation. Keys are `Vec<TermId>`, so
    // frontier lookup is hashing of ids — no term trees are compared.
    let keys = observe::ObsKeys::new(&mut rw)?;

    let mut universe = Universe::new(info_sig.clone(), domains.clone());
    let mut witnesses: Vec<Term> = Vec::new();
    let mut depth: Vec<usize> = Vec::new();
    let mut by_obs: FxHashMap<Vec<TermId>, StateIdx> = FxHashMap::default();
    let mut truncated = false;
    let mut abstraction_collision = false;

    let initials = induction::initial_state_ids(&mut rw)?;
    if initials.is_empty() {
        return Err(RefineError::Alg(eclectic_algebraic::AlgError::BadDescription(
            "no initial state constant".into(),
        )));
    }

    let mut queue: VecDeque<(StateIdx, TermId, usize)> = VecDeque::new();

    let admit = |rw: &mut Rewriter<'_>,
                     universe: &mut Universe,
                     by_obs: &mut FxHashMap<Vec<TermId>, StateIdx>,
                     witnesses: &mut Vec<Term>,
                     depth: &mut Vec<usize>,
                     abstraction_collision: &mut bool,
                     term: TermId,
                     d: usize|
     -> Result<(StateIdx, bool)> {
        let obs = keys.key(rw, term)?;
        if let Some(&idx) = by_obs.get(&obs) {
            return Ok((idx, false));
        }
        // Fresh observational state: only now is the owned tree needed.
        let witness = rw.extern_term(term);
        let st = structure_of(rw, interp, &bridge, info_sig, domains, &witness)?;
        let pre_existing = universe.find_state(&st).is_some();
        let (idx, fresh) = universe.add_state(st)?;
        if pre_existing {
            // Same L1 structure reached from a different observation table.
            *abstraction_collision = true;
            by_obs.insert(obs, idx);
            return Ok((idx, false));
        }
        debug_assert!(fresh);
        by_obs.insert(obs, idx);
        witnesses.push(witness);
        depth.push(d);
        Ok((idx, true))
    };

    for t in initials {
        let (idx, fresh) = admit(
            &mut rw,
            &mut universe,
            &mut by_obs,
            &mut witnesses,
            &mut depth,
            &mut abstraction_collision,
            t,
            0,
        )?;
        if fresh {
            queue.push_back((idx, t, 0));
        }
    }

    while let Some((idx, term, d)) = queue.pop_front() {
        if d >= limits.max_depth {
            truncated = true;
            continue;
        }
        for succ in induction::successor_ids(&mut rw, term)? {
            if universe.state_count() >= limits.max_states {
                truncated = true;
                break;
            }
            let (sidx, fresh) = admit(
                &mut rw,
                &mut universe,
                &mut by_obs,
                &mut witnesses,
                &mut depth,
                &mut abstraction_collision,
                succ,
                d + 1,
            )?;
            universe.add_edge(idx, sidx);
            if fresh {
                queue.push_back((sidx, succ, d + 1));
            }
        }
    }

    Ok(AlgebraicExploration {
        universe,
        witnesses,
        depth,
        truncated,
        abstraction_collision,
    })
}

/// Builds the `L1` structure induced by a ground state term: each
/// db-predicate holds of the tuples whose interpreting query rewrites to
/// `True`.
pub fn structure_of(
    rw: &mut Rewriter<'_>,
    interp: &InterpretationI,
    bridge: &ParamBridge,
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    state_term: &Term,
) -> Result<Structure> {
    let alg = rw.spec().signature().clone();
    let mut st = Structure::new(info_sig.clone(), domains.clone());
    for (p, q) in interp.pairs() {
        let qsorts = alg.query_params(q)?;
        let lsorts: Vec<_> = qsorts
            .iter()
            .map(|&s| bridge.logic_sort(s))
            .collect::<Result<_>>()?;
        for tuple in domains.tuples(&lsorts) {
            let args: Vec<Term> = tuple
                .iter()
                .zip(&lsorts)
                .map(|(&e, &s)| bridge.term_of_elem(s, e))
                .collect::<Result<_>>()?;
            let mut full = args;
            full.push(state_term.clone());
            let v = rw.normalize(&Term::App(q, full))?;
            if v == alg.true_term() {
                st.insert_pred(p, tuple)?;
            } else if v != alg.false_term() {
                return Err(RefineError::Alg(
                    eclectic_algebraic::AlgError::NotSufficientlyComplete {
                        term: eclectic_algebraic::term_str(&alg, &v),
                    },
                ));
            }
        }
    }
    Ok(st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclectic_algebraic::{parse_equations, AlgSignature};

    /// Offered-only courses spec over 2 courses.
    fn setup() -> (AlgSpec, InterpretationI, Arc<Signature>, Arc<Domains>) {
        let mut a = AlgSignature::new().unwrap();
        let course = a.add_param_sort("course", &["db", "ai"]).unwrap();
        a.add_query("q_offered", &[course], None).unwrap();
        a.add_update("initiate", &[], false).unwrap();
        a.add_update("offer", &[course], true).unwrap();
        a.add_update("cancel", &[course], true).unwrap();
        a.add_param_var("c", course).unwrap();
        a.add_param_var("c'", course).unwrap();
        let eqs = parse_equations(
            &mut a,
            &[
                ("eq1", "q_offered(c, initiate) = False"),
                ("eq3", "q_offered(c, offer(c, U)) = True"),
                ("eq4", "c != c' ==> q_offered(c, offer(c', U)) = q_offered(c, U)"),
                ("eq6", "q_offered(c, cancel(c, U)) = False"),
                ("eq7", "c != c' ==> q_offered(c, cancel(c', U)) = q_offered(c, U)"),
            ],
        )
        .unwrap();
        let spec = AlgSpec::new(a, eqs).unwrap();

        let mut info = Signature::new();
        let icourse = info.add_sort("course").unwrap();
        info.add_db_predicate("offered", &[icourse]).unwrap();
        let dom = Domains::from_names(&info, &[("course", &["db", "ai"])]).unwrap();
        let interp =
            InterpretationI::new(&info, spec.signature(), &[("offered", "q_offered")]).unwrap();
        (spec, interp, Arc::new(info), Arc::new(dom))
    }

    #[test]
    fn explores_the_powerset_of_offers() {
        let (spec, interp, info, dom) = setup();
        let exp = explore_algebraic(
            &spec,
            &interp,
            &info,
            &dom,
            AlgExploreLimits {
                max_depth: 5,
                max_states: 100,
            },
        )
        .unwrap();
        // offer/cancel generate all 4 subsets of {db, ai}.
        assert_eq!(exp.universe.state_count(), 4);
        assert!(!exp.truncated);
        assert!(!exp.abstraction_collision);
        assert_eq!(exp.witnesses.len(), 4);
        // Every state has 4 outgoing edges (2 offers + 2 cancels), possibly
        // self-looping; count distinct targets ≥ 1.
        for s in exp.universe.state_indices() {
            assert!(!exp.universe.successors(s).is_empty());
        }
        // Depths: initiate at 0; singletons at 1; full set at 2.
        assert_eq!(exp.depth.iter().filter(|&&d| d == 0).count(), 1);
        assert_eq!(exp.depth.iter().filter(|&&d| d == 1).count(), 2);
        assert_eq!(exp.depth.iter().filter(|&&d| d == 2).count(), 1);
    }

    #[test]
    fn depth_limit_truncates() {
        let (spec, interp, info, dom) = setup();
        let exp = explore_algebraic(
            &spec,
            &interp,
            &info,
            &dom,
            AlgExploreLimits {
                max_depth: 1,
                max_states: 100,
            },
        )
        .unwrap();
        assert!(exp.truncated);
        assert_eq!(exp.universe.state_count(), 3); // {} and the singletons
    }

    #[test]
    fn structures_reflect_queries() {
        let (spec, interp, info, dom) = setup();
        let alg = spec.signature().clone();
        let bridge = ParamBridge::new(&alg, &info, &dom).unwrap();
        let mut rw = Rewriter::new(&spec);
        let initiate = alg.logic().func_id("initiate").unwrap();
        let offer = alg.logic().func_id("offer").unwrap();
        let db = Term::constant(alg.logic().func_id("db").unwrap());
        let t = Term::App(offer, vec![db, Term::constant(initiate)]);
        let st = structure_of(&mut rw, &interp, &bridge, &info, &dom, &t).unwrap();
        let offered = info.pred_id("offered").unwrap();
        assert!(st.pred_holds(offered, &[eclectic_logic::Elem(0)]));
        assert!(!st.pred_holds(offered, &[eclectic_logic::Elem(1)]));
    }
}
