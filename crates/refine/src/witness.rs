//! Obligation (c): every valid state is reachable (paper §4.4).
//!
//! All candidate states — every assignment of relations to the
//! db-predicates over the finite carriers — are enumerated; those modelling
//! the static constraints are *valid*. Each valid state is then looked up in
//! the explored universe `M(T2)`; valid-but-unreached states are reported
//! with their rendering (they are genuine failures only if exploration was
//! not truncated).

use std::sync::Arc;

use eclectic_logic::{Domains, Signature, Structure, Theory};

use crate::error::{RefineError, Result};
use crate::reach::AlgebraicExploration;

/// Result of the valid-⊆-reachable check.
#[derive(Debug, Clone)]
pub struct ValidReachableReport {
    /// Number of candidate states enumerated.
    pub candidates: usize,
    /// Number of valid states (models of the static axioms).
    pub valid: usize,
    /// Valid states found in the universe.
    pub reachable_valid: usize,
    /// Renderings of valid states missing from the universe.
    pub unreachable: Vec<String>,
    /// Whether the exploration that built the universe was truncated (in
    /// which case `unreachable` entries are inconclusive).
    pub exploration_truncated: bool,
}

impl ValidReachableReport {
    /// Whether every valid state was reached (conclusively).
    #[must_use]
    pub fn holds(&self) -> bool {
        self.unreachable.is_empty()
    }
}

/// Enumerates every structure over the db-predicates (the product of the
/// per-predicate relation powersets).
///
/// # Errors
/// Returns [`RefineError::LimitExceeded`] if more than `cap` states would
/// be generated.
pub fn enumerate_candidate_states(
    info_sig: &Arc<Signature>,
    domains: &Arc<Domains>,
    cap: usize,
) -> Result<Vec<Structure>> {
    let mut states = vec![Structure::new(info_sig.clone(), domains.clone())];
    for p in info_sig.db_pred_ids() {
        let rows = domains.tuples(&info_sig.pred(p).domain);
        let row_count = rows.len();
        let overflow = states.len().checked_mul(1 << row_count);
        if row_count >= usize::BITS as usize || !matches!(overflow, Some(n) if n <= cap) {
            return Err(RefineError::LimitExceeded(format!(
                "candidate state enumeration exceeds cap {cap}"
            )));
        }
        let mut next = Vec::with_capacity(states.len() << row_count);
        for st in &states {
            for mask in 0..(1usize << row_count) {
                let mut s2 = st.clone();
                let tuples: std::collections::BTreeSet<_> = rows
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, t)| t.clone())
                    .collect();
                s2.set_pred_relation(p, tuples)?;
                next.push(s2);
            }
        }
        states = next;
    }
    Ok(states)
}

/// Checks obligation (c) against an exploration.
///
/// # Errors
/// Propagates enumeration and evaluation errors.
pub fn check_valid_reachable(
    theory: &Theory,
    exploration: &AlgebraicExploration,
    cap: usize,
) -> Result<ValidReachableReport> {
    let u = &exploration.universe;
    let candidates = enumerate_candidate_states(u.signature(), u.domains(), cap)?;
    let mut report = ValidReachableReport {
        candidates: candidates.len(),
        valid: 0,
        reachable_valid: 0,
        unreachable: Vec::new(),
        exploration_truncated: exploration.truncated,
    };
    for st in candidates {
        if !theory.models_static(&st)? {
            continue;
        }
        report.valid += 1;
        if u.find_state(&st).is_some() {
            report.reachable_valid += 1;
        } else {
            report.unreachable.push(render_structure(&st));
        }
    }
    Ok(report)
}

/// Renders a structure's db-predicate tables compactly.
fn render_structure(st: &Structure) -> String {
    use std::fmt::Write as _;
    let sig = st.signature();
    let dom = st.domains();
    let mut out = String::new();
    for p in sig.db_pred_ids() {
        let decl = sig.pred(p);
        let _ = write!(out, "{}={{", decl.name);
        let mut first = true;
        for tuple in st.pred_relation(p) {
            if !first {
                let _ = write!(out, ",");
            }
            first = false;
            let names: Vec<&str> = tuple
                .iter()
                .zip(&decl.domain)
                .map(|(e, &s)| dom.elem_name(sig, s, *e).unwrap_or("?"))
                .collect();
            let _ = write!(out, "({})", names.join(","));
        }
        let _ = write!(out, "}} ");
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_enumeration_counts() {
        let mut sig = Signature::new();
        let course = sig.add_sort("course").unwrap();
        sig.add_db_predicate("offered", &[course]).unwrap();
        let dom = Domains::from_names(&sig, &[("course", &["db", "ai"])]).unwrap();
        let sig = Arc::new(sig);
        let dom = Arc::new(dom);
        let states = enumerate_candidate_states(&sig, &dom, 100).unwrap();
        assert_eq!(states.len(), 4);
        assert!(matches!(
            enumerate_candidate_states(&sig, &dom, 3),
            Err(RefineError::LimitExceeded(_))
        ));
    }

    #[test]
    fn render_is_compact() {
        let mut sig = Signature::new();
        let course = sig.add_sort("course").unwrap();
        let offered = sig.add_db_predicate("offered", &[course]).unwrap();
        let dom = Domains::from_names(&sig, &[("course", &["db"])]).unwrap();
        let mut st = Structure::new(Arc::new(sig), Arc::new(dom));
        st.insert_pred(offered, vec![eclectic_logic::Elem(0)]).unwrap();
        assert_eq!(render_structure(&st), "offered={(db)}");
    }
}
