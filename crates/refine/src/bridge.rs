//! Parameter bridges: aligning carriers across specification levels.
//!
//! The paper assumes "every sort of L1 is a parameter sort of L2" (§4.3) and
//! "every parameter sort of L3 …" (§5.3), with the one-to-one name
//! correspondence of §6. A [`ParamBridge`] makes that identification
//! concrete: it matches, *by name*, the parameter sorts and parameter
//! constants of an algebraic signature against the sorts and carrier
//! elements of a logic-level [`Domains`].

use std::collections::BTreeMap;

use eclectic_algebraic::AlgSignature;
use eclectic_kernel::{Interner, TermId, TermNode};
use eclectic_logic::{Domains, Elem, FuncId, Signature, SortId, Term};

use crate::error::{RefineError, Result};

/// A bidirectional mapping between level-2 parameter names and level-1/3
/// domain elements.
#[derive(Debug, Clone)]
pub struct ParamBridge {
    /// Algebraic parameter sort → logic sort.
    sort_map: BTreeMap<SortId, SortId>,
    /// Algebraic parameter constant → (logic sort, element).
    elem_of_const: BTreeMap<FuncId, (SortId, Elem)>,
    /// (logic sort, element) → algebraic parameter constant.
    const_of_elem: BTreeMap<(SortId, Elem), FuncId>,
}

impl ParamBridge {
    /// Builds a bridge: every parameter sort of `alg` (except `Bool`) must
    /// have a like-named sort in `logic_sig`, and the constants of the sort
    /// must name exactly the elements of the corresponding carrier.
    ///
    /// # Errors
    /// Returns [`RefineError::BridgeMismatch`] describing the first
    /// misalignment.
    pub fn new(alg: &AlgSignature, logic_sig: &Signature, domains: &Domains) -> Result<Self> {
        let mut sort_map = BTreeMap::new();
        let mut elem_of_const = BTreeMap::new();
        let mut const_of_elem = BTreeMap::new();

        for asort in alg.param_sorts() {
            let name = alg.logic().sort_name(asort);
            if name == "Bool" {
                continue;
            }
            let lsort = logic_sig.sort_id(name).map_err(|_| {
                RefineError::BridgeMismatch(format!("sort `{name}` missing at the other level"))
            })?;
            sort_map.insert(asort, lsort);

            let consts = alg.param_names(asort);
            if consts.len() != domains.card(lsort) {
                return Err(RefineError::BridgeMismatch(format!(
                    "sort `{name}` has {} parameter name(s) but carrier size {}",
                    consts.len(),
                    domains.card(lsort)
                )));
            }
            for c in consts {
                let cname = &alg.logic().func(c).name;
                let e = domains.elem_by_name(lsort, cname).ok_or_else(|| {
                    RefineError::BridgeMismatch(format!(
                        "parameter name `{cname}` is not an element of carrier `{name}`"
                    ))
                })?;
                elem_of_const.insert(c, (lsort, e));
                const_of_elem.insert((lsort, e), c);
            }
        }
        Ok(ParamBridge {
            sort_map,
            elem_of_const,
            const_of_elem,
        })
    }

    /// The logic sort corresponding to an algebraic parameter sort.
    ///
    /// # Errors
    /// Returns [`RefineError::BridgeMismatch`] for unmapped sorts.
    pub fn logic_sort(&self, alg_sort: SortId) -> Result<SortId> {
        self.sort_map
            .get(&alg_sort)
            .copied()
            .ok_or_else(|| RefineError::BridgeMismatch("unmapped algebraic sort".into()))
    }

    /// The element denoted by an algebraic parameter constant.
    ///
    /// # Errors
    /// Returns [`RefineError::BridgeMismatch`] for non-parameter constants.
    pub fn elem(&self, constant: FuncId) -> Result<(SortId, Elem)> {
        self.elem_of_const.get(&constant).copied().ok_or_else(|| {
            RefineError::BridgeMismatch("constant is not a bridged parameter name".into())
        })
    }

    /// The element denoted by a ground parameter term (must be a constant).
    ///
    /// # Errors
    /// Returns [`RefineError::BridgeMismatch`] for non-constant terms.
    pub fn elem_of_term(&self, t: &Term) -> Result<(SortId, Elem)> {
        match t {
            Term::App(f, args) if args.is_empty() => self.elem(*f),
            _ => Err(RefineError::BridgeMismatch(
                "parameter term is not a constant".into(),
            )),
        }
    }

    /// The element denoted by an interned ground parameter term (must be a
    /// constant) — the id-based counterpart of [`ParamBridge::elem_of_term`]
    /// used by interned evaluation paths: one node lookup, no tree walk.
    ///
    /// # Errors
    /// Returns [`RefineError::BridgeMismatch`] for non-constant terms.
    pub fn elem_of_id<S: Interner + ?Sized>(&self, store: &S, t: TermId) -> Result<(SortId, Elem)> {
        match store.node(t) {
            TermNode::App(f, args) if args.is_empty() => self.elem(*f),
            _ => Err(RefineError::BridgeMismatch(
                "parameter term is not a constant".into(),
            )),
        }
    }

    /// The algebraic parameter constant naming an element.
    ///
    /// # Errors
    /// Returns [`RefineError::BridgeMismatch`] for unmapped elements.
    pub fn constant(&self, logic_sort: SortId, e: Elem) -> Result<FuncId> {
        self.const_of_elem
            .get(&(logic_sort, e))
            .copied()
            .ok_or_else(|| RefineError::BridgeMismatch("unmapped element".into()))
    }

    /// The constant term naming an element.
    ///
    /// # Errors
    /// See [`ParamBridge::constant`].
    pub fn term_of_elem(&self, logic_sort: SortId, e: Elem) -> Result<Term> {
        Ok(Term::constant(self.constant(logic_sort, e)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alg() -> AlgSignature {
        let mut a = AlgSignature::new().unwrap();
        a.add_param_sort("course", &["db", "ai"]).unwrap();
        a
    }

    fn logic_side(courses: &[&str]) -> (Signature, Domains) {
        let mut sig = Signature::new();
        sig.add_sort("course").unwrap();
        let dom = Domains::from_names(&sig, &[("course", courses)]).unwrap();
        (sig, dom)
    }

    #[test]
    fn aligned_bridge_builds() {
        let a = alg();
        let (sig, dom) = logic_side(&["db", "ai"]);
        let b = ParamBridge::new(&a, &sig, &dom).unwrap();
        let db = a.logic().func_id("db").unwrap();
        let (lsort, e) = b.elem(db).unwrap();
        assert_eq!(e, Elem(0));
        assert_eq!(b.constant(lsort, e).unwrap(), db);
        assert_eq!(
            b.term_of_elem(lsort, Elem(1)).unwrap(),
            Term::constant(a.logic().func_id("ai").unwrap())
        );
        let asort = a.logic().sort_id("course").unwrap();
        assert_eq!(b.logic_sort(asort).unwrap(), lsort);
    }

    #[test]
    fn misaligned_names_rejected() {
        let a = alg();
        let (sig, dom) = logic_side(&["db", "pl"]);
        assert!(matches!(
            ParamBridge::new(&a, &sig, &dom),
            Err(RefineError::BridgeMismatch(_))
        ));
    }

    #[test]
    fn carrier_size_mismatch_rejected() {
        let a = alg();
        let (sig, dom) = logic_side(&["db"]);
        assert!(matches!(
            ParamBridge::new(&a, &sig, &dom),
            Err(RefineError::BridgeMismatch(_))
        ));
    }

    #[test]
    fn missing_sort_rejected() {
        let a = alg();
        let sig = Signature::new();
        let dom = Domains::from_names(&sig, &[]).unwrap();
        assert!(matches!(
            ParamBridge::new(&a, &sig, &dom),
            Err(RefineError::BridgeMismatch(_))
        ));
    }
}
