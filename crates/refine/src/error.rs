//! Error types for the refinement crate.

use std::fmt;

use eclectic_algebraic::AlgError;
use eclectic_logic::LogicError;
use eclectic_rpr::RprError;

/// Errors raised while building interpretations or checking refinements.
#[derive(Debug, Clone, PartialEq)]
pub enum RefineError {
    /// An underlying logic error.
    Logic(LogicError),
    /// An underlying algebraic-specification error.
    Alg(AlgError),
    /// An underlying RPR error.
    Rpr(RprError),
    /// An interpretation could not be built.
    BadInterpretation(String),
    /// The parameter bridge between levels is inconsistent (sort or element
    /// names do not line up).
    BridgeMismatch(String),
    /// A bound was exceeded during verification.
    LimitExceeded(String),
}

impl fmt::Display for RefineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefineError::Logic(e) => write!(f, "{e}"),
            RefineError::Alg(e) => write!(f, "{e}"),
            RefineError::Rpr(e) => write!(f, "{e}"),
            RefineError::BadInterpretation(m) => write!(f, "invalid interpretation: {m}"),
            RefineError::BridgeMismatch(m) => write!(f, "parameter bridge mismatch: {m}"),
            RefineError::LimitExceeded(m) => write!(f, "limit exceeded: {m}"),
        }
    }
}

impl std::error::Error for RefineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RefineError::Logic(e) => Some(e),
            RefineError::Alg(e) => Some(e),
            RefineError::Rpr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LogicError> for RefineError {
    fn from(e: LogicError) -> Self {
        RefineError::Logic(e)
    }
}

impl From<AlgError> for RefineError {
    fn from(e: AlgError) -> Self {
        RefineError::Alg(e)
    }
}

impl From<RprError> for RefineError {
    fn from(e: RprError) -> Self {
        RefineError::Rpr(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, RefineError>;
