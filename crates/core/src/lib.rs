//! # eclectic-spec
//!
//! The tri-level formal database specification framework of Casanova,
//! Veloso & Furtado, "Formal Data Base Specification — An Eclectic
//! Perspective" (PODS 1984) — the paper's primary contribution, assembled
//! from the substrate crates:
//!
//! | Level | Formalism | Crate |
//! |---|---|---|
//! | information | temporal first-order logic | `eclectic-logic` + `eclectic-temporal` |
//! | functions | algebraic specification | `eclectic-algebraic` |
//! | representation | RPR + W-grammar + denotational semantics | `eclectic-rpr` |
//! | refinements | interpretations `I` and `K` | `eclectic-refine` |
//!
//! This crate provides:
//!
//! - [`TriLevelSpec`]: one application specified at all three levels;
//! - [`verify`]: every §4.4/§5.4 obligation, the W-grammar syntax check and
//!   randomized cross-level agreement, in one call;
//! - [`methodology`]: the constructive strategy — one set of structured
//!   descriptions yields both the level-2 equations
//!   ([`eclectic_algebraic::synthesize`]) and the level-3 schema
//!   ([`methodology::derive_schema`]);
//! - [`domains`]: three worked applications (courses, library, bank).
//!
//! # Example
//!
//! ```
//! use eclectic_spec::domains::{courses, CoursesConfig};
//! use eclectic_spec::{verify, VerifyConfig};
//!
//! let spec = courses(&CoursesConfig::default())?;
//! let outcome = verify(&spec, &VerifyConfig::quick())?;
//! assert!(outcome.is_correct(), "{}", outcome.report);
//! # Ok::<(), eclectic_spec::SpecError>(())
//! ```

#![warn(missing_docs)]

pub mod domains;
mod error;
pub mod fuzz;
pub mod methodology;
mod spec;
mod verify;

pub use error::{Result, SpecError};
pub use spec::{CarrierSpec, TriLevelSpec};
pub use verify::{
    dag_shape, force_dag_shape, verify, verify_with_threads, DagShape, DagShapeGuard, StageStats,
    VerificationOutcome, VerifyConfig,
};
