//! One-call verification of a tri-level specification: every refinement
//! obligation of the paper, plus the W-grammar syntax check and randomized
//! cross-formalism testing.

use std::time::Duration;

use eclectic_kernel::{env_threads, Budget, Exhaustion};
use eclectic_refine::{
    check_dynamic_budget, check_equations_budget, check_refinement_1_2_budget,
    check_valid_reachable, cross_check_budget, random_ops, CrossCheckStats, DynamicReport,
    FullReport, InducedAlgebra, Mismatch, Refine12Config, ValidReachableReport,
};
use eclectic_rpr::wgrammar;

use crate::error::Result;
use crate::spec::TriLevelSpec;

/// Bounds and knobs for a verification run.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// Configuration of the 1→2 obligations (exploration depth, policy,
    /// completeness depth).
    pub refine12: Refine12Config,
    /// Trace-length bound for the 2→3 equation check.
    pub eq_depth: usize,
    /// State cap for the 2→3 equation check.
    pub eq_max_states: usize,
    /// Cap on candidate-state enumeration for obligation (c).
    pub candidate_cap: usize,
    /// Number of random traces for the cross-formalism check.
    pub random_traces: usize,
    /// Length of each random trace.
    pub trace_len: usize,
    /// State cap for the dynamic-logic (PDL) obligations over the
    /// representation universe; larger universes are gracefully skipped.
    pub pdl_universe_cap: usize,
    /// Optional wall-clock deadline for the whole run, in milliseconds.
    /// When it passes, the stage in flight stops at its next poll point and
    /// reports a partial result; later stages trip at entry.
    pub deadline_ms: Option<u64>,
    /// Optional cap on interned term-store nodes per governed stage (a
    /// memory budget). Deterministic at every thread count.
    pub max_nodes: Option<usize>,
    /// Print a per-stage elapsed/budget line to stdout as each stage ends.
    pub print_stages: bool,
}

impl VerifyConfig {
    /// Quick bounds suitable for unit tests and small carriers.
    #[must_use]
    pub fn quick() -> Self {
        VerifyConfig {
            refine12: Refine12Config::quick(),
            eq_depth: 3,
            eq_max_states: 2_000,
            candidate_cap: 100_000,
            random_traces: 5,
            trace_len: 12,
            pdl_universe_cap: 1_024,
            deadline_ms: None,
            max_nodes: None,
            print_stages: false,
        }
    }

    /// Thorough bounds for integration tests and experiment regeneration.
    #[must_use]
    pub fn thorough() -> Self {
        VerifyConfig {
            refine12: Refine12Config::thorough(),
            eq_depth: 4,
            eq_max_states: 5_000,
            candidate_cap: 1_000_000,
            random_traces: 20,
            trace_len: 30,
            pdl_universe_cap: 1 << 16,
            deadline_ms: None,
            max_nodes: None,
            print_stages: false,
        }
    }

    /// The resource budget shared by every stage of [`verify`].
    #[must_use]
    pub fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline_ms(ms);
        }
        if let Some(n) = self.max_nodes {
            b = b.with_max_nodes(n);
        }
        b
    }
}

/// Timing and budget record for one stage of [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Stage label (`refine12`, `witness`, `equations`, `dynamic`, `cross`).
    pub name: &'static str,
    /// Wall-clock time spent in the stage, in milliseconds.
    pub elapsed_ms: u64,
    /// Budget exhaustion recorded by the stage, if it was cut short.
    pub exhausted: Option<Exhaustion>,
}

/// The outcome of a full verification run.
#[derive(Debug)]
pub struct VerificationOutcome {
    /// Whether the schema derivation validated against the RPR W-grammar.
    pub grammar_ok: bool,
    /// The grammar error, if any.
    pub grammar_error: Option<String>,
    /// The refinement obligations.
    pub report: FullReport,
    /// First cross-formalism disagreement found by random traces, if any.
    pub cross_mismatch: Option<Mismatch>,
    /// Volume of the cross-formalism testing performed.
    pub cross_stats: CrossCheckStats,
    /// The dynamic-logic (PDL) obligations over the representation
    /// universe, batch-model-checked with a shared denotation cache.
    pub dynamic: DynamicReport,
    /// Per-stage elapsed time and budget exhaustion, in execution order.
    pub stages: Vec<StageStats>,
}

impl VerificationOutcome {
    /// Whether everything holds. A budget-exhausted (partial) run never
    /// claims correctness: only a completed battery counts.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.grammar_ok
            && self.report.is_correct()
            && self.cross_mismatch.is_none()
            && self.dynamic.is_correct()
            && self.exhausted().is_none()
    }

    /// The first budget exhaustion recorded by any stage, if the run was
    /// cut short.
    #[must_use]
    pub fn exhausted(&self) -> Option<&Exhaustion> {
        self.stages.iter().find_map(|s| s.exhausted.as_ref())
    }
}

/// Closes the current stage: records elapsed time since `start`, advances
/// `start`, and optionally prints the per-stage line.
fn record_stage(
    print: bool,
    budget: &Budget,
    stages: &mut Vec<StageStats>,
    start: &mut Duration,
    name: &'static str,
    exhausted: Option<Exhaustion>,
) {
    let now = budget.elapsed();
    let elapsed_ms = u64::try_from(now.saturating_sub(*start).as_millis()).unwrap_or(u64::MAX);
    *start = now;
    if print {
        match &exhausted {
            Some(e) => println!("  stage {name:<9} {elapsed_ms:>6} ms  {e}"),
            None => println!("  stage {name:<9} {elapsed_ms:>6} ms"),
        }
    }
    stages.push(StageStats {
        name,
        elapsed_ms,
        exhausted,
    });
}

/// Runs the whole battery against a specification.
///
/// # Errors
/// Propagates evaluation errors (bounded-verification *failures* are
/// reported in the outcome, not as errors).
pub fn verify(spec: &TriLevelSpec, config: &VerifyConfig) -> Result<VerificationOutcome> {
    spec.check_shape()?;

    // One budget, shared by every stage: the deadline and cancellation axes
    // persist across stages, while the node cap governs each stage's own
    // term store.
    let budget = config.budget();
    let threads = env_threads();
    let mut stages = Vec::new();
    let mut stage_start = budget.elapsed();

    // Syntactic correctness under the W-grammar (paper §5.4 step 1).
    let (grammar_ok, grammar_error) = match wgrammar::check_schema(&spec.representation) {
        Ok(_) => (true, None),
        Err(e) => (false, Some(e.to_string())),
    };

    // 1→2 obligations (a), (b), (d).
    let refine12 = check_refinement_1_2_budget(
        &spec.information,
        &spec.functions,
        &spec.interp_i,
        spec.info_signature(),
        &spec.info_domains,
        config.refine12,
        &budget,
    )?;
    record_stage(
        config.print_stages,
        &budget,
        &mut stages,
        &mut stage_start,
        "refine12",
        refine12.exhausted().cloned(),
    );

    // Obligation (c). Candidate enumeration is meaningless over a partial
    // universe, so an exhausted exploration skips it (inconclusively).
    let valid_reachable = if refine12.exploration.exhausted.is_some() {
        ValidReachableReport {
            candidates: 0,
            valid: 0,
            reachable_valid: 0,
            unreachable: Vec::new(),
            exploration_truncated: true,
        }
    } else {
        check_valid_reachable(
            &spec.information,
            &refine12.exploration,
            config.candidate_cap,
        )?
    };
    record_stage(
        config.print_stages,
        &budget,
        &mut stages,
        &mut stage_start,
        "witness",
        None,
    );

    // 2→3 equation validity in the induced algebra.
    let mut induced = InducedAlgebra::new(
        &spec.functions,
        &spec.representation,
        &spec.interp_k,
        spec.empty_state(),
    )?;
    let equations = check_equations_budget(
        &mut induced,
        config.eq_depth,
        config.eq_max_states,
        20,
        &budget,
    )?;
    record_stage(
        config.print_stages,
        &budget,
        &mut stages,
        &mut stage_start,
        "equations",
        equations.exhausted.clone(),
    );

    // §5.1.2/§5.3 dynamic-logic obligations over the representation
    // universe (batched PDL model checking with one denotation cache).
    let dynamic = check_dynamic_budget(
        &spec.representation,
        &spec.empty_state(),
        config.pdl_universe_cap,
        &budget,
        threads,
    )?;
    record_stage(
        config.print_stages,
        &budget,
        &mut stages,
        &mut stage_start,
        "dynamic",
        dynamic.exhausted.clone(),
    );

    // Randomised cross-formalism testing.
    let initial_name = initial_update_name(spec)?;
    let mut rng_state: u64 = 0x5eed_1234_abcd_0001;
    let mut choose = move |n: usize| {
        // xorshift64*.
        rng_state ^= rng_state >> 12;
        rng_state ^= rng_state << 25;
        rng_state ^= rng_state >> 27;
        (rng_state.wrapping_mul(0x2545_f491_4f6c_dd1d) % n.max(1) as u64) as usize
    };
    let mut cross_mismatch = None;
    let mut cross_stats = CrossCheckStats::default();
    let mut cross_exhausted = None;
    for _ in 0..config.random_traces {
        let ops = random_ops(
            &spec.functions,
            &induced,
            &initial_name,
            config.trace_len,
            &mut choose,
        )?;
        let (mismatch, stats, exhausted) =
            cross_check_budget(&spec.functions, &mut induced, &ops, &budget, threads)?;
        cross_stats.ops += stats.ops;
        cross_stats.comparisons += stats.comparisons;
        if mismatch.is_some() {
            cross_mismatch = mismatch;
            break;
        }
        if exhausted.is_some() {
            cross_exhausted = exhausted;
            break;
        }
    }
    record_stage(
        config.print_stages,
        &budget,
        &mut stages,
        &mut stage_start,
        "cross",
        cross_exhausted,
    );

    Ok(VerificationOutcome {
        grammar_ok,
        grammar_error,
        report: FullReport {
            refine12,
            valid_reachable,
            equations,
        },
        cross_mismatch,
        cross_stats,
        dynamic,
        stages,
    })
}

/// The name of the specification's initial update constant.
fn initial_update_name(spec: &TriLevelSpec) -> Result<String> {
    let alg = spec.functions.signature();
    for u in alg.updates() {
        if !alg.update_takes_state(u).map_err(crate::error::SpecError::Alg)? {
            return Ok(alg.logic().func(u).name.clone());
        }
    }
    Err(crate::error::SpecError::Incomplete(
        "no initial state constant".into(),
    ))
}
