//! One-call verification of a tri-level specification: every refinement
//! obligation of the paper, plus the W-grammar syntax check and randomized
//! cross-formalism testing.
//!
//! When more than one thread is configured, the battery runs as a task DAG
//! on the shared [`eclectic_kernel::sched`] pool, in one of two shapes
//! (see [`DagShape`]):
//!
//! - **Fine** (the default): every proof obligation is its own pool task
//!   at obligation granularity — termination, the completeness sweep, the
//!   universe exploration, the axiom sweep, witness enumeration, the
//!   equation check, per-procedure dynamic obligations and the cross
//!   check — with completion-count edges (`explore → {axioms, witness}`,
//!   `equations → cross`) so each task unblocks the moment its inputs
//!   exist. Latency-critical tasks run at [`Priority::High`]; wide grid
//!   sweeps at [`Priority::Bulk`] so they cannot starve the critical path.
//! - **Chain**: the three coarse chains `{refine12 → witness}`,
//!   `{equations → cross}` and `{dynamic}` as single tasks — the A/B
//!   baseline for `bench_sched` and differential fuzzing.
//!
//! Both shapes compute exactly what the serial battery computes — every
//! governed sweep owns its term store and polls deterministic budget axes
//! at serial slot indices — so reports are bit-identical across shapes and
//! worker counts; the reported stage order stays canonical.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use eclectic_algebraic::{completeness, termination};
use eclectic_kernel::{env_threads, run_tasks, run_tasks_prio, Budget, DagBuilder, Exhaustion, Priority};
use eclectic_refine::{
    check_dynamic_budget, check_equations_budget, check_refinement_1_2_budget,
    check_valid_reachable,
    cross_check_budget, obligation_axioms, obligation_completeness, obligation_exploration,
    obligation_termination, plan_dynamic, random_ops, AlgebraicExploration, CrossCheckStats,
    DynamicPrep, DynamicReport, DynamicUnitOutcome, EquationCheckReport, FullReport,
    InducedAlgebra, Mismatch, Refine12Config, Refine12Report, StateViolation,
    ValidReachableReport,
};
use eclectic_rpr::wgrammar;

use crate::error::Result;
use crate::spec::TriLevelSpec;

/// Bounds and knobs for a verification run.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// Configuration of the 1→2 obligations (exploration depth, policy,
    /// completeness depth).
    pub refine12: Refine12Config,
    /// Trace-length bound for the 2→3 equation check.
    pub eq_depth: usize,
    /// State cap for the 2→3 equation check.
    pub eq_max_states: usize,
    /// Cap on candidate-state enumeration for obligation (c).
    pub candidate_cap: usize,
    /// Number of random traces for the cross-formalism check.
    pub random_traces: usize,
    /// Length of each random trace.
    pub trace_len: usize,
    /// State cap for the dynamic-logic (PDL) obligations over the
    /// representation universe; larger universes are gracefully skipped.
    pub pdl_universe_cap: usize,
    /// Optional wall-clock deadline for the whole run, in milliseconds.
    /// When it passes, the stage in flight stops at its next poll point and
    /// reports a partial result; later stages trip at entry.
    pub deadline_ms: Option<u64>,
    /// Optional cap on interned term-store nodes per governed stage (a
    /// memory budget). Deterministic at every thread count.
    pub max_nodes: Option<usize>,
    /// Print a per-stage elapsed/budget line to stdout as each stage ends.
    pub print_stages: bool,
}

impl VerifyConfig {
    /// Quick bounds suitable for unit tests and small carriers.
    #[must_use]
    pub fn quick() -> Self {
        VerifyConfig {
            refine12: Refine12Config::quick(),
            eq_depth: 3,
            eq_max_states: 2_000,
            candidate_cap: 100_000,
            random_traces: 5,
            trace_len: 12,
            pdl_universe_cap: 1_024,
            deadline_ms: None,
            max_nodes: None,
            print_stages: false,
        }
    }

    /// Thorough bounds for integration tests and experiment regeneration.
    #[must_use]
    pub fn thorough() -> Self {
        VerifyConfig {
            refine12: Refine12Config::thorough(),
            eq_depth: 4,
            eq_max_states: 5_000,
            candidate_cap: 1_000_000,
            random_traces: 20,
            trace_len: 30,
            pdl_universe_cap: 1 << 16,
            deadline_ms: None,
            max_nodes: None,
            print_stages: false,
        }
    }

    /// The resource budget shared by every stage of [`verify`].
    #[must_use]
    pub fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline_ms(ms);
        }
        if let Some(n) = self.max_nodes {
            b = b.with_max_nodes(n);
        }
        b
    }
}

/// Timing and budget record for one stage of [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Stage label (`refine12`, `witness`, `equations`, `dynamic`, `cross`).
    pub name: &'static str,
    /// Wall-clock time spent in the stage, in milliseconds.
    pub elapsed_ms: u64,
    /// Budget exhaustion recorded by the stage, if it was cut short.
    pub exhausted: Option<Exhaustion>,
}

/// The outcome of a full verification run.
#[derive(Debug)]
pub struct VerificationOutcome {
    /// Whether the schema derivation validated against the RPR W-grammar.
    pub grammar_ok: bool,
    /// The grammar error, if any.
    pub grammar_error: Option<String>,
    /// The refinement obligations.
    pub report: FullReport,
    /// First cross-formalism disagreement found by random traces, if any.
    pub cross_mismatch: Option<Mismatch>,
    /// Volume of the cross-formalism testing performed.
    pub cross_stats: CrossCheckStats,
    /// The dynamic-logic (PDL) obligations over the representation
    /// universe, batch-model-checked with a shared denotation cache.
    pub dynamic: DynamicReport,
    /// Per-stage elapsed time and budget exhaustion, in canonical order
    /// (`refine12`, `witness`, `equations`, `dynamic`, `cross`).
    pub stages: Vec<StageStats>,
}

impl VerificationOutcome {
    /// Whether everything holds. A budget-exhausted (partial) run never
    /// claims correctness: only a completed battery counts.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.grammar_ok
            && self.report.is_correct()
            && self.cross_mismatch.is_none()
            && self.dynamic.is_correct()
            && self.exhausted().is_none()
    }

    /// The first budget exhaustion recorded by any stage, if the run was
    /// cut short.
    #[must_use]
    pub fn exhausted(&self) -> Option<&Exhaustion> {
        self.stages.iter().find_map(|s| s.exhausted.as_ref())
    }
}

/// Closes the current stage: records elapsed time since `start`, advances
/// `start`, and optionally prints the per-stage line.
fn record_stage(
    print: bool,
    budget: &Budget,
    stages: &mut Vec<StageStats>,
    start: &mut Duration,
    name: &'static str,
    exhausted: Option<Exhaustion>,
) {
    let now = budget.elapsed();
    let elapsed_ms = u64::try_from(now.saturating_sub(*start).as_millis()).unwrap_or(u64::MAX);
    *start = now;
    let stats = StageStats {
        name,
        elapsed_ms,
        exhausted,
    };
    if print {
        print_stage_line(&stats);
    }
    stages.push(stats);
}

/// Prints one `  stage <name> <ms>` line (the `print_stages` format).
fn print_stage_line(s: &StageStats) {
    let StageStats {
        name,
        elapsed_ms,
        exhausted,
    } = s;
    match exhausted {
        Some(e) => println!("  stage {name:<9} {elapsed_ms:>6} ms  {e}"),
        None => println!("  stage {name:<9} {elapsed_ms:>6} ms"),
    }
}

/// Everything [`verify`] computes after the grammar check, in one bundle:
/// the refinement report, the PDL report, the cross-check result and the
/// per-stage records in canonical order.
type VerifyBody = (
    FullReport,
    DynamicReport,
    Option<Mismatch>,
    CrossCheckStats,
    Vec<StageStats>,
);

/// Which task decomposition the staged battery (`threads > 1`) uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DagShape {
    /// Obligation-granularity tasks with completion-count unblock edges —
    /// the default.
    Fine,
    /// The three coarse chains `{refine12 → witness}`, `{equations →
    /// cross}`, `{dynamic}` as single tasks — the A/B baseline.
    Chain,
}

/// Process-global shape override: 0 = none, 1 = fine, 2 = chain.
static SHAPE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes holders of [`force_dag_shape`] guards.
static SHAPE_LOCK: Mutex<()> = Mutex::new(());

/// RAII guard for a forced battery shape; restores the default on drop.
/// Holding it excludes every other forced-shape section in the process.
pub struct DagShapeGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for DagShapeGuard {
    fn drop(&mut self) {
        SHAPE_OVERRIDE.store(0, Ordering::SeqCst);
    }
}

/// Forces the staged battery's [`DagShape`] for the lifetime of the
/// returned guard. Intended for tests, benches and the differential fuzzer,
/// which A/B the two decompositions in one process.
#[must_use]
pub fn force_dag_shape(shape: DagShape) -> DagShapeGuard {
    let lock = SHAPE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let code = match shape {
        DagShape::Fine => 1,
        DagShape::Chain => 2,
    };
    SHAPE_OVERRIDE.store(code, Ordering::SeqCst);
    DagShapeGuard { _lock: lock }
}

/// The battery shape in effect: a [`force_dag_shape`] override wins,
/// otherwise [`DagShape::Fine`].
#[must_use]
pub fn dag_shape() -> DagShape {
    match SHAPE_OVERRIDE.load(Ordering::SeqCst) {
        2 => DagShape::Chain,
        _ => DagShape::Fine,
    }
}

/// Runs the whole battery against a specification.
///
/// # Errors
/// Propagates evaluation errors (bounded-verification *failures* are
/// reported in the outcome, not as errors).
pub fn verify(spec: &TriLevelSpec, config: &VerifyConfig) -> Result<VerificationOutcome> {
    verify_with_threads(spec, config, env_threads())
}

/// As [`verify`], but with an explicit worker count instead of the
/// `ECLECTIC_THREADS` environment axis — the entry point for harnesses
/// (differential fuzzing, scheduler benchmarks) that sweep thread counts
/// within one process without touching the environment.
///
/// # Errors
/// See [`verify`].
pub fn verify_with_threads(
    spec: &TriLevelSpec,
    config: &VerifyConfig,
    threads: usize,
) -> Result<VerificationOutcome> {
    spec.check_shape()?;

    // One budget, shared by every stage: the deadline and cancellation axes
    // persist across stages, while the node cap governs each stage's own
    // term store.
    let budget = config.budget();
    let threads = threads.max(1);

    // Syntactic correctness under the W-grammar (paper §5.4 step 1).
    let (grammar_ok, grammar_error) = match wgrammar::check_schema(&spec.representation) {
        Ok(_) => (true, None),
        Err(e) => (false, Some(e.to_string())),
    };

    let (report, dynamic, cross_mismatch, cross_stats, stages) = if threads > 1 {
        match dag_shape() {
            DagShape::Fine => verify_staged_fine(spec, config, &budget, threads)?,
            DagShape::Chain => verify_staged(spec, config, &budget, threads)?,
        }
    } else {
        verify_serial(spec, config, &budget, threads)?
    };

    Ok(VerificationOutcome {
        grammar_ok,
        grammar_error,
        report,
        cross_mismatch,
        cross_stats,
        dynamic,
        stages,
    })
}

/// 1→2 obligations (a), (b), (d).
fn stage_refine12(
    spec: &TriLevelSpec,
    config: &VerifyConfig,
    budget: &Budget,
) -> Result<Refine12Report> {
    Ok(check_refinement_1_2_budget(
        &spec.information,
        &spec.functions,
        &spec.interp_i,
        spec.info_signature(),
        &spec.info_domains,
        config.refine12,
        budget,
    )?)
}

/// Obligation (c). Candidate enumeration is meaningless over a partial
/// universe, so an exhausted exploration skips it (inconclusively).
fn stage_witness(
    spec: &TriLevelSpec,
    refine12: &Refine12Report,
    config: &VerifyConfig,
) -> Result<ValidReachableReport> {
    stage_witness_from(spec, &refine12.exploration, config)
}

/// [`stage_witness`] against the bare exploration — what the obligation
/// DAG's witness task actually needs, so its unblock edge is `explore →
/// witness` rather than the whole refine12 chain.
fn stage_witness_from(
    spec: &TriLevelSpec,
    exploration: &AlgebraicExploration,
    config: &VerifyConfig,
) -> Result<ValidReachableReport> {
    if exploration.exhausted.is_some() {
        Ok(ValidReachableReport {
            candidates: 0,
            valid: 0,
            reachable_valid: 0,
            unreachable: Vec::new(),
            exploration_truncated: true,
        })
    } else {
        Ok(check_valid_reachable(
            &spec.information,
            exploration,
            config.candidate_cap,
        )?)
    }
}

/// The algebra induced by interpretation `K` over the representation level,
/// shared by the `equations` and `cross` stages.
fn make_induced(spec: &TriLevelSpec) -> Result<InducedAlgebra<'_>> {
    Ok(InducedAlgebra::new(
        &spec.functions,
        &spec.representation,
        &spec.interp_k,
        spec.empty_state(),
    )?)
}

/// 2→3 equation validity in the induced algebra.
fn stage_equations(
    induced: &mut InducedAlgebra<'_>,
    config: &VerifyConfig,
    budget: &Budget,
) -> Result<EquationCheckReport> {
    Ok(check_equations_budget(
        induced,
        config.eq_depth,
        config.eq_max_states,
        20,
        budget,
    )?)
}

/// §5.1.2/§5.3 dynamic-logic obligations over the representation universe
/// (batched PDL model checking with one denotation cache).
fn stage_dynamic(
    spec: &TriLevelSpec,
    config: &VerifyConfig,
    budget: &Budget,
    threads: usize,
) -> Result<DynamicReport> {
    Ok(check_dynamic_budget(
        &spec.representation,
        &spec.empty_state(),
        config.pdl_universe_cap,
        budget,
        threads,
    )?)
}

/// Randomised cross-formalism testing with a deterministic xorshift64*
/// trace generator.
fn stage_cross(
    spec: &TriLevelSpec,
    induced: &mut InducedAlgebra<'_>,
    config: &VerifyConfig,
    budget: &Budget,
    threads: usize,
) -> Result<(Option<Mismatch>, CrossCheckStats, Option<Exhaustion>)> {
    let initial_name = initial_update_name(spec)?;
    let mut rng_state: u64 = 0x5eed_1234_abcd_0001;
    let mut choose = move |n: usize| {
        // xorshift64*.
        rng_state ^= rng_state >> 12;
        rng_state ^= rng_state << 25;
        rng_state ^= rng_state >> 27;
        (rng_state.wrapping_mul(0x2545_f491_4f6c_dd1d) % n.max(1) as u64) as usize
    };
    let mut cross_mismatch = None;
    let mut cross_stats = CrossCheckStats::default();
    let mut cross_exhausted = None;
    for _ in 0..config.random_traces {
        let ops = random_ops(
            &spec.functions,
            induced,
            &initial_name,
            config.trace_len,
            &mut choose,
        )?;
        let (mismatch, stats, exhausted) =
            cross_check_budget(&spec.functions, induced, &ops, budget, threads)?;
        cross_stats.ops += stats.ops;
        cross_stats.comparisons += stats.comparisons;
        if mismatch.is_some() {
            cross_mismatch = mismatch;
            break;
        }
        if exhausted.is_some() {
            cross_exhausted = exhausted;
            break;
        }
    }
    Ok((cross_mismatch, cross_stats, cross_exhausted))
}

/// The sequential battery: one stage after another in canonical order, with
/// per-stage lines printed as each stage closes.
fn verify_serial(
    spec: &TriLevelSpec,
    config: &VerifyConfig,
    budget: &Budget,
    threads: usize,
) -> Result<VerifyBody> {
    let mut stages = Vec::new();
    let mut stage_start = budget.elapsed();

    let refine12 = stage_refine12(spec, config, budget)?;
    record_stage(
        config.print_stages,
        budget,
        &mut stages,
        &mut stage_start,
        "refine12",
        refine12.exhausted().cloned(),
    );

    let valid_reachable = stage_witness(spec, &refine12, config)?;
    record_stage(
        config.print_stages,
        budget,
        &mut stages,
        &mut stage_start,
        "witness",
        None,
    );

    let mut induced = make_induced(spec)?;
    let equations = stage_equations(&mut induced, config, budget)?;
    record_stage(
        config.print_stages,
        budget,
        &mut stages,
        &mut stage_start,
        "equations",
        equations.exhausted.clone(),
    );

    let dynamic = stage_dynamic(spec, config, budget, threads)?;
    record_stage(
        config.print_stages,
        budget,
        &mut stages,
        &mut stage_start,
        "dynamic",
        dynamic.exhausted.clone(),
    );

    let (cross_mismatch, cross_stats, cross_exhausted) =
        stage_cross(spec, &mut induced, config, budget, threads)?;
    record_stage(
        config.print_stages,
        budget,
        &mut stages,
        &mut stage_start,
        "cross",
        cross_exhausted,
    );

    Ok((
        FullReport {
            refine12,
            valid_reachable,
            equations,
        },
        dynamic,
        cross_mismatch,
        cross_stats,
        stages,
    ))
}

/// Result of the `refine12 → witness` chain.
type ChainAOut = Result<(Refine12Report, ValidReachableReport, Vec<StageStats>)>;
/// Result of the `equations → cross` chain (they share the induced algebra).
type ChainBOut = Result<(
    EquationCheckReport,
    Option<Mismatch>,
    CrossCheckStats,
    Vec<StageStats>,
)>;
/// Result of the independent `dynamic` chain.
type ChainCOut = Result<(DynamicReport, StageStats)>;

/// Per-chain results of the staged battery. Each chain carries its own
/// stage records, timed against the shared budget clock from the moment the
/// chain starts running.
enum ChainOut {
    A(Box<ChainAOut>),
    B(Box<ChainBOut>),
    C(Box<ChainCOut>),
}

/// The staged battery: the three independent chains run concurrently as
/// tasks on the shared scheduler pool; their inner sweeps enqueue work on
/// the same pool, so idle chain workers steal sweep items from busy ones.
///
/// Every stage computes exactly what it computes serially — the chains
/// share no mutable state (each governed stage owns its term store, and the
/// node-cap axis is checked per store), so reports are bit-identical to the
/// serial schedule. Only wall-clock-dependent behaviour (deadline trips,
/// `elapsed_ms`) is schedule-sensitive, exactly as at any other worker
/// count. When several chains fail hard, the error surfaced follows the
/// fixed chain priority A, B, C.
fn verify_staged(
    spec: &TriLevelSpec,
    config: &VerifyConfig,
    budget: &Budget,
    threads: usize,
) -> Result<VerifyBody> {
    let chain_a = || {
        let mut stages = Vec::new();
        let mut start = budget.elapsed();
        let refine12 = stage_refine12(spec, config, budget)?;
        let exhausted = refine12.exhausted().cloned();
        record_stage(false, budget, &mut stages, &mut start, "refine12", exhausted);
        let valid_reachable = stage_witness(spec, &refine12, config)?;
        record_stage(false, budget, &mut stages, &mut start, "witness", None);
        Ok((refine12, valid_reachable, stages))
    };
    let chain_b = || {
        let mut stages = Vec::new();
        let mut start = budget.elapsed();
        let mut induced = make_induced(spec)?;
        let equations = stage_equations(&mut induced, config, budget)?;
        let exhausted = equations.exhausted.clone();
        record_stage(false, budget, &mut stages, &mut start, "equations", exhausted);
        let (cross_mismatch, cross_stats, cross_exhausted) =
            stage_cross(spec, &mut induced, config, budget, threads)?;
        record_stage(false, budget, &mut stages, &mut start, "cross", cross_exhausted);
        Ok((equations, cross_mismatch, cross_stats, stages))
    };
    let chain_c = || {
        let mut stages = Vec::new();
        let mut start = budget.elapsed();
        let dynamic = stage_dynamic(spec, config, budget, threads)?;
        let exhausted = dynamic.exhausted.clone();
        record_stage(false, budget, &mut stages, &mut start, "dynamic", exhausted);
        let stage = stages.pop().expect("dynamic stage recorded");
        Ok((dynamic, stage))
    };

    let tasks: Vec<Box<dyn FnOnce() -> ChainOut + Send + '_>> = vec![
        Box::new(|| ChainOut::A(Box::new(chain_a()))),
        Box::new(|| ChainOut::B(Box::new(chain_b()))),
        Box::new(|| ChainOut::C(Box::new(chain_c()))),
    ];
    let (mut a, mut b, mut c) = (None, None, None);
    for out in run_tasks(threads.min(3), tasks) {
        match out {
            ChainOut::A(r) => a = Some(r),
            ChainOut::B(r) => b = Some(r),
            ChainOut::C(r) => c = Some(r),
        }
    }
    let (refine12, valid_reachable, stages_a) = (*a.expect("chain A ran"))?;
    let (equations, cross_mismatch, cross_stats, stages_b) = (*b.expect("chain B ran"))?;
    let (dynamic, dynamic_stage) = (*c.expect("chain C ran"))?;

    // Reassemble the canonical stage order: refine12, witness, equations,
    // dynamic, cross.
    let mut stages = Vec::with_capacity(5);
    stages.extend(stages_a);
    let mut chain_b_stages = stages_b.into_iter();
    stages.push(chain_b_stages.next().expect("equations stage recorded"));
    stages.push(dynamic_stage);
    stages.extend(chain_b_stages);
    if config.print_stages {
        for s in &stages {
            print_stage_line(s);
        }
    }

    Ok((
        FullReport {
            refine12,
            valid_reachable,
            equations,
        },
        dynamic,
        cross_mismatch,
        cross_stats,
        stages,
    ))
}

/// Milliseconds elapsed on the shared budget clock since `start`.
fn span_ms(budget: &Budget, start: Duration) -> u64 {
    u64::try_from(budget.elapsed().saturating_sub(start).as_millis()).unwrap_or(u64::MAX)
}

/// The obligation-granularity battery: every proof obligation is its own
/// pool task, wired with completion-count edges so a task unblocks the
/// moment its actual inputs exist:
///
/// ```text
///   term (High)      compl (Bulk)      explore (High)      equations (High)      dynamic (Bulk)
///                                        /        \              |
///                                axioms (Bulk)  witness (High)  cross (High)
/// ```
///
/// In particular `witness` depends on `explore` *only* — it starts while
/// the axiom sweep is still grinding, where the chain shape held it behind
/// the whole refine12 chain. Bulk tasks (wide grid sweeps, and the
/// per-procedure dynamic units spawned inside the `dynamic` task) drain
/// after High ones under the priority-aware injector, keeping the
/// latency-critical `explore → witness` and `equations → cross` paths
/// short.
///
/// Nodes communicate through caller-frame slots; the dependency edges are
/// the happens-before each read needs, and the DAG barrier covers the
/// assembly reads. Every obligation computes exactly its serial result, so
/// the assembled reports are bit-identical to [`verify_serial`] and
/// [`verify_staged`]; errors surface in canonical serial order.
#[allow(clippy::too_many_lines)]
fn verify_staged_fine(
    spec: &TriLevelSpec,
    config: &VerifyConfig,
    budget: &Budget,
    threads: usize,
) -> Result<VerifyBody> {
    use std::sync::Arc;
    type RR<T> = std::result::Result<T, eclectic_refine::RefineError>;

    type Timed<T> = Option<(T, u64)>;
    let term_slot: Mutex<Timed<RR<termination::TerminationReport>>> = Mutex::new(None);
    let compl_slot: Mutex<Timed<RR<completeness::CompletenessReport>>> = Mutex::new(None);
    let explore_slot: Mutex<Timed<RR<Arc<AlgebraicExploration>>>> = Mutex::new(None);
    type Violations = (Vec<StateViolation>, Vec<StateViolation>);
    let axioms_slot: Mutex<Timed<Option<RR<Violations>>>> = Mutex::new(None);
    let witness_slot: Mutex<Timed<Option<Result<ValidReachableReport>>>> = Mutex::new(None);
    let equations_slot: Mutex<Timed<Result<EquationCheckReport>>> = Mutex::new(None);
    let induced_slot: Mutex<Option<InducedAlgebra<'_>>> = Mutex::new(None);
    type CrossOut = (Option<Mismatch>, CrossCheckStats, Option<Exhaustion>);
    let cross_slot: Mutex<Timed<Option<Result<CrossOut>>>> = Mutex::new(None);
    let dynamic_slot: Mutex<Timed<Result<DynamicReport>>> = Mutex::new(None);

    // A successfully explored universe, cloned out of the slot by each
    // downstream task (cheap: it is behind an `Arc`).
    let explored = || -> Option<Arc<AlgebraicExploration>> {
        match explore_slot.lock().unwrap().as_ref() {
            Some((Ok(e), _)) => Some(e.clone()),
            _ => None,
        }
    };

    let mut dag: DagBuilder<'_, ()> = DagBuilder::new();
    dag.spawn(Priority::High, || {
        let t0 = budget.elapsed();
        let r = obligation_termination(&spec.functions);
        *term_slot.lock().unwrap() = Some((r, span_ms(budget, t0)));
    });
    dag.spawn(Priority::Bulk, || {
        let t0 = budget.elapsed();
        let r = obligation_completeness(
            &spec.functions,
            config.refine12.completeness_depth,
            budget,
            threads,
        );
        *compl_slot.lock().unwrap() = Some((r, span_ms(budget, t0)));
    });
    let explore = dag.spawn(Priority::High, || {
        let t0 = budget.elapsed();
        let r = obligation_exploration(
            &spec.functions,
            &spec.interp_i,
            spec.info_signature(),
            &spec.info_domains,
            config.refine12.limits,
            budget,
            threads,
        );
        *explore_slot.lock().unwrap() = Some((r.map(Arc::new), span_ms(budget, t0)));
    });
    dag.spawn_dependent(Priority::Bulk, &[explore], || {
        let t0 = budget.elapsed();
        let r = explored().map(|e| {
            obligation_axioms(&spec.information, &spec.functions, config.refine12.policy, &e)
        });
        *axioms_slot.lock().unwrap() = Some((r, span_ms(budget, t0)));
    });
    dag.spawn_dependent(Priority::High, &[explore], || {
        let t0 = budget.elapsed();
        let r = explored().map(|e| stage_witness_from(spec, &e, config));
        *witness_slot.lock().unwrap() = Some((r, span_ms(budget, t0)));
    });
    let equations = dag.spawn(Priority::High, || {
        let t0 = budget.elapsed();
        let r = (|| {
            let mut induced = make_induced(spec)?;
            let eqs = stage_equations(&mut induced, config, budget)?;
            *induced_slot.lock().unwrap() = Some(induced);
            Ok(eqs)
        })();
        *equations_slot.lock().unwrap() = Some((r, span_ms(budget, t0)));
    });
    dag.spawn_dependent(Priority::High, &[equations], || {
        let t0 = budget.elapsed();
        let taken = induced_slot.lock().unwrap().take();
        let r = taken.map(|mut induced| stage_cross(spec, &mut induced, config, budget, threads));
        *cross_slot.lock().unwrap() = Some((r, span_ms(budget, t0)));
    });
    dag.spawn(Priority::Bulk, || {
        let t0 = budget.elapsed();
        let r = (|| {
            let template = spec.empty_state();
            match plan_dynamic(&spec.representation, &template, config.pdl_universe_cap, budget)? {
                DynamicPrep::Done(report) => Ok(report),
                DynamicPrep::Plan(plan) => {
                    let n = plan.procs();
                    if n == 0 {
                        return Ok(plan.merge(Vec::new(), budget));
                    }
                    // Per-procedure obligation units as Bulk pool tasks;
                    // each owns its denotation cache and processes its
                    // contiguous slot range in serial order, so the merge
                    // replays the exact serial verdicts.
                    let plan_ref = &plan;
                    let units: Vec<Box<dyn FnOnce() -> RR<DynamicUnitOutcome> + Send + '_>> =
                        (0..n)
                            .map(|i| {
                                Box::new(move || plan_ref.run_proc(i, budget, 1))
                                    as Box<dyn FnOnce() -> _ + Send + '_>
                            })
                            .collect();
                    let outcomes = run_tasks_prio(threads.min(n), Priority::Bulk, units)
                        .into_iter()
                        .collect::<RR<Vec<_>>>()?;
                    Ok(plan.merge(outcomes, budget))
                }
            }
        })();
        *dynamic_slot.lock().unwrap() = Some((r, span_ms(budget, t0)));
    });
    let _: Vec<()> = dag.run(threads);

    // Assemble in canonical serial order, so the error surfaced (and the
    // partial-report semantics) match `verify_serial` exactly: termination,
    // completeness, exploration, axioms, witness, equations, dynamic,
    // cross.
    let (term_r, term_ms) = term_slot.into_inner().unwrap().expect("termination task ran");
    let termination = term_r?;
    let (compl_r, compl_ms) = compl_slot.into_inner().unwrap().expect("completeness task ran");
    let completeness = compl_r?;
    let (explore_r, explore_ms) = explore_slot.into_inner().unwrap().expect("exploration task ran");
    let exploration_arc = explore_r?;
    let (axioms_r, axioms_ms) = axioms_slot.into_inner().unwrap().expect("axioms task ran");
    let (static_violations, transition_violations) =
        axioms_r.expect("axioms ran after successful exploration")?;
    let (witness_r, witness_ms) = witness_slot.into_inner().unwrap().expect("witness task ran");
    let valid_reachable = witness_r.expect("witness ran after successful exploration")?;
    let (equations_r, equations_ms) = equations_slot.into_inner().unwrap().expect("equations task ran");
    let equations = equations_r?;
    let (dynamic_r, dynamic_ms) = dynamic_slot.into_inner().unwrap().expect("dynamic task ran");
    let dynamic = dynamic_r?;
    let (cross_r, cross_ms) = cross_slot.into_inner().unwrap().expect("cross task ran");
    let (cross_mismatch, cross_stats, cross_exhausted) =
        cross_r.expect("cross ran after successful equations")?;

    // Every other `Arc` clone died with its task; a failed unwrap can only
    // mean a leaked clone, so fall back to a deep clone rather than panic.
    let exploration =
        Arc::try_unwrap(exploration_arc).unwrap_or_else(|a| a.as_ref().clone());
    let refine12 = Refine12Report {
        termination,
        completeness,
        static_violations,
        transition_violations,
        exploration,
    };

    let refine12_ms = term_ms
        .saturating_add(compl_ms)
        .saturating_add(explore_ms)
        .saturating_add(axioms_ms);
    let stages = vec![
        StageStats {
            name: "refine12",
            elapsed_ms: refine12_ms,
            exhausted: refine12.exhausted().cloned(),
        },
        StageStats {
            name: "witness",
            elapsed_ms: witness_ms,
            exhausted: None,
        },
        StageStats {
            name: "equations",
            elapsed_ms: equations_ms,
            exhausted: equations.exhausted.clone(),
        },
        StageStats {
            name: "dynamic",
            elapsed_ms: dynamic_ms,
            exhausted: dynamic.exhausted.clone(),
        },
        StageStats {
            name: "cross",
            elapsed_ms: cross_ms,
            exhausted: cross_exhausted,
        },
    ];
    if config.print_stages {
        for s in &stages {
            print_stage_line(s);
        }
    }

    Ok((
        FullReport {
            refine12,
            valid_reachable,
            equations,
        },
        dynamic,
        cross_mismatch,
        cross_stats,
        stages,
    ))
}

/// The name of the specification's initial update constant.
fn initial_update_name(spec: &TriLevelSpec) -> Result<String> {
    let alg = spec.functions.signature();
    for u in alg.updates() {
        if !alg.update_takes_state(u).map_err(crate::error::SpecError::Alg)? {
            return Ok(alg.logic().func(u).name.clone());
        }
    }
    Err(crate::error::SpecError::Incomplete(
        "no initial state constant".into(),
    ))
}
