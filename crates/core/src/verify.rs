//! One-call verification of a tri-level specification: every refinement
//! obligation of the paper, plus the W-grammar syntax check and randomized
//! cross-formalism testing.

use eclectic_refine::{
    check_dynamic, check_equations, check_refinement_1_2, check_valid_reachable, cross_check,
    random_ops, CrossCheckStats, DynamicReport, FullReport, InducedAlgebra, Mismatch,
    Refine12Config,
};
use eclectic_rpr::wgrammar;

use crate::error::Result;
use crate::spec::TriLevelSpec;

/// Bounds and knobs for a verification run.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// Configuration of the 1→2 obligations (exploration depth, policy,
    /// completeness depth).
    pub refine12: Refine12Config,
    /// Trace-length bound for the 2→3 equation check.
    pub eq_depth: usize,
    /// State cap for the 2→3 equation check.
    pub eq_max_states: usize,
    /// Cap on candidate-state enumeration for obligation (c).
    pub candidate_cap: usize,
    /// Number of random traces for the cross-formalism check.
    pub random_traces: usize,
    /// Length of each random trace.
    pub trace_len: usize,
    /// State cap for the dynamic-logic (PDL) obligations over the
    /// representation universe; larger universes are gracefully skipped.
    pub pdl_universe_cap: usize,
}

impl VerifyConfig {
    /// Quick bounds suitable for unit tests and small carriers.
    #[must_use]
    pub fn quick() -> Self {
        VerifyConfig {
            refine12: Refine12Config::quick(),
            eq_depth: 3,
            eq_max_states: 2_000,
            candidate_cap: 100_000,
            random_traces: 5,
            trace_len: 12,
            pdl_universe_cap: 1_024,
        }
    }

    /// Thorough bounds for integration tests and experiment regeneration.
    #[must_use]
    pub fn thorough() -> Self {
        VerifyConfig {
            refine12: Refine12Config::thorough(),
            eq_depth: 4,
            eq_max_states: 5_000,
            candidate_cap: 1_000_000,
            random_traces: 20,
            trace_len: 30,
            pdl_universe_cap: 1 << 16,
        }
    }
}

/// The outcome of a full verification run.
#[derive(Debug)]
pub struct VerificationOutcome {
    /// Whether the schema derivation validated against the RPR W-grammar.
    pub grammar_ok: bool,
    /// The grammar error, if any.
    pub grammar_error: Option<String>,
    /// The refinement obligations.
    pub report: FullReport,
    /// First cross-formalism disagreement found by random traces, if any.
    pub cross_mismatch: Option<Mismatch>,
    /// Volume of the cross-formalism testing performed.
    pub cross_stats: CrossCheckStats,
    /// The dynamic-logic (PDL) obligations over the representation
    /// universe, batch-model-checked with a shared denotation cache.
    pub dynamic: DynamicReport,
}

impl VerificationOutcome {
    /// Whether everything holds.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.grammar_ok
            && self.report.is_correct()
            && self.cross_mismatch.is_none()
            && self.dynamic.is_correct()
    }
}

/// Runs the whole battery against a specification.
///
/// # Errors
/// Propagates evaluation errors (bounded-verification *failures* are
/// reported in the outcome, not as errors).
pub fn verify(spec: &TriLevelSpec, config: &VerifyConfig) -> Result<VerificationOutcome> {
    spec.check_shape()?;

    // Syntactic correctness under the W-grammar (paper §5.4 step 1).
    let (grammar_ok, grammar_error) = match wgrammar::check_schema(&spec.representation) {
        Ok(_) => (true, None),
        Err(e) => (false, Some(e.to_string())),
    };

    // 1→2 obligations (a), (b), (d).
    let refine12 = check_refinement_1_2(
        &spec.information,
        &spec.functions,
        &spec.interp_i,
        spec.info_signature(),
        &spec.info_domains,
        config.refine12,
    )?;

    // Obligation (c).
    let valid_reachable = check_valid_reachable(
        &spec.information,
        &refine12.exploration,
        config.candidate_cap,
    )?;

    // 2→3 equation validity in the induced algebra.
    let mut induced = InducedAlgebra::new(
        &spec.functions,
        &spec.representation,
        &spec.interp_k,
        spec.empty_state(),
    )?;
    let equations = check_equations(&mut induced, config.eq_depth, config.eq_max_states, 20)?;

    // §5.1.2/§5.3 dynamic-logic obligations over the representation
    // universe (batched PDL model checking with one denotation cache).
    let dynamic = check_dynamic(
        &spec.representation,
        &spec.empty_state(),
        config.pdl_universe_cap,
    )?;

    // Randomised cross-formalism testing.
    let initial_name = initial_update_name(spec)?;
    let mut rng_state: u64 = 0x5eed_1234_abcd_0001;
    let mut choose = move |n: usize| {
        // xorshift64*.
        rng_state ^= rng_state >> 12;
        rng_state ^= rng_state << 25;
        rng_state ^= rng_state >> 27;
        (rng_state.wrapping_mul(0x2545_f491_4f6c_dd1d) % n.max(1) as u64) as usize
    };
    let mut cross_mismatch = None;
    let mut cross_stats = CrossCheckStats::default();
    for _ in 0..config.random_traces {
        let ops = random_ops(
            &spec.functions,
            &induced,
            &initial_name,
            config.trace_len,
            &mut choose,
        )?;
        let (mismatch, stats) = cross_check(&spec.functions, &mut induced, &ops)?;
        cross_stats.ops += stats.ops;
        cross_stats.comparisons += stats.comparisons;
        if mismatch.is_some() {
            cross_mismatch = mismatch;
            break;
        }
    }

    Ok(VerificationOutcome {
        grammar_ok,
        grammar_error,
        report: FullReport {
            refine12,
            valid_reachable,
            equations,
        },
        cross_mismatch,
        cross_stats,
        dynamic,
    })
}

/// The name of the specification's initial update constant.
fn initial_update_name(spec: &TriLevelSpec) -> Result<String> {
    let alg = spec.functions.signature();
    for u in alg.updates() {
        if !alg.update_takes_state(u).map_err(crate::error::SpecError::Alg)? {
            return Ok(alg.logic().func(u).name.clone());
        }
    }
    Err(crate::error::SpecError::Incomplete(
        "no initial state constant".into(),
    ))
}
