//! One-call verification of a tri-level specification: every refinement
//! obligation of the paper, plus the W-grammar syntax check and randomized
//! cross-formalism testing.
//!
//! When more than one thread is configured, the battery runs as a small
//! stage DAG on the shared [`eclectic_kernel::sched`] pool: the three
//! independent chains `{refine12 → witness}`, `{equations → cross}` and
//! `{dynamic}` execute concurrently (their inner sweeps steal idle workers
//! from each other), while the reported stage order stays canonical.

use std::time::Duration;

use eclectic_kernel::{env_threads, run_tasks, Budget, Exhaustion};
use eclectic_refine::{
    check_dynamic_budget, check_equations_budget, check_refinement_1_2_budget,
    check_valid_reachable, cross_check_budget, random_ops, CrossCheckStats, DynamicReport,
    EquationCheckReport, FullReport, InducedAlgebra, Mismatch, Refine12Config, Refine12Report,
    ValidReachableReport,
};
use eclectic_rpr::wgrammar;

use crate::error::Result;
use crate::spec::TriLevelSpec;

/// Bounds and knobs for a verification run.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// Configuration of the 1→2 obligations (exploration depth, policy,
    /// completeness depth).
    pub refine12: Refine12Config,
    /// Trace-length bound for the 2→3 equation check.
    pub eq_depth: usize,
    /// State cap for the 2→3 equation check.
    pub eq_max_states: usize,
    /// Cap on candidate-state enumeration for obligation (c).
    pub candidate_cap: usize,
    /// Number of random traces for the cross-formalism check.
    pub random_traces: usize,
    /// Length of each random trace.
    pub trace_len: usize,
    /// State cap for the dynamic-logic (PDL) obligations over the
    /// representation universe; larger universes are gracefully skipped.
    pub pdl_universe_cap: usize,
    /// Optional wall-clock deadline for the whole run, in milliseconds.
    /// When it passes, the stage in flight stops at its next poll point and
    /// reports a partial result; later stages trip at entry.
    pub deadline_ms: Option<u64>,
    /// Optional cap on interned term-store nodes per governed stage (a
    /// memory budget). Deterministic at every thread count.
    pub max_nodes: Option<usize>,
    /// Print a per-stage elapsed/budget line to stdout as each stage ends.
    pub print_stages: bool,
}

impl VerifyConfig {
    /// Quick bounds suitable for unit tests and small carriers.
    #[must_use]
    pub fn quick() -> Self {
        VerifyConfig {
            refine12: Refine12Config::quick(),
            eq_depth: 3,
            eq_max_states: 2_000,
            candidate_cap: 100_000,
            random_traces: 5,
            trace_len: 12,
            pdl_universe_cap: 1_024,
            deadline_ms: None,
            max_nodes: None,
            print_stages: false,
        }
    }

    /// Thorough bounds for integration tests and experiment regeneration.
    #[must_use]
    pub fn thorough() -> Self {
        VerifyConfig {
            refine12: Refine12Config::thorough(),
            eq_depth: 4,
            eq_max_states: 5_000,
            candidate_cap: 1_000_000,
            random_traces: 20,
            trace_len: 30,
            pdl_universe_cap: 1 << 16,
            deadline_ms: None,
            max_nodes: None,
            print_stages: false,
        }
    }

    /// The resource budget shared by every stage of [`verify`].
    #[must_use]
    pub fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline_ms(ms);
        }
        if let Some(n) = self.max_nodes {
            b = b.with_max_nodes(n);
        }
        b
    }
}

/// Timing and budget record for one stage of [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Stage label (`refine12`, `witness`, `equations`, `dynamic`, `cross`).
    pub name: &'static str,
    /// Wall-clock time spent in the stage, in milliseconds.
    pub elapsed_ms: u64,
    /// Budget exhaustion recorded by the stage, if it was cut short.
    pub exhausted: Option<Exhaustion>,
}

/// The outcome of a full verification run.
#[derive(Debug)]
pub struct VerificationOutcome {
    /// Whether the schema derivation validated against the RPR W-grammar.
    pub grammar_ok: bool,
    /// The grammar error, if any.
    pub grammar_error: Option<String>,
    /// The refinement obligations.
    pub report: FullReport,
    /// First cross-formalism disagreement found by random traces, if any.
    pub cross_mismatch: Option<Mismatch>,
    /// Volume of the cross-formalism testing performed.
    pub cross_stats: CrossCheckStats,
    /// The dynamic-logic (PDL) obligations over the representation
    /// universe, batch-model-checked with a shared denotation cache.
    pub dynamic: DynamicReport,
    /// Per-stage elapsed time and budget exhaustion, in canonical order
    /// (`refine12`, `witness`, `equations`, `dynamic`, `cross`).
    pub stages: Vec<StageStats>,
}

impl VerificationOutcome {
    /// Whether everything holds. A budget-exhausted (partial) run never
    /// claims correctness: only a completed battery counts.
    #[must_use]
    pub fn is_correct(&self) -> bool {
        self.grammar_ok
            && self.report.is_correct()
            && self.cross_mismatch.is_none()
            && self.dynamic.is_correct()
            && self.exhausted().is_none()
    }

    /// The first budget exhaustion recorded by any stage, if the run was
    /// cut short.
    #[must_use]
    pub fn exhausted(&self) -> Option<&Exhaustion> {
        self.stages.iter().find_map(|s| s.exhausted.as_ref())
    }
}

/// Closes the current stage: records elapsed time since `start`, advances
/// `start`, and optionally prints the per-stage line.
fn record_stage(
    print: bool,
    budget: &Budget,
    stages: &mut Vec<StageStats>,
    start: &mut Duration,
    name: &'static str,
    exhausted: Option<Exhaustion>,
) {
    let now = budget.elapsed();
    let elapsed_ms = u64::try_from(now.saturating_sub(*start).as_millis()).unwrap_or(u64::MAX);
    *start = now;
    let stats = StageStats {
        name,
        elapsed_ms,
        exhausted,
    };
    if print {
        print_stage_line(&stats);
    }
    stages.push(stats);
}

/// Prints one `  stage <name> <ms>` line (the `print_stages` format).
fn print_stage_line(s: &StageStats) {
    let StageStats {
        name,
        elapsed_ms,
        exhausted,
    } = s;
    match exhausted {
        Some(e) => println!("  stage {name:<9} {elapsed_ms:>6} ms  {e}"),
        None => println!("  stage {name:<9} {elapsed_ms:>6} ms"),
    }
}

/// Everything [`verify`] computes after the grammar check, in one bundle:
/// the refinement report, the PDL report, the cross-check result and the
/// per-stage records in canonical order.
type VerifyBody = (
    FullReport,
    DynamicReport,
    Option<Mismatch>,
    CrossCheckStats,
    Vec<StageStats>,
);

/// Runs the whole battery against a specification.
///
/// # Errors
/// Propagates evaluation errors (bounded-verification *failures* are
/// reported in the outcome, not as errors).
pub fn verify(spec: &TriLevelSpec, config: &VerifyConfig) -> Result<VerificationOutcome> {
    verify_with_threads(spec, config, env_threads())
}

/// As [`verify`], but with an explicit worker count instead of the
/// `ECLECTIC_THREADS` environment axis — the entry point for harnesses
/// (differential fuzzing, scheduler benchmarks) that sweep thread counts
/// within one process without touching the environment.
///
/// # Errors
/// See [`verify`].
pub fn verify_with_threads(
    spec: &TriLevelSpec,
    config: &VerifyConfig,
    threads: usize,
) -> Result<VerificationOutcome> {
    spec.check_shape()?;

    // One budget, shared by every stage: the deadline and cancellation axes
    // persist across stages, while the node cap governs each stage's own
    // term store.
    let budget = config.budget();
    let threads = threads.max(1);

    // Syntactic correctness under the W-grammar (paper §5.4 step 1).
    let (grammar_ok, grammar_error) = match wgrammar::check_schema(&spec.representation) {
        Ok(_) => (true, None),
        Err(e) => (false, Some(e.to_string())),
    };

    let (report, dynamic, cross_mismatch, cross_stats, stages) = if threads > 1 {
        verify_staged(spec, config, &budget, threads)?
    } else {
        verify_serial(spec, config, &budget, threads)?
    };

    Ok(VerificationOutcome {
        grammar_ok,
        grammar_error,
        report,
        cross_mismatch,
        cross_stats,
        dynamic,
        stages,
    })
}

/// 1→2 obligations (a), (b), (d).
fn stage_refine12(
    spec: &TriLevelSpec,
    config: &VerifyConfig,
    budget: &Budget,
) -> Result<Refine12Report> {
    Ok(check_refinement_1_2_budget(
        &spec.information,
        &spec.functions,
        &spec.interp_i,
        spec.info_signature(),
        &spec.info_domains,
        config.refine12,
        budget,
    )?)
}

/// Obligation (c). Candidate enumeration is meaningless over a partial
/// universe, so an exhausted exploration skips it (inconclusively).
fn stage_witness(
    spec: &TriLevelSpec,
    refine12: &Refine12Report,
    config: &VerifyConfig,
) -> Result<ValidReachableReport> {
    if refine12.exploration.exhausted.is_some() {
        Ok(ValidReachableReport {
            candidates: 0,
            valid: 0,
            reachable_valid: 0,
            unreachable: Vec::new(),
            exploration_truncated: true,
        })
    } else {
        Ok(check_valid_reachable(
            &spec.information,
            &refine12.exploration,
            config.candidate_cap,
        )?)
    }
}

/// The algebra induced by interpretation `K` over the representation level,
/// shared by the `equations` and `cross` stages.
fn make_induced(spec: &TriLevelSpec) -> Result<InducedAlgebra<'_>> {
    Ok(InducedAlgebra::new(
        &spec.functions,
        &spec.representation,
        &spec.interp_k,
        spec.empty_state(),
    )?)
}

/// 2→3 equation validity in the induced algebra.
fn stage_equations(
    induced: &mut InducedAlgebra<'_>,
    config: &VerifyConfig,
    budget: &Budget,
) -> Result<EquationCheckReport> {
    Ok(check_equations_budget(
        induced,
        config.eq_depth,
        config.eq_max_states,
        20,
        budget,
    )?)
}

/// §5.1.2/§5.3 dynamic-logic obligations over the representation universe
/// (batched PDL model checking with one denotation cache).
fn stage_dynamic(
    spec: &TriLevelSpec,
    config: &VerifyConfig,
    budget: &Budget,
    threads: usize,
) -> Result<DynamicReport> {
    Ok(check_dynamic_budget(
        &spec.representation,
        &spec.empty_state(),
        config.pdl_universe_cap,
        budget,
        threads,
    )?)
}

/// Randomised cross-formalism testing with a deterministic xorshift64*
/// trace generator.
fn stage_cross(
    spec: &TriLevelSpec,
    induced: &mut InducedAlgebra<'_>,
    config: &VerifyConfig,
    budget: &Budget,
    threads: usize,
) -> Result<(Option<Mismatch>, CrossCheckStats, Option<Exhaustion>)> {
    let initial_name = initial_update_name(spec)?;
    let mut rng_state: u64 = 0x5eed_1234_abcd_0001;
    let mut choose = move |n: usize| {
        // xorshift64*.
        rng_state ^= rng_state >> 12;
        rng_state ^= rng_state << 25;
        rng_state ^= rng_state >> 27;
        (rng_state.wrapping_mul(0x2545_f491_4f6c_dd1d) % n.max(1) as u64) as usize
    };
    let mut cross_mismatch = None;
    let mut cross_stats = CrossCheckStats::default();
    let mut cross_exhausted = None;
    for _ in 0..config.random_traces {
        let ops = random_ops(
            &spec.functions,
            induced,
            &initial_name,
            config.trace_len,
            &mut choose,
        )?;
        let (mismatch, stats, exhausted) =
            cross_check_budget(&spec.functions, induced, &ops, budget, threads)?;
        cross_stats.ops += stats.ops;
        cross_stats.comparisons += stats.comparisons;
        if mismatch.is_some() {
            cross_mismatch = mismatch;
            break;
        }
        if exhausted.is_some() {
            cross_exhausted = exhausted;
            break;
        }
    }
    Ok((cross_mismatch, cross_stats, cross_exhausted))
}

/// The sequential battery: one stage after another in canonical order, with
/// per-stage lines printed as each stage closes.
fn verify_serial(
    spec: &TriLevelSpec,
    config: &VerifyConfig,
    budget: &Budget,
    threads: usize,
) -> Result<VerifyBody> {
    let mut stages = Vec::new();
    let mut stage_start = budget.elapsed();

    let refine12 = stage_refine12(spec, config, budget)?;
    record_stage(
        config.print_stages,
        budget,
        &mut stages,
        &mut stage_start,
        "refine12",
        refine12.exhausted().cloned(),
    );

    let valid_reachable = stage_witness(spec, &refine12, config)?;
    record_stage(
        config.print_stages,
        budget,
        &mut stages,
        &mut stage_start,
        "witness",
        None,
    );

    let mut induced = make_induced(spec)?;
    let equations = stage_equations(&mut induced, config, budget)?;
    record_stage(
        config.print_stages,
        budget,
        &mut stages,
        &mut stage_start,
        "equations",
        equations.exhausted.clone(),
    );

    let dynamic = stage_dynamic(spec, config, budget, threads)?;
    record_stage(
        config.print_stages,
        budget,
        &mut stages,
        &mut stage_start,
        "dynamic",
        dynamic.exhausted.clone(),
    );

    let (cross_mismatch, cross_stats, cross_exhausted) =
        stage_cross(spec, &mut induced, config, budget, threads)?;
    record_stage(
        config.print_stages,
        budget,
        &mut stages,
        &mut stage_start,
        "cross",
        cross_exhausted,
    );

    Ok((
        FullReport {
            refine12,
            valid_reachable,
            equations,
        },
        dynamic,
        cross_mismatch,
        cross_stats,
        stages,
    ))
}

/// Result of the `refine12 → witness` chain.
type ChainAOut = Result<(Refine12Report, ValidReachableReport, Vec<StageStats>)>;
/// Result of the `equations → cross` chain (they share the induced algebra).
type ChainBOut = Result<(
    EquationCheckReport,
    Option<Mismatch>,
    CrossCheckStats,
    Vec<StageStats>,
)>;
/// Result of the independent `dynamic` chain.
type ChainCOut = Result<(DynamicReport, StageStats)>;

/// Per-chain results of the staged battery. Each chain carries its own
/// stage records, timed against the shared budget clock from the moment the
/// chain starts running.
enum ChainOut {
    A(Box<ChainAOut>),
    B(Box<ChainBOut>),
    C(Box<ChainCOut>),
}

/// The staged battery: the three independent chains run concurrently as
/// tasks on the shared scheduler pool; their inner sweeps enqueue work on
/// the same pool, so idle chain workers steal sweep items from busy ones.
///
/// Every stage computes exactly what it computes serially — the chains
/// share no mutable state (each governed stage owns its term store, and the
/// node-cap axis is checked per store), so reports are bit-identical to the
/// serial schedule. Only wall-clock-dependent behaviour (deadline trips,
/// `elapsed_ms`) is schedule-sensitive, exactly as at any other worker
/// count. When several chains fail hard, the error surfaced follows the
/// fixed chain priority A, B, C.
fn verify_staged(
    spec: &TriLevelSpec,
    config: &VerifyConfig,
    budget: &Budget,
    threads: usize,
) -> Result<VerifyBody> {
    let chain_a = || {
        let mut stages = Vec::new();
        let mut start = budget.elapsed();
        let refine12 = stage_refine12(spec, config, budget)?;
        let exhausted = refine12.exhausted().cloned();
        record_stage(false, budget, &mut stages, &mut start, "refine12", exhausted);
        let valid_reachable = stage_witness(spec, &refine12, config)?;
        record_stage(false, budget, &mut stages, &mut start, "witness", None);
        Ok((refine12, valid_reachable, stages))
    };
    let chain_b = || {
        let mut stages = Vec::new();
        let mut start = budget.elapsed();
        let mut induced = make_induced(spec)?;
        let equations = stage_equations(&mut induced, config, budget)?;
        let exhausted = equations.exhausted.clone();
        record_stage(false, budget, &mut stages, &mut start, "equations", exhausted);
        let (cross_mismatch, cross_stats, cross_exhausted) =
            stage_cross(spec, &mut induced, config, budget, threads)?;
        record_stage(false, budget, &mut stages, &mut start, "cross", cross_exhausted);
        Ok((equations, cross_mismatch, cross_stats, stages))
    };
    let chain_c = || {
        let mut stages = Vec::new();
        let mut start = budget.elapsed();
        let dynamic = stage_dynamic(spec, config, budget, threads)?;
        let exhausted = dynamic.exhausted.clone();
        record_stage(false, budget, &mut stages, &mut start, "dynamic", exhausted);
        let stage = stages.pop().expect("dynamic stage recorded");
        Ok((dynamic, stage))
    };

    let tasks: Vec<Box<dyn FnOnce() -> ChainOut + Send + '_>> = vec![
        Box::new(|| ChainOut::A(Box::new(chain_a()))),
        Box::new(|| ChainOut::B(Box::new(chain_b()))),
        Box::new(|| ChainOut::C(Box::new(chain_c()))),
    ];
    let (mut a, mut b, mut c) = (None, None, None);
    for out in run_tasks(threads.min(3), tasks) {
        match out {
            ChainOut::A(r) => a = Some(r),
            ChainOut::B(r) => b = Some(r),
            ChainOut::C(r) => c = Some(r),
        }
    }
    let (refine12, valid_reachable, stages_a) = (*a.expect("chain A ran"))?;
    let (equations, cross_mismatch, cross_stats, stages_b) = (*b.expect("chain B ran"))?;
    let (dynamic, dynamic_stage) = (*c.expect("chain C ran"))?;

    // Reassemble the canonical stage order: refine12, witness, equations,
    // dynamic, cross.
    let mut stages = Vec::with_capacity(5);
    stages.extend(stages_a);
    let mut chain_b_stages = stages_b.into_iter();
    stages.push(chain_b_stages.next().expect("equations stage recorded"));
    stages.push(dynamic_stage);
    stages.extend(chain_b_stages);
    if config.print_stages {
        for s in &stages {
            print_stage_line(s);
        }
    }

    Ok((
        FullReport {
            refine12,
            valid_reachable,
            equations,
        },
        dynamic,
        cross_mismatch,
        cross_stats,
        stages,
    ))
}

/// The name of the specification's initial update constant.
fn initial_update_name(spec: &TriLevelSpec) -> Result<String> {
    let alg = spec.functions.signature();
    for u in alg.updates() {
        if !alg.update_takes_state(u).map_err(crate::error::SpecError::Alg)? {
            return Ok(alg.logic().func(u).name.clone());
        }
    }
    Err(crate::error::SpecError::Incomplete(
        "no initial state constant".into(),
    ))
}
