//! Differential cross-engine fuzzing over W-grammar-derived domains.
//!
//! The scenario factory turns one `u64` seed into a complete random
//! tri-level specification: [`eclectic_rpr::wgrammar::derive_shape`] draws
//! a many-sorted signature from the RPR metagrammar's own identifier
//! language, [`eclectic_algebraic::random_descriptions`] draws structured
//! descriptions over it, §4.2 synthesis plus
//! [`crate::methodology::derive_schema`] produce the equations and the
//! representation schema, and
//! [`eclectic_refine::random::equivalent_variant`] perturbs the
//! interpretation `K` with logically equivalent query wffs. The result is
//! a [`TriLevelSpec`] that is *correct by construction* — so every engine
//! axis must agree on every verification outcome.
//!
//! [`run_differential`] then verifies one such domain under every engine
//! combination — dense/sparse/compressed/auto [`Rel`] backends, scoped vs
//! work-stealing scheduler at 1/2/4/8 workers, budget-capped partial runs
//! against full runs — and reports any pair whose schedule-independent
//! [`Fingerprint`]s differ. [`run_corpus`] sweeps seeds, shrinks each
//! divergence to a minimal seed/config with [`shrink`], and renders it as
//! a `tests/corpus/*.toml` fixture via [`fixture_toml`].
//!
//! [`Rel`]: eclectic_kernel::Rel

use std::sync::Arc;

use eclectic_algebraic::{random_descriptions, synthesize, AlgSignature, AlgSpec};
use eclectic_kernel::{
    env_threads, force_rel_backend, force_sched_mode, force_worker_cap, run_tasks, Exhaustion,
    RelChoice, Rng, SchedMode, REL_DENSE_MAX_DIM,
};
use eclectic_logic::{Formula, Signature, SortId, Term, Theory, VarId};
use eclectic_refine::{random::equivalent_variant, InterpretationI, InterpretationK, QueryImpl};
use eclectic_rpr::wgrammar::{derive_shape, ShapeConfig};
use eclectic_rpr::QueryDef;

use crate::error::{Result, SpecError};
use crate::methodology::derive_schema;
use crate::spec::{CarrierSpec, TriLevelSpec};
use crate::verify::{
    force_dag_shape, verify_with_threads, DagShape, VerificationOutcome, VerifyConfig,
};

/// Node-budget used for the capped-prefix differential axis. Small enough
/// to trip inside refine12 on most generated domains, large enough that the
/// earlier stages still do representative work.
const CAPPED_NODES: usize = 200;

/// Everything needed to regenerate one fuzzed domain: the W-grammar shape
/// knobs plus the verification exploration depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Shape of the generated signature (sorts, carriers, queries, updates,
    /// arities).
    pub shape: ShapeConfig,
    /// Reachability exploration depth for the 1→2 obligations.
    pub explore_depth: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            shape: ShapeConfig::default(),
            explore_depth: 4,
        }
    }
}

impl FuzzConfig {
    /// The verification configuration used for every engine combination.
    #[must_use]
    pub fn verify_config(&self) -> VerifyConfig {
        let mut vc = VerifyConfig::quick();
        vc.refine12.limits.max_depth = self.explore_depth.clamp(1, 8);
        vc.random_traces = 3;
        vc.trace_len = 8;
        vc
    }
}

/// Builds the complete random tri-level specification for `seed`.
///
/// The construction is deterministic in `(seed, cfg)` and, because every
/// artefact is derived by the §4.2 methodology, a sound engine reports
/// every obligation satisfied *except possibly* obligation (c): the
/// tautological information axioms make every candidate state valid, while
/// random updates rarely reach them all, so `valid ⇒ reachable` may fail —
/// deterministically, with the same unreached-state list on every engine.
/// The differential harness compares full fingerprints, so that failure is
/// itself a cross-checked artefact; any *disagreement* between engines is
/// an engine bug.
///
/// # Errors
/// Returns an error only if the derivation pipeline rejects the drawn
/// shape — which would indicate a generator bug, not user error.
pub fn build_domain(seed: u64, cfg: &FuzzConfig) -> Result<TriLevelSpec> {
    let shape_cfg = cfg.shape.clamped();
    let mut master = Rng::new(seed);
    let shape = derive_shape(master.next_u64(), &shape_cfg);
    let mut desc_rng = master.fork();
    let mut k_rng = master.fork();

    // ---- Level 1: information (temporal FO theory) ----------------------
    let mut isig = Signature::new();
    let mut info_sorts: Vec<SortId> = Vec::new();
    for (name, _) in &shape.sorts {
        info_sorts.push(isig.add_sort(name)?);
    }
    for q in &shape.queries {
        let dom: Vec<SortId> = q.param_sorts.iter().map(|&i| info_sorts[i]).collect();
        isig.add_db_predicate(&q.name, &dom)?;
    }
    // Tautological axioms over the first query: satisfied in every state
    // and every transition, so the generated domain is always correct and
    // the static/transition checkers still have a formula to evaluate.
    let q0 = &shape.queries[0];
    let pred0 = isig.pred_id(&q0.name)?;
    let mut vars: Vec<VarId> = Vec::new();
    for (i, &si) in q0.param_sorts.iter().enumerate() {
        vars.push(isig.add_var(&format!("v{i}"), info_sorts[si])?);
    }
    let atom = Formula::Pred(pred0, vars.iter().map(|&v| Term::Var(v)).collect());
    let taut = atom.clone().or(atom.not());
    let static_axiom = Formula::forall_all(&vars, taut.clone());
    let transition_axiom = Formula::forall_all(&vars, taut.necessarily());
    let mut information = Theory::new(Arc::new(isig));
    information.add_axiom("static-tautology", static_axiom)?;
    information.add_axiom("transition-tautology", transition_axiom)?;

    // ---- Level 2: functions (algebraic specification) -------------------
    let mut alg = AlgSignature::new()?;
    let mut alg_sorts: Vec<SortId> = Vec::new();
    for (name, elems) in &shape.sorts {
        let elems: Vec<&str> = elems.iter().map(String::as_str).collect();
        alg_sorts.push(alg.add_param_sort(name, &elems)?);
    }
    for q in &shape.queries {
        let dom: Vec<SortId> = q.param_sorts.iter().map(|&i| alg_sorts[i]).collect();
        alg.add_query(&q.name, &dom, None)?;
    }
    alg.add_update("initiate", &[], false)?;
    for u in &shape.updates {
        let dom: Vec<SortId> = u.param_sorts.iter().map(|&i| alg_sorts[i]).collect();
        alg.add_update(&u.name, &dom, true)?;
    }
    let (initial, descs) = random_descriptions(&mut alg, &mut desc_rng)?;
    let eqs = synthesize(&mut alg, &initial, &descs)?;
    let schema_input_alg = alg.clone();
    let functions = AlgSpec::new(alg, eqs)?;

    // ---- Level 3: representation (RPR schema) ---------------------------
    let rel_names: Vec<(String, String)> = shape
        .queries
        .iter()
        .map(|q| (q.name.clone(), format!("R_{}", q.name)))
        .collect();
    let pairs: Vec<(&str, &str)> = rel_names
        .iter()
        .map(|(q, r)| (q.as_str(), r.as_str()))
        .collect();
    let representation = derive_schema(&schema_input_alg, &initial, &descs, &pairs)?;

    // ---- Interpretations I and K ----------------------------------------
    let ipairs: Vec<(&str, &str)> = shape
        .queries
        .iter()
        .map(|q| (q.name.as_str(), q.name.as_str()))
        .collect();
    let interp_i = InterpretationI::new(&information.signature, functions.signature(), &ipairs)?;

    let rsig = representation.signature().clone();
    let mut kqueries: Vec<(&str, QueryImpl)> = Vec::new();
    for (qname, rname) in &rel_names {
        let rel = rsig.pred_id(rname)?;
        let dom = rsig.pred(rel).domain.clone();
        let mut params: Vec<VarId> = Vec::new();
        for &s in &dom {
            let v = rsig
                .var_ids()
                .find(|&v| rsig.var(v).sort == s && !params.contains(&v))
                .ok_or_else(|| {
                    SpecError::Derivation(format!(
                        "no distinct representation variable of sort `{}` for query `{qname}`",
                        rsig.sort_name(s)
                    ))
                })?;
            params.push(v);
        }
        let base = Formula::Pred(rel, params.iter().map(|&v| Term::Var(v)).collect());
        let wff = equivalent_variant(base, &mut k_rng);
        kqueries.push((qname, QueryImpl::Bool(QueryDef::new(&rsig, qname, params, wff)?)));
    }
    let mut kupdates: Vec<(&str, &str)> = vec![("initiate", "initiate")];
    for u in &shape.updates {
        kupdates.push((u.name.as_str(), u.name.as_str()));
    }
    let interp_k = InterpretationK::new(&functions, &representation, kqueries, &kupdates)?;

    // ---- Carriers and template state ------------------------------------
    let elem_lists: Vec<Vec<&str>> = shape
        .sorts
        .iter()
        .map(|(_, es)| es.iter().map(String::as_str).collect())
        .collect();
    let entries: Vec<(&str, &[&str])> = shape
        .sorts
        .iter()
        .zip(&elem_lists)
        .map(|((n, _), es)| (n.as_str(), es.as_slice()))
        .collect();
    let carriers = CarrierSpec::new(&entries);
    let info_domains = Arc::new(carriers.domains_for(&information.signature)?);
    let repr_domains = Arc::new(carriers.domains_for(representation.signature())?);
    let mut repr_template =
        eclectic_rpr::DbState::new(representation.signature().clone(), repr_domains.clone());
    repr_template.bind_named_constants()?;

    Ok(TriLevelSpec {
        name: format!("fuzz-{seed:#x}"),
        information,
        info_domains,
        functions,
        representation,
        repr_domains,
        interp_i,
        interp_k,
        repr_template,
    })
}

/// The schedule-independent portion of a [`VerificationOutcome`], rendered
/// to strings so any two runs — whatever their backend, scheduler or worker
/// count — can be compared for exact agreement. Elapsed times and cache
/// counters are deliberately excluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// W-grammar syntax check result.
    pub grammar_ok: bool,
    /// Overall verdict.
    pub correct: bool,
    /// 1→2 obligations (termination, completeness, violations).
    pub refine12: String,
    /// Reachability exploration (witnesses, depth, truncation, universe).
    pub exploration: String,
    /// Obligation (c): valid states reachable.
    pub valid_reachable: String,
    /// 2→3 equation check.
    pub equations: String,
    /// PDL dynamic obligations.
    pub dynamic: String,
    /// Randomized cross-formalism agreement.
    pub cross: String,
    /// Stage names with their budget-exhaustion records (but not timings).
    pub stages: Vec<(&'static str, Option<Exhaustion>)>,
}

impl Fingerprint {
    /// Extracts the fingerprint of one verification outcome.
    #[must_use]
    pub fn of(o: &VerificationOutcome) -> Fingerprint {
        let r12 = &o.report.refine12;
        let u = &r12.exploration.universe;
        Fingerprint {
            grammar_ok: o.grammar_ok,
            correct: o.is_correct(),
            refine12: format!(
                "{:?}",
                (
                    &r12.termination,
                    &r12.completeness,
                    &r12.static_violations,
                    &r12.transition_violations
                )
            ),
            exploration: format!(
                "{:?}",
                (
                    &r12.exploration.witnesses,
                    &r12.exploration.depth,
                    r12.exploration.truncated,
                    r12.exploration.abstraction_collision,
                    &r12.exploration.exhausted,
                    u.state_count(),
                    u.edge_count()
                )
            ),
            valid_reachable: format!("{:?}", o.report.valid_reachable),
            equations: format!("{:?}", o.report.equations),
            dynamic: format!(
                "{:?}",
                (
                    &o.dynamic.failures,
                    o.dynamic.checked,
                    o.dynamic.universe_states,
                    &o.dynamic.unchecked_procs,
                    &o.dynamic.skipped,
                    &o.dynamic.exhausted
                )
            ),
            cross: format!("{:?}", (&o.cross_mismatch, &o.cross_stats)),
            stages: o
                .stages
                .iter()
                .map(|s| (s.name, s.exhausted.clone()))
                .collect(),
        }
    }

    /// The first field in which `self` and `other` differ, as
    /// `name: self-value != other-value`, or `None` when equal.
    #[must_use]
    pub fn first_difference(&self, other: &Fingerprint) -> Option<String> {
        let fields: [(&str, String, String); 9] = [
            (
                "grammar_ok",
                format!("{:?}", self.grammar_ok),
                format!("{:?}", other.grammar_ok),
            ),
            (
                "correct",
                format!("{:?}", self.correct),
                format!("{:?}", other.correct),
            ),
            ("refine12", self.refine12.clone(), other.refine12.clone()),
            (
                "exploration",
                self.exploration.clone(),
                other.exploration.clone(),
            ),
            (
                "valid_reachable",
                self.valid_reachable.clone(),
                other.valid_reachable.clone(),
            ),
            ("equations", self.equations.clone(), other.equations.clone()),
            ("dynamic", self.dynamic.clone(), other.dynamic.clone()),
            ("cross", self.cross.clone(), other.cross.clone()),
            (
                "stages",
                format!("{:?}", self.stages),
                format!("{:?}", other.stages),
            ),
        ];
        fields
            .into_iter()
            .find(|(_, a, b)| a != b)
            .map(|(name, a, b)| format!("{name}: {a} != {b}"))
    }
}

/// The outcome of one engine combination: a fingerprint, or the rendered
/// verification error when the run degraded gracefully (e.g. the
/// obligation-(c) candidate cap on a large shape). Engines must agree on
/// errors exactly as they must agree on fingerprints.
pub type EngineOutcome = std::result::Result<Fingerprint, String>;

/// Verifies `spec` under one engine combination (the default obligation-DAG
/// battery shape), capturing either the schedule-independent fingerprint or
/// the rendered error.
pub fn engine_outcome(
    spec: &TriLevelSpec,
    vc: &VerifyConfig,
    backend: RelChoice,
    mode: SchedMode,
    workers: usize,
) -> EngineOutcome {
    engine_outcome_shaped(spec, vc, backend, mode, workers, DagShape::Fine)
}

/// [`engine_outcome`] with an explicit battery [`DagShape`] — the axis that
/// cross-checks the obligation-granularity DAG against the coarse chain
/// decomposition.
pub fn engine_outcome_shaped(
    spec: &TriLevelSpec,
    vc: &VerifyConfig,
    backend: RelChoice,
    mode: SchedMode,
    workers: usize,
    shape: DagShape,
) -> EngineOutcome {
    let _backend = force_rel_backend(backend);
    let _mode = force_sched_mode(mode);
    let _shape = force_dag_shape(shape);
    match verify_with_threads(spec, vc, workers) {
        Ok(o) => Ok(Fingerprint::of(&o)),
        Err(e) => Err(e.to_string()),
    }
}

/// The first difference between two engine outcomes, rendered for humans,
/// or `None` when they agree.
#[must_use]
pub fn outcome_difference(a: &EngineOutcome, b: &EngineOutcome) -> Option<String> {
    match (a, b) {
        (Ok(x), Ok(y)) => x.first_difference(y),
        (Err(x), Err(y)) if x == y => None,
        (Err(x), Err(y)) => Some(format!("errors differ: `{x}` != `{y}`")),
        (Ok(_), Err(e)) => Some(format!("one engine verified, the other errored: `{e}`")),
        (Err(e), Ok(_)) => Some(format!("one engine errored (`{e}`), the other verified")),
    }
}

/// One engine-pair disagreement found by [`run_differential`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which engine axis disagreed with the baseline (e.g.
    /// `backend:sparse/steal/1`).
    pub axis: String,
    /// The first differing fingerprint field, rendered for humans.
    pub detail: String,
}

/// The full differential report for one seed.
#[derive(Debug)]
pub struct DifferentialReport {
    /// The generating seed.
    pub seed: u64,
    /// Baseline outcome (auto backend, stealing scheduler, 1 worker).
    pub baseline: EngineOutcome,
    /// All engine-pair disagreements (empty on a sound engine).
    pub divergences: Vec<Divergence>,
}

/// One engine combination of the differential grid:
/// `(label, backend, scheduler, workers, battery shape)`.
pub type EngineCombo = (String, RelChoice, SchedMode, usize, DagShape);

/// The engine combinations every domain is verified under, beyond the
/// baseline. Multi-worker combos run the default obligation-DAG battery;
/// the `shape:chain/…` arms re-run the same workloads under the coarse
/// chain decomposition, cross-checking the two task shapes against each
/// other (and, transitively, against the serial baseline).
#[must_use]
pub fn engine_combos() -> Vec<EngineCombo> {
    let auto = RelChoice::AutoAt(REL_DENSE_MAX_DIM);
    let fine = DagShape::Fine;
    let mut combos = vec![
        ("backend:dense/steal/1".into(), RelChoice::Dense, SchedMode::Steal, 1, fine),
        ("backend:sparse/steal/1".into(), RelChoice::Sparse, SchedMode::Steal, 1, fine),
        (
            "backend:compressed/steal/1".into(),
            RelChoice::Compressed,
            SchedMode::Steal,
            1,
            fine,
        ),
    ];
    for workers in [2usize, 4, 8] {
        combos.push((format!("sched:steal/{workers}"), auto, SchedMode::Steal, workers, fine));
    }
    for workers in [1usize, 2, 4, 8] {
        combos.push((format!("sched:scoped/{workers}"), auto, SchedMode::Scoped, workers, fine));
    }
    for workers in [2usize, 4, 8] {
        combos.push((
            format!("shape:chain/steal/{workers}"),
            auto,
            SchedMode::Steal,
            workers,
            DagShape::Chain,
        ));
    }
    combos.push((
        "shape:chain/scoped/4".into(),
        auto,
        SchedMode::Scoped,
        4,
        DagShape::Chain,
    ));
    combos
}

/// Checks that a budget-capped run is a *prefix* of the uncapped one: same
/// stage names in the same order, and every stage that ran to completion
/// before the first exhaustion must match the uncapped stage record.
fn prefix_violation(capped: &Fingerprint, full: &Fingerprint) -> Option<String> {
    let capped_names: Vec<&str> = capped.stages.iter().map(|(n, _)| *n).collect();
    let full_names: Vec<&str> = full.stages.iter().map(|(n, _)| *n).collect();
    if capped_names != full_names {
        return Some(format!(
            "stage lists differ: {capped_names:?} != {full_names:?}"
        ));
    }
    let first_trip = capped
        .stages
        .iter()
        .position(|(_, e)| e.is_some())
        .unwrap_or(capped.stages.len());
    for (i, ((name, capped_e), (_, full_e))) in
        capped.stages.iter().zip(&full.stages).enumerate()
    {
        if i < first_trip && capped_e != full_e {
            return Some(format!(
                "pre-exhaustion stage `{name}` differs: {capped_e:?} != {full_e:?}"
            ));
        }
    }
    if first_trip == capped.stages.len() && capped != full {
        // No stage tripped, so the capped run must be the full run.
        return capped.first_difference(full);
    }
    None
}

/// Generates the domain for `seed` and verifies it under every engine
/// combination, recording every fingerprint disagreement with the baseline
/// (auto backend, stealing scheduler, single worker).
///
/// Also runs the budget-capped axis: a node-capped run under two distinct
/// backends must agree with each other, and must be a stage-prefix of the
/// uncapped baseline.
///
/// # Errors
/// Propagates domain-generation errors (a generator bug — generated
/// domains are well-formed by construction). Verification errors do *not*
/// abort the sweep: they are rendered into the per-engine outcome, which
/// every engine must agree on.
pub fn run_differential(seed: u64, cfg: &FuzzConfig) -> Result<DifferentialReport> {
    let spec = build_domain(seed, cfg)?;
    let vc = cfg.verify_config();
    let auto = RelChoice::AutoAt(REL_DENSE_MAX_DIM);
    let _cap = force_worker_cap(usize::MAX);

    let baseline = engine_outcome(&spec, &vc, auto, SchedMode::Steal, 1);
    let mut divergences = Vec::new();
    for (axis, backend, mode, workers, shape) in engine_combos() {
        let outcome = engine_outcome_shaped(&spec, &vc, backend, mode, workers, shape);
        if let Some(detail) = outcome_difference(&baseline, &outcome) {
            divergences.push(Divergence { axis, detail });
        }
    }

    // Budget-capped partial runs: deterministic across engines, and a
    // prefix of the uncapped outcome.
    let mut capped_vc = vc;
    capped_vc.max_nodes = Some(CAPPED_NODES);
    let capped_dense = engine_outcome(&spec, &capped_vc, RelChoice::Dense, SchedMode::Steal, 1);
    let capped_sparse = engine_outcome(&spec, &capped_vc, RelChoice::Sparse, SchedMode::Scoped, 2);
    if let Some(detail) = outcome_difference(&capped_dense, &capped_sparse) {
        divergences.push(Divergence {
            axis: "capped:dense/steal/1-vs-sparse/scoped/2".into(),
            detail,
        });
    }
    if let (Ok(capped), Ok(full)) = (&capped_dense, &baseline) {
        if let Some(detail) = prefix_violation(capped, full) {
            divergences.push(Divergence {
                axis: "capped:prefix-of-uncapped".into(),
                detail,
            });
        }
    }

    #[cfg(feature = "legacy-rewrite")]
    divergences.extend(legacy_divergences(&spec)?);

    Ok(DifferentialReport {
        seed,
        baseline,
        divergences,
    })
}

/// Compares the interned rewriter against the legacy structural rewriter on
/// every ground query over short traces of the generated domain.
#[cfg(feature = "legacy-rewrite")]
fn legacy_divergences(spec: &TriLevelSpec) -> Result<Vec<Divergence>> {
    use eclectic_algebraic::{LegacyRewriter, Rewriter};

    let alg = spec.functions.signature();
    let initiate = alg
        .updates()
        .find(|&u| matches!(alg.update_takes_state(u), Ok(false)))
        .ok_or_else(|| SpecError::Incomplete("generated domain lacks initiate".into()))?;
    // Ground traces: the initial state plus one application of each update
    // with first-constant arguments.
    let mut states = vec![Term::constant(initiate)];
    for u in alg.updates() {
        if !alg.update_takes_state(u).map_err(SpecError::Alg)? {
            continue;
        }
        let mut args = Vec::new();
        for s in alg.update_params(u).map_err(SpecError::Alg)? {
            let consts = alg.param_names(s);
            args.push(Term::constant(consts[0]));
        }
        args.push(states[0].clone());
        states.push(Term::App(u, args));
    }

    let mut rw = Rewriter::new(&spec.functions);
    let mut legacy = LegacyRewriter::new(&spec.functions);
    let mut out = Vec::new();
    for q in alg.queries() {
        let qname = alg.logic().func(q).name.clone();
        for st in &states {
            let mut args = Vec::new();
            for s in alg.query_params(q).map_err(SpecError::Alg)? {
                let consts = alg.param_names(s);
                args.push(Term::constant(consts[0]));
            }
            args.push(st.clone());
            let t = Term::App(q, args);
            let a = rw.eval_bool(&t).map_err(SpecError::Alg)?;
            let b = legacy.eval_bool(&t).map_err(SpecError::Alg)?;
            if a != b {
                out.push(Divergence {
                    axis: format!("rewriter:legacy/{qname}"),
                    detail: format!("interned={a} legacy={b} on {t:?}"),
                });
            }
        }
    }
    Ok(out)
}

/// Greedily shrinks a divergent `(seed, cfg)` to a minimal configuration
/// that still diverges: each shape knob and the exploration depth is
/// decremented towards 1 as long as [`run_differential`] keeps reporting a
/// divergence. Generation failures during shrinking are treated as
/// "still interesting is false" (the candidate is rejected).
#[must_use]
pub fn shrink(seed: u64, cfg: &FuzzConfig) -> FuzzConfig {
    let diverges = |c: &FuzzConfig| {
        run_differential(seed, c)
            .map(|r| !r.divergences.is_empty())
            .unwrap_or(false)
    };
    let mut best = *cfg;
    loop {
        let mut improved = false;
        let mut candidates: Vec<FuzzConfig> = Vec::new();
        for i in 0..6 {
            let mut c = best;
            match i {
                0 if c.shape.sorts > 1 => c.shape.sorts -= 1,
                1 if c.shape.elems_per_sort > 1 => c.shape.elems_per_sort -= 1,
                2 if c.shape.queries > 1 => c.shape.queries -= 1,
                3 if c.shape.updates > 1 => c.shape.updates -= 1,
                4 if c.shape.max_arity > 1 => c.shape.max_arity -= 1,
                5 if c.explore_depth > 1 => c.explore_depth -= 1,
                _ => continue,
            }
            candidates.push(c);
        }
        for c in candidates {
            if diverges(&c) {
                best = c;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Renders a `(seed, cfg)` pair as a corpus fixture in the subset of TOML
/// the replay tests parse: one `key = integer` per line.
#[must_use]
pub fn fixture_toml(seed: u64, cfg: &FuzzConfig) -> String {
    format!(
        "# Differential-fuzzing corpus fixture: regenerate the domain with\n\
         # eclectic_spec::fuzz::build_domain and re-verify under every engine.\n\
         seed = {seed}\n\
         sorts = {}\n\
         elems_per_sort = {}\n\
         queries = {}\n\
         updates = {}\n\
         max_arity = {}\n\
         explore_depth = {}\n",
        cfg.shape.sorts,
        cfg.shape.elems_per_sort,
        cfg.shape.queries,
        cfg.shape.updates,
        cfg.shape.max_arity,
        cfg.explore_depth,
    )
}

/// Parses a corpus fixture written by [`fixture_toml`].
///
/// # Errors
/// Returns [`SpecError::Incomplete`] on unknown keys, malformed lines or a
/// missing `seed`.
pub fn parse_fixture(text: &str) -> Result<(u64, FuzzConfig)> {
    let mut seed: Option<u64> = None;
    let mut cfg = FuzzConfig::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| {
            SpecError::Incomplete(format!("fixture line {}: expected `key = value`", lineno + 1))
        })?;
        let key = key.trim();
        let value: u64 = value.trim().parse().map_err(|_| {
            SpecError::Incomplete(format!("fixture line {}: `{key}` is not an integer", lineno + 1))
        })?;
        let n = value as usize;
        match key {
            "seed" => seed = Some(value),
            "sorts" => cfg.shape.sorts = n,
            "elems_per_sort" => cfg.shape.elems_per_sort = n,
            "queries" => cfg.shape.queries = n,
            "updates" => cfg.shape.updates = n,
            "max_arity" => cfg.shape.max_arity = n,
            "explore_depth" => cfg.explore_depth = n,
            other => {
                return Err(SpecError::Incomplete(format!(
                    "fixture line {}: unknown key `{other}`",
                    lineno + 1
                )))
            }
        }
    }
    let seed =
        seed.ok_or_else(|| SpecError::Incomplete("fixture is missing `seed`".into()))?;
    Ok((seed, cfg))
}

/// Parses the `ECLECTIC_FUZZ_SEEDS` environment variable (a decimal count),
/// falling back to `default` when unset or malformed.
#[must_use]
pub fn env_fuzz_seeds(default: usize) -> usize {
    parse_fuzz_seeds(std::env::var("ECLECTIC_FUZZ_SEEDS").ok().as_deref(), default)
}

/// Pure parsing behind [`env_fuzz_seeds`], exposed for tests.
#[must_use]
pub fn parse_fuzz_seeds(value: Option<&str>, default: usize) -> usize {
    match value {
        Some(s) => s.trim().parse().ok().filter(|&n| n > 0).unwrap_or(default),
        None => default,
    }
}

/// Outcome of a corpus sweep: per-seed divergences, already shrunk.
#[derive(Debug, Default)]
pub struct CorpusOutcome {
    /// Number of domains generated and verified.
    pub domains: usize,
    /// Shrunk divergent cases as `(original seed, shrunk config, axes)`.
    pub failures: Vec<(u64, FuzzConfig, Vec<Divergence>)>,
    /// Generation errors as `(seed, message)` — a generator bug if ever
    /// non-empty.
    pub generator_errors: Vec<(u64, String)>,
}

/// Sweeps seeds `0..count` (offset by `base`), running the full
/// differential battery on each and shrinking any divergence found.
///
/// The sweep is parallelised on the shared scheduler pool with the engine
/// combinations *outer* and the seeds *inner*: the force-guards that pin a
/// backend/scheduler/shape are process-global, so each combination is
/// pinned once and every seed's verification runs concurrently under it.
/// Fingerprints are thread-invariant by construction, so the outcome is
/// identical to the serial per-seed [`run_differential`] loop — results
/// land in seed order and any shrinking happens serially afterwards.
#[must_use]
pub fn run_corpus(base: u64, count: usize, cfg: &FuzzConfig) -> CorpusOutcome {
    let mut out = CorpusOutcome::default();
    let threads = env_threads();

    // Generate every domain first — pure and guard-free, so seeds fan out
    // on the pool directly.
    type Built = std::result::Result<TriLevelSpec, String>;
    let built: Vec<Built> = {
        let tasks: Vec<Box<dyn FnOnce() -> Built + Send + '_>> = (0..count)
            .map(|i| {
                let seed = base + i as u64;
                Box::new(move || build_domain(seed, cfg).map_err(|e| e.to_string()))
                    as Box<dyn FnOnce() -> Built + Send + '_>
            })
            .collect();
        run_tasks(threads, tasks)
    };
    let mut specs: Vec<(u64, TriLevelSpec)> = Vec::new();
    for (i, b) in built.into_iter().enumerate() {
        let seed = base + i as u64;
        match b {
            Ok(spec) => {
                out.domains += 1;
                specs.push((seed, spec));
            }
            Err(e) => out.generator_errors.push((seed, e)),
        }
    }

    // One engine arm across every seed, under one set of force guards.
    let vc = cfg.verify_config();
    let sweep = |backend: RelChoice, mode: SchedMode, workers: usize, shape: DagShape, vc: &VerifyConfig| -> Vec<EngineOutcome> {
        let _cap = force_worker_cap(usize::MAX);
        let _backend = force_rel_backend(backend);
        let _mode = force_sched_mode(mode);
        let _shape = force_dag_shape(shape);
        let tasks: Vec<Box<dyn FnOnce() -> EngineOutcome + Send + '_>> = specs
            .iter()
            .map(|(_, spec)| {
                Box::new(move || match verify_with_threads(spec, vc, workers) {
                    Ok(o) => Ok(Fingerprint::of(&o)),
                    Err(e) => Err(e.to_string()),
                }) as Box<dyn FnOnce() -> EngineOutcome + Send + '_>
            })
            .collect();
        run_tasks(threads, tasks)
    };

    let auto = RelChoice::AutoAt(REL_DENSE_MAX_DIM);
    let baseline = sweep(auto, SchedMode::Steal, 1, DagShape::Fine, &vc);
    let mut per_seed: Vec<Vec<Divergence>> = vec![Vec::new(); specs.len()];
    for (axis, backend, mode, workers, shape) in engine_combos() {
        let outcomes = sweep(backend, mode, workers, shape, &vc);
        for (j, outcome) in outcomes.iter().enumerate() {
            if let Some(detail) = outcome_difference(&baseline[j], outcome) {
                per_seed[j].push(Divergence {
                    axis: axis.clone(),
                    detail,
                });
            }
        }
    }

    // Budget-capped partial runs: deterministic across engines, and a
    // prefix of the uncapped outcome.
    let mut capped_vc = vc;
    capped_vc.max_nodes = Some(CAPPED_NODES);
    let capped_dense = sweep(RelChoice::Dense, SchedMode::Steal, 1, DagShape::Fine, &capped_vc);
    let capped_sparse = sweep(RelChoice::Sparse, SchedMode::Scoped, 2, DagShape::Fine, &capped_vc);
    for j in 0..specs.len() {
        if let Some(detail) = outcome_difference(&capped_dense[j], &capped_sparse[j]) {
            per_seed[j].push(Divergence {
                axis: "capped:dense/steal/1-vs-sparse/scoped/2".into(),
                detail,
            });
        }
        if let (Ok(capped), Ok(full)) = (&capped_dense[j], &baseline[j]) {
            if let Some(detail) = prefix_violation(capped, full) {
                per_seed[j].push(Divergence {
                    axis: "capped:prefix-of-uncapped".into(),
                    detail,
                });
            }
        }
    }

    #[cfg(feature = "legacy-rewrite")]
    for (j, (seed, spec)) in specs.iter().enumerate() {
        match legacy_divergences(spec) {
            Ok(divs) => per_seed[j].extend(divs),
            Err(e) => out.generator_errors.push((*seed, e.to_string())),
        }
    }

    // Shrink serially, in seed order, exactly as the serial sweep did.
    for ((seed, _), divergences) in specs.iter().zip(per_seed) {
        if divergences.is_empty() {
            continue;
        }
        let shrunk = shrink(*seed, cfg);
        let final_divs = run_differential(*seed, &shrunk)
            .map(|r| r.divergences)
            .unwrap_or(divergences);
        out.failures.push((*seed, shrunk, final_divs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_domain_is_deterministic_and_varies_with_seed() {
        let cfg = FuzzConfig::default();
        let a = build_domain(7, &cfg).unwrap();
        let b = build_domain(7, &cfg).unwrap();
        assert_eq!(a.name, b.name);
        assert_eq!(
            format!("{:?}", a.functions.equations()),
            format!("{:?}", b.functions.equations())
        );
        let c = build_domain(8, &cfg).unwrap();
        assert_ne!(
            format!("{:?}", a.functions.equations()),
            format!("{:?}", c.functions.equations())
        );
    }

    #[test]
    fn generated_domains_verify_sound() {
        // Every obligation except (c) holds by construction; (c) may fail
        // (tautological axioms validate more states than random updates
        // reach) but must do so deterministically.
        let cfg = FuzzConfig::default();
        for seed in [0u64, 1, 2] {
            let spec = build_domain(seed, &cfg).unwrap();
            let outcome = verify_with_threads(&spec, &cfg.verify_config(), 1).unwrap();
            assert!(outcome.grammar_ok, "seed {seed}: {:?}", outcome.grammar_error);
            let r12 = &outcome.report.refine12;
            assert!(r12.is_correct(), "seed {seed}: {}", outcome.report);
            assert!(outcome.report.equations.is_correct(), "seed {seed}");
            assert!(outcome.dynamic.is_correct(), "seed {seed}");
            assert!(outcome.cross_mismatch.is_none(), "seed {seed}");
        }
    }

    #[test]
    fn fixture_roundtrip() {
        let mut cfg = FuzzConfig::default();
        cfg.shape.queries = 3;
        cfg.explore_depth = 2;
        let text = fixture_toml(9001, &cfg);
        let (seed, parsed) = parse_fixture(&text).unwrap();
        assert_eq!(seed, 9001);
        assert_eq!(parsed, cfg);
        assert!(parse_fixture("nonsense\n").is_err());
        assert!(parse_fixture("sorts = 2\n").is_err(), "seed is required");
        assert!(parse_fixture("seed = 1\nbogus = 2\n").is_err());
    }

    #[test]
    fn fuzz_seed_env_parsing() {
        assert_eq!(parse_fuzz_seeds(None, 500), 500);
        assert_eq!(parse_fuzz_seeds(Some("32"), 500), 32);
        assert_eq!(parse_fuzz_seeds(Some("  8 "), 500), 8);
        assert_eq!(parse_fuzz_seeds(Some("0"), 500), 500);
        assert_eq!(parse_fuzz_seeds(Some("banana"), 500), 500);
    }
}
