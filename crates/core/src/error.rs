//! Error type for the tri-level framework.

use std::fmt;

/// Errors raised while assembling or verifying tri-level specifications.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// An underlying logic error.
    Logic(eclectic_logic::LogicError),
    /// An underlying algebraic error.
    Alg(eclectic_algebraic::AlgError),
    /// An underlying RPR error.
    Rpr(eclectic_rpr::RprError),
    /// An underlying refinement error.
    Refine(eclectic_refine::RefineError),
    /// The bundle is missing a required piece.
    Incomplete(String),
    /// The methodology pipeline could not derive an artefact.
    Derivation(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Logic(e) => write!(f, "{e}"),
            SpecError::Alg(e) => write!(f, "{e}"),
            SpecError::Rpr(e) => write!(f, "{e}"),
            SpecError::Refine(e) => write!(f, "{e}"),
            SpecError::Incomplete(m) => write!(f, "incomplete specification: {m}"),
            SpecError::Derivation(m) => write!(f, "derivation failure: {m}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Logic(e) => Some(e),
            SpecError::Alg(e) => Some(e),
            SpecError::Rpr(e) => Some(e),
            SpecError::Refine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<eclectic_logic::LogicError> for SpecError {
    fn from(e: eclectic_logic::LogicError) -> Self {
        SpecError::Logic(e)
    }
}

impl From<eclectic_algebraic::AlgError> for SpecError {
    fn from(e: eclectic_algebraic::AlgError) -> Self {
        SpecError::Alg(e)
    }
}

impl From<eclectic_rpr::RprError> for SpecError {
    fn from(e: eclectic_rpr::RprError) -> Self {
        SpecError::Rpr(e)
    }
}

impl From<eclectic_refine::RefineError> for SpecError {
    fn from(e: eclectic_refine::RefineError) -> Self {
        SpecError::Refine(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SpecError>;
