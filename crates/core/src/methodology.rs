//! The constructive design methodology, mechanised end-to-end.
//!
//! The paper derives each lower level from the *same* structured
//! descriptions (§4.2 for the equations, §5.2 for the procedures: "an
//! update function f will follow the pattern `proc f(x) =
//! (pre-conditions?; effects; side-effects) ∪ ¬pre-conditions?`, which can
//! also be written using the if-then construct"). This module implements
//! the §5.2 half: from an [`InitialState`] and [`StructuredDescription`]s,
//! derive the representation-level schema — relations for the Boolean
//! queries and an `if pre then effects fi` procedure per update. Combined
//! with [`eclectic_algebraic::synthesize`], one structured description
//! yields both `T2` and `T3`.

use std::collections::BTreeMap;

use eclectic_algebraic::{AlgSignature, InitialState, OpKind, StructuredDescription};
use eclectic_logic::{Formula, FuncId, PredId, Signature, Term, VarId};
use eclectic_rpr::{ProcDecl, RelTerm, Schema, Stmt};

use crate::error::{Result, SpecError};

/// Context for translating level-2 artefacts into level-3 syntax.
struct Translator<'a> {
    alg: &'a AlgSignature,
    repr: &'a mut Signature,
    /// Level-2 Boolean query → level-3 relation.
    rel_for_query: BTreeMap<FuncId, PredId>,
}

impl Translator<'_> {
    /// The level-3 variable corresponding to a level-2 variable (same name,
    /// like-named sort), declared on demand.
    fn var(&mut self, v: VarId) -> Result<VarId> {
        let decl = self.alg.logic().var(v);
        let name = decl.name.clone();
        let sort_name = self.alg.logic().sort_name(decl.sort).to_string();
        let sort = self.repr.sort_id(&sort_name).map_err(|_| {
            SpecError::Derivation(format!(
                "representation level lacks sort `{sort_name}` for variable `{name}`"
            ))
        })?;
        Ok(self.repr.add_var(&name, sort)?)
    }

    /// Translates a level-2 parameter term: variables map to like-named
    /// level-3 variables; parameter *names* (constants) map to like-named
    /// level-3 constants, which callers interpret via
    /// [`eclectic_rpr::DbState::bind_named_constants`]. Parameter functions
    /// have no automatic counterpart.
    fn term(&mut self, t: &Term) -> Result<Term> {
        match t {
            Term::Var(v) => Ok(Term::Var(self.var(*v)?)),
            Term::App(f, args) if args.is_empty() => {
                let decl = self.alg.logic().func(*f);
                let name = decl.name.clone();
                let sort_name = self.alg.logic().sort_name(decl.range).to_string();
                let sort = self.repr.sort_id(&sort_name).map_err(|_| {
                    SpecError::Derivation(format!(
                        "representation level lacks sort `{sort_name}` for constant `{name}`"
                    ))
                })?;
                let c = match self.repr.lookup(&name) {
                    Some(eclectic_logic::Symbol::Func(c)) => c,
                    Some(_) => {
                        return Err(SpecError::Derivation(format!(
                            "`{name}` clashes with a non-constant at level 3"
                        )))
                    }
                    None => self.repr.add_constant(&name, sort)?,
                };
                Ok(Term::constant(c))
            }
            Term::App(..) => Err(SpecError::Derivation(
                "parameter functions are not supported in derived procedure arguments".into(),
            )),
        }
    }

    /// Translates a Boolean level-2 term into a level-3 wff:
    /// query applications become relation atoms, the connective functions
    /// become connectives.
    fn bool_term(&mut self, t: &Term) -> Result<Formula> {
        let alg = self.alg;
        match t {
            Term::App(f, args) => {
                if *f == alg.true_fn() {
                    return Ok(Formula::True);
                }
                if *f == alg.false_fn() {
                    return Ok(Formula::False);
                }
                if *f == alg.not_fn() {
                    return Ok(self.bool_term(&args[0])?.not());
                }
                if *f == alg.and_fn() {
                    return Ok(self.bool_term(&args[0])?.and(self.bool_term(&args[1])?));
                }
                if *f == alg.or_fn() {
                    return Ok(self.bool_term(&args[0])?.or(self.bool_term(&args[1])?));
                }
                if *f == alg.imp_fn() {
                    return Ok(self.bool_term(&args[0])?.implies(self.bool_term(&args[1])?));
                }
                if *f == alg.iff_fn() {
                    return Ok(self.bool_term(&args[0])?.iff(self.bool_term(&args[1])?));
                }
                if alg.param_sorts().any(|s| alg.eq_fn(s) == Some(*f)) {
                    return Ok(Formula::Eq(self.term(&args[0])?, self.term(&args[1])?));
                }
                if alg.kind(*f) == OpKind::Query {
                    let rel = self.rel_for_query.get(f).copied().ok_or_else(|| {
                        SpecError::Derivation(format!(
                            "query `{}` has no relation mapping",
                            alg.logic().func(*f).name
                        ))
                    })?;
                    // Drop the state argument; translate the parameters.
                    let params = &args[..args.len() - 1];
                    let targs = params
                        .iter()
                        .map(|a| self.term(a))
                        .collect::<Result<Vec<_>>>()?;
                    return Ok(Formula::Pred(rel, targs));
                }
                Err(SpecError::Derivation(format!(
                    "cannot translate term rooted at `{}`",
                    alg.logic().func(*f).name
                )))
            }
            Term::Var(_) => Err(SpecError::Derivation(
                "bare Boolean variables are not supported".into(),
            )),
        }
    }

    /// Translates a level-2 condition (the equation antecedent fragment)
    /// into a level-3 wff.
    fn condition(&mut self, f: &Formula) -> Result<Formula> {
        Ok(match f {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Not(p) => self.condition(p)?.not(),
            Formula::And(p, q) => self.condition(p)?.and(self.condition(q)?),
            Formula::Or(p, q) => self.condition(p)?.or(self.condition(q)?),
            Formula::Implies(p, q) => self.condition(p)?.implies(self.condition(q)?),
            Formula::Iff(p, q) => self.condition(p)?.iff(self.condition(q)?),
            Formula::Forall(x, p) => Formula::forall(self.var(*x)?, self.condition(p)?),
            Formula::Exists(x, p) => Formula::exists(self.var(*x)?, self.condition(p)?),
            Formula::Eq(a, b) => {
                // Boolean comparisons become wff equivalences; parameter
                // comparisons become equalities.
                let asort = a.sort(self.alg.logic())?;
                if asort == self.alg.bool_sort() {
                    let fa = self.bool_term(a)?;
                    let fb = self.bool_term(b)?;
                    match (fa, fb) {
                        (x, Formula::True) | (Formula::True, x) => x,
                        (x, Formula::False) | (Formula::False, x) => x.not(),
                        (x, y) => x.iff(y),
                    }
                } else {
                    Formula::Eq(self.term(a)?, self.term(b)?)
                }
            }
            Formula::Pred(..) | Formula::Possibly(..) | Formula::Necessarily(..) => {
                return Err(SpecError::Derivation(
                    "invalid construct in a structured-description precondition".into(),
                ))
            }
        })
    }
}

/// Derives the representation-level schema from structured descriptions.
///
/// `relation_names` maps each Boolean query name to the relation name to
/// declare (conventionally uppercase, per the paper).
///
/// Returns the extended representation signature together with the schema.
///
/// # Errors
/// Returns [`SpecError::Derivation`] when an artefact cannot be expressed
/// (non-Boolean effects, non-variable effect arguments, …).
pub fn derive_schema(
    alg: &AlgSignature,
    initial: &InitialState,
    descriptions: &[StructuredDescription],
    relation_names: &[(&str, &str)],
) -> Result<Schema> {
    initial.validate(alg)?;
    for d in descriptions {
        d.validate(alg)?;
    }

    let mut repr = Signature::new();
    // Sorts: every level-2 parameter sort except Bool, same names.
    for s in alg.param_sorts() {
        let name = alg.logic().sort_name(s);
        if name != "Bool" {
            repr.add_sort(name)?;
        }
    }
    // Relations: one per Boolean query.
    let mut rel_for_query = BTreeMap::new();
    let mut relations = Vec::new();
    for (qname, rname) in relation_names {
        let q = alg
            .logic()
            .func_id(qname)
            .map_err(|e| SpecError::Derivation(format!("{e}")))?;
        if alg.kind(q) != OpKind::Query || alg.logic().func(q).range != alg.bool_sort() {
            return Err(SpecError::Derivation(format!(
                "`{qname}` is not a Boolean query"
            )));
        }
        let sorts = alg
            .query_params(q)?
            .iter()
            .map(|&s| repr.sort_id(alg.logic().sort_name(s)))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let rel = repr.add_db_predicate(rname, &sorts)?;
        rel_for_query.insert(q, rel);
        relations.push(rel);
    }
    for q in alg.queries() {
        if !rel_for_query.contains_key(&q) {
            return Err(SpecError::Derivation(format!(
                "query `{}` has no relation mapping",
                alg.logic().func(q).name
            )));
        }
    }

    let mut procs = Vec::new();

    // initiate: empty (or full) relational assignments per default.
    {
        let tr = Translator {
            alg,
            repr: &mut repr,
            rel_for_query: rel_for_query.clone(),
        };
        let mut body: Option<Stmt> = None;
        for (q, default) in &initial.defaults {
            let rel = tr.rel_for_query[q];
            let wff = if *default == alg.true_term() {
                Formula::True
            } else if *default == alg.false_term() {
                Formula::False
            } else {
                return Err(SpecError::Derivation(
                    "only True/False initial defaults can be derived".into(),
                ));
            };
            let domain = tr.repr.pred(rel).domain.clone();
            let vars = domain
                .iter()
                .map(|&s| {
                    let hint = tr.repr.sort_name(s).chars().next().unwrap_or('x').to_string();
                    tr.repr.fresh_var(&hint, s)
                })
                .collect();
            let stmt = Stmt::RelAssign(rel, RelTerm { vars, wff });
            body = Some(match body {
                None => stmt,
                Some(prev) => prev.seq(stmt),
            });
        }
        let body = body.ok_or_else(|| {
            SpecError::Derivation("initial state has no query defaults".into())
        })?;
        procs.push(ProcDecl {
            name: alg.logic().func(initial.update).name.clone(),
            params: Vec::new(),
            body,
        });
    }

    // One procedure per description: if pre then effects fi.
    for d in descriptions {
        let mut tr = Translator {
            alg,
            repr: &mut repr,
            rel_for_query: rel_for_query.clone(),
        };
        let params = d
            .params
            .iter()
            .map(|&v| tr.var(v))
            .collect::<Result<Vec<_>>>()?;
        let pre = tr.condition(&d.precondition)?.simplify();
        let mut effects: Option<Stmt> = None;
        for e in d.all_effects() {
            let rel = tr.rel_for_query.get(&e.query).copied().ok_or_else(|| {
                SpecError::Derivation("effect on an unmapped query".into())
            })?;
            let args = e
                .args
                .iter()
                .map(|a| tr.term(a))
                .collect::<Result<Vec<_>>>()?;
            let stmt = if e.value == alg.true_term() {
                Stmt::Insert(rel, args)
            } else if e.value == alg.false_term() {
                Stmt::Delete(rel, args)
            } else {
                return Err(SpecError::Derivation(
                    "only True/False effect values can be derived into insert/delete".into(),
                ));
            };
            effects = Some(match effects {
                None => stmt,
                Some(prev) => prev.seq(stmt),
            });
        }
        let effects = effects.ok_or_else(|| {
            SpecError::Derivation(format!(
                "update `{}` has no effects",
                alg.logic().func(d.update).name
            ))
        })?;
        let body = if pre == Formula::True {
            effects
        } else {
            effects.guarded_by(pre)
        };
        procs.push(ProcDecl {
            name: alg.logic().func(d.update).name.clone(),
            params,
            body,
        });
    }

    Ok(Schema::new(std::sync::Arc::new(repr), relations, procs)?)
}
