//! The paper's running example: the courses/students database, specified at
//! all three levels (§3.2, §4.2, §5.2).

use std::sync::Arc;

use eclectic_algebraic::{
    parse_equations, synthesize, AlgSignature, AlgSpec, Effect, InitialState,
    StructuredDescription,
};
use eclectic_logic::{parse_formula, Formula, Signature, Term, Theory};
use eclectic_refine::{InterpretationI, InterpretationK, QueryImpl};
use eclectic_rpr::{parse_schema, QueryDef, Schema, PAPER_COURSES_SCHEMA};

use crate::error::Result;
use crate::spec::{CarrierSpec, TriLevelSpec};

/// Which functions-level equation set to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquationStyle {
    /// The paper's hand-written equations 1–15 (§4.2), which exploit the
    /// static constraint for simplification.
    Paper,
    /// Equations synthesised mechanically from the structured descriptions
    /// (the §4.2 methodology run by [`eclectic_algebraic::synthesize`]).
    Synthesized,
}

/// Configuration of the courses domain.
#[derive(Debug, Clone)]
pub struct CoursesConfig {
    /// Student carrier.
    pub students: Vec<String>,
    /// Course carrier.
    pub courses: Vec<String>,
    /// Equation set.
    pub style: EquationStyle,
}

impl Default for CoursesConfig {
    fn default() -> Self {
        CoursesConfig {
            students: vec!["ana".into(), "bob".into()],
            courses: vec!["db".into(), "logic".into()],
            style: EquationStyle::Paper,
        }
    }
}

impl CoursesConfig {
    /// A configuration with the given carrier sizes (`s1`, `s2`, … and
    /// `c1`, `c2`, …) — handy for scaling benches.
    #[must_use]
    pub fn sized(students: usize, courses: usize, style: EquationStyle) -> Self {
        CoursesConfig {
            students: (1..=students).map(|i| format!("s{i}")).collect(),
            courses: (1..=courses).map(|i| format!("c{i}")).collect(),
            style,
        }
    }

    fn carriers(&self) -> CarrierSpec {
        let students: Vec<&str> = self.students.iter().map(String::as_str).collect();
        let courses: Vec<&str> = self.courses.iter().map(String::as_str).collect();
        CarrierSpec::new(&[("student", &students), ("course", &courses)])
    }
}

/// The information-level theory `T1` of §3.2: language with sorts
/// `student`/`course`, db-predicates `offered`/`takes`, and the two axioms.
///
/// # Errors
/// Propagates signature/parse errors (none for valid configs).
pub fn information_level() -> Result<Theory> {
    let mut sig = Signature::new();
    let student = sig.add_sort("student")?;
    let course = sig.add_sort("course")?;
    sig.add_db_predicate("offered", &[course])?;
    sig.add_db_predicate("takes", &[student, course])?;
    sig.add_var("s", student)?;
    sig.add_var("c", course)?;

    // (1) a student cannot take a course that is not being offered.
    let static_ax = parse_formula(
        &mut sig,
        "~exists s:student. exists c:course. takes(s, c) & ~offered(c)",
    )?;
    // (2) the number of courses taken by a student cannot drop to zero.
    let trans_ax = parse_formula(
        &mut sig,
        "~exists s:student. exists c:course. dia (takes(s, c) & dia ~exists c':course. takes(s, c'))",
    )?;

    let mut theory = Theory::new(Arc::new(sig));
    theory.add_axiom("static-1", static_ax)?;
    theory.add_axiom("transition-2", trans_ax)?;
    Ok(theory)
}

/// The algebraic signature of §4.2 (queries `offered`/`takes`, updates
/// `initiate`/`offer`/`cancel`/`enroll`/`transfer`) over the given carriers.
///
/// # Errors
/// Propagates signature errors.
pub fn functions_signature(config: &CoursesConfig) -> Result<AlgSignature> {
    let mut a = AlgSignature::new()?;
    let students: Vec<&str> = config.students.iter().map(String::as_str).collect();
    let courses: Vec<&str> = config.courses.iter().map(String::as_str).collect();
    let student = a.add_param_sort("student", &students)?;
    let course = a.add_param_sort("course", &courses)?;
    a.add_query("offered", &[course], None)?;
    a.add_query("takes", &[student, course], None)?;
    a.add_update("initiate", &[], false)?;
    a.add_update("offer", &[course], true)?;
    a.add_update("cancel", &[course], true)?;
    a.add_update("enroll", &[student, course], true)?;
    a.add_update("transfer", &[student, course, course], true)?;
    a.add_param_var("s", student)?;
    a.add_param_var("s'", student)?;
    a.add_param_var("c", course)?;
    a.add_param_var("c'", course)?;
    a.add_param_var("c''", course)?;
    Ok(a)
}

/// The paper's equations 1–15 (§4.2), with equation 6 split into its two
/// conditional forms.
pub const PAPER_EQUATIONS: &[(&str, &str)] = &[
    ("eq1", "offered(c, initiate) = False"),
    ("eq2", "takes(s, c, initiate) = False"),
    ("eq3", "offered(c, offer(c, U)) = True"),
    ("eq4", "c != c' ==> offered(c, offer(c', U)) = offered(c, U)"),
    ("eq5", "takes(s, c, offer(c', U)) = takes(s, c, U)"),
    (
        "eq6a",
        "exists s:student. takes(s, c, U) = True ==> offered(c, cancel(c, U)) = True",
    ),
    (
        "eq6b",
        "~exists s:student. takes(s, c, U) = True ==> offered(c, cancel(c, U)) = False",
    ),
    ("eq7", "c != c' ==> offered(c, cancel(c', U)) = offered(c, U)"),
    ("eq8", "takes(s, c, cancel(c', U)) = takes(s, c, U)"),
    ("eq9", "offered(c, enroll(s, c', U)) = offered(c, U)"),
    ("eq10", "takes(s, c, enroll(s, c, U)) = offered(c, U)"),
    (
        "eq11",
        "~(s = s' & c = c') ==> takes(s, c, enroll(s', c', U)) = takes(s, c, U)",
    ),
    ("eq12", "offered(c, transfer(s, c', c'', U)) = offered(c, U)"),
    (
        "eq13",
        "takes(s, c', transfer(s, c, c', U)) = or(and(offered(c', U), and(takes(s, c, U), not(takes(s, c', U)))), takes(s, c', U))",
    ),
    (
        "eq14",
        "takes(s, c, transfer(s, c, c', U)) = and(takes(s, c, U), not(and(and(takes(s, c, U), not(takes(s, c', U))), offered(c', U))))",
    ),
    (
        "eq15",
        "s != s' | (c != c' & c != c'') ==> takes(s, c, transfer(s', c', c'', U)) = takes(s, c, U)",
    ),
];

/// The §4.2 structured descriptions of the four updates, plus the
/// initial-state defaults.
///
/// # Errors
/// Propagates signature/parse errors.
pub fn structured_descriptions(
    a: &mut AlgSignature,
) -> Result<(InitialState, Vec<StructuredDescription>)> {
    let offered = a.logic().func_id("offered")?;
    let takes = a.logic().func_id("takes")?;
    let initiate = a.logic().func_id("initiate")?;
    let offer = a.logic().func_id("offer")?;
    let cancel = a.logic().func_id("cancel")?;
    let enroll = a.logic().func_id("enroll")?;
    let transfer = a.logic().func_id("transfer")?;
    let s = a.logic().var_id("s")?;
    let c = a.logic().var_id("c")?;
    let c1 = a.logic().var_id("c'")?;

    let initial = InitialState {
        update: initiate,
        defaults: vec![(offered, a.false_term()), (takes, a.false_term())],
    };

    let d_offer = StructuredDescription {
        update: offer,
        params: vec![c],
        comment: "course c is added as a new course".into(),
        precondition: Formula::True,
        effects: vec![Effect {
            query: offered,
            args: vec![Term::Var(c)],
            value: a.true_term(),
        }],
        side_effects: vec![],
    };

    let pre_cancel = parse_formula(
        a.logic_mut(),
        "forall s:student. takes(s, c, U) = False",
    )?;
    let d_cancel = StructuredDescription {
        update: cancel,
        params: vec![c],
        comment: "course c is cancelled, providing that no student is taking it".into(),
        precondition: pre_cancel,
        effects: vec![Effect {
            query: offered,
            args: vec![Term::Var(c)],
            value: a.false_term(),
        }],
        side_effects: vec![],
    };

    let pre_enroll = parse_formula(a.logic_mut(), "offered(c, U) = True")?;
    let d_enroll = StructuredDescription {
        update: enroll,
        params: vec![s, c],
        comment: "student s enrolls in course c, which must be offered".into(),
        precondition: pre_enroll,
        effects: vec![Effect {
            query: takes,
            args: vec![Term::Var(s), Term::Var(c)],
            value: a.true_term(),
        }],
        side_effects: vec![],
    };

    let pre_transfer = parse_formula(
        a.logic_mut(),
        "takes(s, c, U) = True & takes(s, c', U) = False & offered(c', U) = True",
    )?;
    let d_transfer = StructuredDescription {
        update: transfer,
        params: vec![s, c, c1],
        comment: "student s transfers from course c to course c'".into(),
        precondition: pre_transfer,
        effects: vec![
            Effect {
                query: takes,
                args: vec![Term::Var(s), Term::Var(c)],
                value: a.false_term(),
            },
            Effect {
                query: takes,
                args: vec![Term::Var(s), Term::Var(c1)],
                value: a.true_term(),
            },
        ],
        side_effects: vec![],
    };

    Ok((initial, vec![d_offer, d_cancel, d_enroll, d_transfer]))
}

/// The functions-level specification `T2` with the chosen equation style.
///
/// # Errors
/// Propagates signature/parse/synthesis errors.
pub fn functions_level(config: &CoursesConfig) -> Result<AlgSpec> {
    let mut a = functions_signature(config)?;
    let eqs = match config.style {
        EquationStyle::Paper => parse_equations(&mut a, PAPER_EQUATIONS)?,
        EquationStyle::Synthesized => {
            let (initial, descs) = structured_descriptions(&mut a)?;
            synthesize(&mut a, &initial, &descs)?
        }
    };
    Ok(AlgSpec::new(a, eqs)?)
}

/// The representation-level schema `T3` of §5.2, parsed from the canonical
/// text, with domains for the given carriers.
///
/// # Errors
/// Propagates parse errors.
pub fn representation_level(config: &CoursesConfig) -> Result<(Schema, Arc<eclectic_logic::Domains>)> {
    let mut sig = Signature::new();
    sig.add_sort("student")?;
    sig.add_sort("course")?;
    let (rels, procs) = parse_schema(&mut sig, PAPER_COURSES_SCHEMA)?;
    let domains = Arc::new(config.carriers().domains_for(&sig)?);
    let schema = Schema::new(Arc::new(sig), rels, procs)?;
    Ok((schema, domains))
}

/// Assembles the full tri-level courses specification.
///
/// # Errors
/// Propagates construction errors from all three levels.
pub fn courses(config: &CoursesConfig) -> Result<TriLevelSpec> {
    let information = information_level()?;
    let info_domains = Arc::new(config.carriers().domains_for(&information.signature)?);
    let functions = functions_level(config)?;
    let (representation, repr_domains) = representation_level(config)?;

    let interp_i = InterpretationI::new(
        &information.signature,
        functions.signature(),
        &[("offered", "offered"), ("takes", "takes")],
    )?;

    let rsig = representation.signature().clone();
    let s = rsig.var_id("s")?;
    let c = rsig.var_id("c")?;
    let offered_rel = rsig.pred_id("OFFERED")?;
    let takes_rel = rsig.pred_id("TAKES")?;
    let q_offered = QueryDef::new(
        &rsig,
        "offered",
        vec![c],
        Formula::Pred(offered_rel, vec![Term::Var(c)]),
    )?;
    let q_takes = QueryDef::new(
        &rsig,
        "takes",
        vec![s, c],
        Formula::Pred(takes_rel, vec![Term::Var(s), Term::Var(c)]),
    )?;
    let interp_k = InterpretationK::new(
        &functions,
        &representation,
        vec![
            ("offered", QueryImpl::Bool(q_offered)),
            ("takes", QueryImpl::Bool(q_takes)),
        ],
        &[
            ("initiate", "initiate"),
            ("offer", "offer"),
            ("cancel", "cancel"),
            ("enroll", "enroll"),
            ("transfer", "transfer"),
        ],
    )?;

    let repr_template = eclectic_rpr::DbState::new(
        representation.signature().clone(),
        repr_domains.clone(),
    );
    let spec = TriLevelSpec {
        name: "courses".into(),
        information,
        info_domains,
        functions,
        representation,
        repr_domains,
        interp_i,
        interp_k,
        repr_template,
    };
    spec.check_shape()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclectic_algebraic::Rewriter;

    #[test]
    fn assembles_both_styles() {
        for style in [EquationStyle::Paper, EquationStyle::Synthesized] {
            let config = CoursesConfig {
                style,
                ..CoursesConfig::default()
            };
            let spec = courses(&config).unwrap();
            assert_eq!(spec.information.axioms.len(), 2);
            assert_eq!(spec.functions.signature().queries().count(), 2);
            assert_eq!(spec.representation.procs().len(), 5);
        }
    }

    #[test]
    fn paper_equations_reproduce_section_42() {
        let config = CoursesConfig::default();
        let spec = functions_level(&config).unwrap();
        // 16 equations (the paper's 15 with eq6 split in two).
        assert_eq!(spec.equations().len(), 16);
        let mut rw = Rewriter::new(&spec);
        let mut lsig = spec.signature().logic().clone();
        let t = eclectic_logic::parse_term(
            &mut lsig,
            "offered(db, cancel(db, enroll(ana, db, offer(db, initiate))))",
        )
        .unwrap();
        assert!(rw.eval_bool(&t).unwrap());
        let t = eclectic_logic::parse_term(
            &mut lsig,
            "takes(ana, logic, transfer(ana, db, logic, enroll(ana, db, offer(logic, offer(db, initiate)))))",
        )
        .unwrap();
        assert!(rw.eval_bool(&t).unwrap());
    }

    #[test]
    fn both_styles_agree_observationally() {
        let paper = functions_level(&CoursesConfig::default()).unwrap();
        let synth = functions_level(&CoursesConfig {
            style: EquationStyle::Synthesized,
            ..CoursesConfig::default()
        })
        .unwrap();
        // Same queries on the same trace shape must agree. Compare over all
        // traces of up to 3 updates. (The two signatures have identical
        // layouts by construction, so terms are interchangeable.)
        let mut rw_p = Rewriter::new(&paper);
        let mut rw_s = Rewriter::new(&synth);
        let sig = paper.signature().clone();
        for t in eclectic_algebraic::induction::state_terms(&sig, 2).unwrap() {
            for q in sig.queries() {
                for params in
                    eclectic_algebraic::induction::param_tuples(&sig, &sig.query_params(q).unwrap())
                        .unwrap()
                {
                    let vp = rw_p.eval_query(q, &params, &t).unwrap();
                    let vs = rw_s.eval_query(q, &params, &t).unwrap();
                    assert_eq!(vp, vs, "disagreement on {q:?} {params:?} at {t:?}");
                }
            }
        }
    }
}
