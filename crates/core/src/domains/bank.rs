//! The bank-accounts domain: accounts with saturating natural-number
//! balances.
//!
//! This domain exercises features the courses example does not: parameter
//! *functions* (`succ`/`prd` on the amount sort, specified by ground
//! equations at level 2 and by interpreted function tables at level 3),
//! set-oriented relational assignment in procedures (the paper's §5.2
//! remark on set- vs tuple-oriented styles), and an absorbing-state
//! transition constraint ("a closed account stays closed").

use std::sync::Arc;

use eclectic_algebraic::{AlgSignature, AlgSpec, ConditionalEquation};
use eclectic_logic::{parse_formula, Domains, Elem, Formula, Signature, Term, Theory};
use eclectic_refine::{InterpretationI, InterpretationK, QueryImpl};
use eclectic_rpr::{parse_schema, DbState, QueryDef, Schema};

use crate::error::Result;
use crate::spec::{CarrierSpec, TriLevelSpec};

/// Configuration of the bank domain.
#[derive(Debug, Clone)]
pub struct BankConfig {
    /// Account carrier.
    pub accounts: Vec<String>,
    /// Number of representable amounts (balances saturate at the top).
    pub amounts: usize,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            accounts: vec!["acc1".into(), "acc2".into()],
            amounts: 4,
        }
    }
}

impl BankConfig {
    /// Carrier sizes for scaling.
    #[must_use]
    pub fn sized(accounts: usize, amounts: usize) -> Self {
        BankConfig {
            accounts: (1..=accounts).map(|i| format!("acc{i}")).collect(),
            amounts,
        }
    }

    fn amount_names(&self) -> Vec<String> {
        (0..self.amounts).map(|i| format!("n{i}")).collect()
    }

    fn carriers(&self) -> CarrierSpec {
        let accounts: Vec<&str> = self.accounts.iter().map(String::as_str).collect();
        let amounts = self.amount_names();
        let amounts: Vec<&str> = amounts.iter().map(String::as_str).collect();
        CarrierSpec::new(&[("account", &accounts), ("nat", &amounts)])
    }
}

/// The information-level theory: open/closed/balance db-predicates with
/// four static axioms and the absorbing-closure transition axiom.
///
/// # Errors
/// Propagates signature/parse errors.
pub fn information_level() -> Result<Theory> {
    let mut sig = Signature::new();
    let account = sig.add_sort("account")?;
    let nat = sig.add_sort("nat")?;
    sig.add_db_predicate("open", &[account])?;
    sig.add_db_predicate("closed", &[account])?;
    sig.add_db_predicate("bal", &[account, nat])?;
    sig.add_var("a", account)?;
    sig.add_var("n", nat)?;

    let st_excl = parse_formula(&mut sig, "~exists a:account. open(a) & closed(a)")?;
    let st_bal_open =
        parse_formula(&mut sig, "forall a:account. forall n:nat. bal(a, n) -> open(a)")?;
    let st_open_bal =
        parse_formula(&mut sig, "forall a:account. open(a) -> exists n:nat. bal(a, n)")?;
    let st_functional = parse_formula(
        &mut sig,
        "forall a:account. forall n:nat. forall n':nat. bal(a, n) & bal(a, n') -> n = n'",
    )?;
    let tr_closed = parse_formula(&mut sig, "forall a:account. closed(a) -> box closed(a)")?;

    let mut theory = Theory::new(Arc::new(sig));
    theory.add_axiom("static-open-xor-closed", st_excl)?;
    theory.add_axiom("static-balance-implies-open", st_bal_open)?;
    theory.add_axiom("static-open-has-balance", st_open_bal)?;
    theory.add_axiom("static-balance-functional", st_functional)?;
    theory.add_axiom("transition-closed-absorbing", tr_closed)?;
    Ok(theory)
}

/// The algebraic signature, including the `succ`/`prd` parameter functions.
///
/// # Errors
/// Propagates signature errors.
pub fn functions_signature(config: &BankConfig) -> Result<AlgSignature> {
    let mut a = AlgSignature::new()?;
    let accounts: Vec<&str> = config.accounts.iter().map(String::as_str).collect();
    let amount_names = config.amount_names();
    let amounts: Vec<&str> = amount_names.iter().map(String::as_str).collect();
    let account = a.add_param_sort("account", &accounts)?;
    let nat = a.add_param_sort("nat", &amounts)?;
    a.add_param_func("succ", &[nat], nat)?;
    a.add_param_func("prd", &[nat], nat)?;
    a.add_query("is_open", &[account], None)?;
    a.add_query("is_closed", &[account], None)?;
    a.add_query("bal_is", &[account, nat], None)?;
    a.add_update("initiate", &[], false)?;
    a.add_update("open_acct", &[account], true)?;
    a.add_update("close_acct", &[account], true)?;
    a.add_update("deposit", &[account], true)?;
    a.add_update("withdraw", &[account], true)?;
    a.add_param_var("a", account)?;
    a.add_param_var("a'", account)?;
    a.add_param_var("n", nat)?;
    a.add_param_var("n'", nat)?;
    a.add_param_var("m", nat)?;
    Ok(a)
}

/// The functions-level specification with hand-written equations (including
/// the saturating `succ`/`prd` tables as ground equations).
///
/// # Errors
/// Propagates parse/validation errors.
pub fn functions_level(config: &BankConfig) -> Result<AlgSpec> {
    let mut a = functions_signature(config)?;
    let names = config.amount_names();

    // Saturating successor/predecessor tables.
    let mut eqs: Vec<ConditionalEquation> = Vec::new();
    for i in 0..config.amounts {
        let cur = &names[i];
        let next = &names[(i + 1).min(config.amounts - 1)];
        let prev = &names[i.saturating_sub(1)];
        eqs.push(eclectic_algebraic::parse_equation(
            &mut a,
            format!("succ_{cur}"),
            &format!("succ({cur}) = {next}"),
        )?);
        eqs.push(eclectic_algebraic::parse_equation(
            &mut a,
            format!("prd_{cur}"),
            &format!("prd({cur}) = {prev}"),
        )?);
    }

    const PRE_OPEN: &str = "is_open(a, U) = False & is_closed(a, U) = False";
    const PRE_CLOSE: &str = "is_open(a, U) = True & bal_is(a, n0, U) = True";
    const PRE_DEP: &str =
        "is_open(a, U) = True & (exists m:nat. (bal_is(a, m, U) = True & succ(m) != m))";
    const PRE_WDR: &str =
        "is_open(a, U) = True & (exists m:nat. (bal_is(a, m, U) = True & prd(m) != m))";
    let new_dep = "exists m:nat. (bal_is(a, m, U) = True & n = succ(m))";
    let new_wdr = "exists m:nat. (bal_is(a, m, U) = True & n = prd(m))";

    let texts: Vec<(String, String)> = vec![
        // initiate.
        ("i1".into(), "is_open(a, initiate) = False".into()),
        ("i2".into(), "is_closed(a, initiate) = False".into()),
        ("i3".into(), "bal_is(a, n, initiate) = False".into()),
        // open_acct.
        (
            "o1".into(),
            format!("{PRE_OPEN} ==> is_open(a, open_acct(a, U)) = True"),
        ),
        (
            "o2".into(),
            format!("~({PRE_OPEN}) ==> is_open(a, open_acct(a, U)) = is_open(a, U)"),
        ),
        (
            "o3".into(),
            "a != a' ==> is_open(a, open_acct(a', U)) = is_open(a, U)".into(),
        ),
        (
            "o4".into(),
            "is_closed(a, open_acct(a', U)) = is_closed(a, U)".into(),
        ),
        (
            "o5".into(),
            format!("{PRE_OPEN} & n = n0 ==> bal_is(a, n, open_acct(a, U)) = True"),
        ),
        (
            "o6".into(),
            format!("{PRE_OPEN} & n != n0 ==> bal_is(a, n, open_acct(a, U)) = bal_is(a, n, U)"),
        ),
        (
            "o7".into(),
            format!("~({PRE_OPEN}) ==> bal_is(a, n, open_acct(a, U)) = bal_is(a, n, U)"),
        ),
        (
            "o8".into(),
            "a != a' ==> bal_is(a, n, open_acct(a', U)) = bal_is(a, n, U)".into(),
        ),
        // close_acct.
        (
            "c1".into(),
            format!("{PRE_CLOSE} ==> is_open(a, close_acct(a, U)) = False"),
        ),
        (
            "c2".into(),
            format!("~({PRE_CLOSE}) ==> is_open(a, close_acct(a, U)) = is_open(a, U)"),
        ),
        (
            "c3".into(),
            "a != a' ==> is_open(a, close_acct(a', U)) = is_open(a, U)".into(),
        ),
        (
            "c4".into(),
            format!("{PRE_CLOSE} ==> is_closed(a, close_acct(a, U)) = True"),
        ),
        (
            "c5".into(),
            format!("~({PRE_CLOSE}) ==> is_closed(a, close_acct(a, U)) = is_closed(a, U)"),
        ),
        (
            "c6".into(),
            "a != a' ==> is_closed(a, close_acct(a', U)) = is_closed(a, U)".into(),
        ),
        (
            "c7".into(),
            format!("{PRE_CLOSE} & n = n0 ==> bal_is(a, n, close_acct(a, U)) = False"),
        ),
        (
            "c8".into(),
            format!("{PRE_CLOSE} & n != n0 ==> bal_is(a, n, close_acct(a, U)) = bal_is(a, n, U)"),
        ),
        (
            "c9".into(),
            format!("~({PRE_CLOSE}) ==> bal_is(a, n, close_acct(a, U)) = bal_is(a, n, U)"),
        ),
        (
            "c10".into(),
            "a != a' ==> bal_is(a, n, close_acct(a', U)) = bal_is(a, n, U)".into(),
        ),
        // deposit.
        (
            "d1".into(),
            format!("{PRE_DEP} & ({new_dep}) ==> bal_is(a, n, deposit(a, U)) = True"),
        ),
        (
            "d2".into(),
            format!("{PRE_DEP} & ~({new_dep}) ==> bal_is(a, n, deposit(a, U)) = False"),
        ),
        (
            "d3".into(),
            format!("~({PRE_DEP}) ==> bal_is(a, n, deposit(a, U)) = bal_is(a, n, U)"),
        ),
        (
            "d4".into(),
            "a != a' ==> bal_is(a, n, deposit(a', U)) = bal_is(a, n, U)".into(),
        ),
        (
            "d5".into(),
            "is_open(a, deposit(a', U)) = is_open(a, U)".into(),
        ),
        (
            "d6".into(),
            "is_closed(a, deposit(a', U)) = is_closed(a, U)".into(),
        ),
        // withdraw.
        (
            "w1".into(),
            format!("{PRE_WDR} & ({new_wdr}) ==> bal_is(a, n, withdraw(a, U)) = True"),
        ),
        (
            "w2".into(),
            format!("{PRE_WDR} & ~({new_wdr}) ==> bal_is(a, n, withdraw(a, U)) = False"),
        ),
        (
            "w3".into(),
            format!("~({PRE_WDR}) ==> bal_is(a, n, withdraw(a, U)) = bal_is(a, n, U)"),
        ),
        (
            "w4".into(),
            "a != a' ==> bal_is(a, n, withdraw(a', U)) = bal_is(a, n, U)".into(),
        ),
        (
            "w5".into(),
            "is_open(a, withdraw(a', U)) = is_open(a, U)".into(),
        ),
        (
            "w6".into(),
            "is_closed(a, withdraw(a', U)) = is_closed(a, U)".into(),
        ),
    ];
    for (name, text) in &texts {
        eqs.push(eclectic_algebraic::parse_equation(&mut a, name.clone(), text)?);
    }
    Ok(AlgSpec::new(a, eqs)?)
}

/// The representation-level schema text (set-oriented deposit/withdraw).
pub const BANK_SCHEMA: &str = r"
schema
  OPEN(account);
  CLOSED(account);
  BAL(account, nat);

  proc initiate() = (OPEN := empty ; (CLOSED := empty ; BAL := empty))

  proc open_acct(a: account) =
    if ~OPEN(a) & ~CLOSED(a)
    then (insert OPEN(a); insert BAL(a, zero)) fi

  proc close_acct(a: account) =
    if OPEN(a) & BAL(a, zero)
    then (delete OPEN(a); (insert CLOSED(a); delete BAL(a, zero))) fi

  proc deposit(a: account) =
    if OPEN(a) & exists m:nat. (BAL(a, m) & ~(succ(m) = m))
    then BAL := {(x: account, n: nat) |
                 (BAL(x, n) & ~(x = a)) |
                 (x = a & exists m:nat. (BAL(a, m) & n = succ(m)))} fi

  proc withdraw(a: account) =
    if OPEN(a) & exists m:nat. (BAL(a, m) & ~(prd(m) = m))
    then BAL := {(x: account, n: nat) |
                 (BAL(x, n) & ~(x = a)) |
                 (x = a & exists m:nat. (BAL(a, m) & n = prd(m)))} fi
end-schema
";

/// Parses the schema and builds the template state: domains plus the
/// interpreted `succ`/`prd` tables and the `zero` constant.
///
/// # Errors
/// Propagates parse errors.
pub fn representation_level(
    config: &BankConfig,
) -> Result<(Schema, Arc<Domains>, DbState)> {
    let mut sig = Signature::new();
    let account = sig.add_sort("account")?;
    let nat = sig.add_sort("nat")?;
    let _ = account;
    let zero = sig.add_constant("zero", nat)?;
    let succ = sig.add_func("succ", &[nat], nat)?;
    let prd = sig.add_func("prd", &[nat], nat)?;
    let (rels, procs) = parse_schema(&mut sig, BANK_SCHEMA)?;
    let domains = Arc::new(config.carriers().domains_for(&sig)?);
    let sig = Arc::new(sig);
    let schema = Schema::new(sig.clone(), rels, procs)?;

    let mut template = DbState::new(sig, domains.clone());
    template.set_scalar(zero, Elem(0))?;
    let top = config.amounts as u32 - 1;
    for i in 0..config.amounts as u32 {
        template
            .structure_mut()
            .set_func(succ, vec![Elem(i)], Elem((i + 1).min(top)))?;
        template
            .structure_mut()
            .set_func(prd, vec![Elem(i)], Elem(i.saturating_sub(1)))?;
    }
    Ok((schema, domains, template))
}

/// Assembles the full tri-level bank specification; the bundle's template
/// state carries the interpreted arithmetic tables.
///
/// # Errors
/// Propagates construction errors from all three levels.
pub fn bank(config: &BankConfig) -> Result<TriLevelSpec> {
    let information = information_level()?;
    let info_domains = Arc::new(config.carriers().domains_for(&information.signature)?);
    let functions = functions_level(config)?;
    let (representation, repr_domains, template) = representation_level(config)?;

    let interp_i = InterpretationI::new(
        &information.signature,
        functions.signature(),
        &[
            ("open", "is_open"),
            ("closed", "is_closed"),
            ("bal", "bal_is"),
        ],
    )?;

    let rsig = representation.signature().clone();
    let a_var = rsig.var_id("a")?;
    let n_var = rsig.var_id("n")?;
    let q_open = QueryDef::new(
        &rsig,
        "is_open",
        vec![a_var],
        Formula::Pred(rsig.pred_id("OPEN")?, vec![Term::Var(a_var)]),
    )?;
    let q_closed = QueryDef::new(
        &rsig,
        "is_closed",
        vec![a_var],
        Formula::Pred(rsig.pred_id("CLOSED")?, vec![Term::Var(a_var)]),
    )?;
    let q_bal = QueryDef::new(
        &rsig,
        "bal_is",
        vec![a_var, n_var],
        Formula::Pred(rsig.pred_id("BAL")?, vec![Term::Var(a_var), Term::Var(n_var)]),
    )?;
    let interp_k = InterpretationK::new(
        &functions,
        &representation,
        vec![
            ("is_open", QueryImpl::Bool(q_open)),
            ("is_closed", QueryImpl::Bool(q_closed)),
            ("bal_is", QueryImpl::Bool(q_bal)),
        ],
        &[
            ("initiate", "initiate"),
            ("open_acct", "open_acct"),
            ("close_acct", "close_acct"),
            ("deposit", "deposit"),
            ("withdraw", "withdraw"),
        ],
    )?;

    let spec = TriLevelSpec {
        name: "bank".into(),
        information,
        info_domains,
        functions,
        representation,
        repr_domains,
        interp_i,
        interp_k,
        repr_template: template,
    };
    spec.check_shape()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclectic_algebraic::Rewriter;
    use eclectic_rpr::exec;

    #[test]
    fn assembles() {
        let spec = bank(&BankConfig::default()).unwrap();
        assert_eq!(spec.information.axioms.len(), 5);
        assert_eq!(spec.functions.signature().queries().count(), 3);
        assert_eq!(spec.representation.procs().len(), 5);
    }

    #[test]
    fn level2_arithmetic() {
        let spec = functions_level(&BankConfig::default()).unwrap();
        let mut rw = Rewriter::new(&spec);
        let mut lsig = spec.signature().logic().clone();
        // deposit twice: balance is n2.
        let t = eclectic_logic::parse_term(
            &mut lsig,
            "bal_is(acc1, n2, deposit(acc1, deposit(acc1, open_acct(acc1, initiate))))",
        )
        .unwrap();
        assert!(rw.eval_bool(&t).unwrap());
        // and not n1.
        let t = eclectic_logic::parse_term(
            &mut lsig,
            "bal_is(acc1, n1, deposit(acc1, deposit(acc1, open_acct(acc1, initiate))))",
        )
        .unwrap();
        assert!(!rw.eval_bool(&t).unwrap());
        // withdraw at zero is a no-op.
        let t = eclectic_logic::parse_term(
            &mut lsig,
            "bal_is(acc1, n0, withdraw(acc1, open_acct(acc1, initiate)))",
        )
        .unwrap();
        assert!(rw.eval_bool(&t).unwrap());
        // close only at zero balance.
        let t = eclectic_logic::parse_term(
            &mut lsig,
            "is_closed(acc1, close_acct(acc1, deposit(acc1, open_acct(acc1, initiate))))",
        )
        .unwrap();
        assert!(!rw.eval_bool(&t).unwrap());
        let t = eclectic_logic::parse_term(
            &mut lsig,
            "is_closed(acc1, close_acct(acc1, open_acct(acc1, initiate)))",
        )
        .unwrap();
        assert!(rw.eval_bool(&t).unwrap());
    }

    #[test]
    fn level2_saturates_at_top() {
        let config = BankConfig {
            amounts: 3,
            ..BankConfig::default()
        };
        let spec = functions_level(&config).unwrap();
        let mut rw = Rewriter::new(&spec);
        let mut lsig = spec.signature().logic().clone();
        // Three deposits with max n2: the third is a no-op (pre fails).
        let t = eclectic_logic::parse_term(
            &mut lsig,
            "bal_is(acc1, n2, deposit(acc1, deposit(acc1, deposit(acc1, open_acct(acc1, initiate)))))",
        )
        .unwrap();
        assert!(rw.eval_bool(&t).unwrap());
    }

    #[test]
    fn level3_set_oriented_procs_run() {
        let config = BankConfig::default();
        let (schema, _domains, template) = representation_level(&config).unwrap();
        eclectic_rpr::wgrammar::check_schema(&schema).unwrap();
        let bal = schema.signature().pred_id("BAL").unwrap();
        let open = schema.signature().pred_id("OPEN").unwrap();
        let st = exec::replay(
            &schema,
            &template,
            &[
                ("initiate", vec![]),
                ("open_acct", vec![Elem(0)]),
                ("deposit", vec![Elem(0)]),
                ("deposit", vec![Elem(0)]),
                ("withdraw", vec![Elem(0)]),
            ],
        )
        .unwrap();
        assert!(st.contains(open, &[Elem(0)]));
        assert!(st.contains(bal, &[Elem(0), Elem(1)]));
        assert_eq!(st.cardinality(bal), 1);
    }
}
