//! The library-loans domain: members borrow catalogued books.
//!
//! This domain exercises the *fully mechanised* pipeline: both the
//! functions-level equations and the representation-level schema are derived
//! from one set of structured descriptions
//! ([`eclectic_algebraic::synthesize`] + [`crate::methodology::derive_schema`]).
//!
//! Constraints: a loan requires a registered member and a catalogued book;
//! a book has at most one holder; and — temporally — while a member holds a
//! book the member stays registered.

use std::sync::Arc;

use eclectic_algebraic::{
    synthesize, AlgSignature, AlgSpec, Effect, InitialState, StructuredDescription,
};
use eclectic_logic::{parse_formula, Formula, Signature, Term, Theory};
use eclectic_refine::{InterpretationI, InterpretationK, QueryImpl};
use eclectic_rpr::{QueryDef, Schema};

use crate::error::Result;
use crate::methodology::derive_schema;
use crate::spec::{CarrierSpec, TriLevelSpec};

/// Configuration of the library domain.
#[derive(Debug, Clone)]
pub struct LibraryConfig {
    /// Member carrier.
    pub members: Vec<String>,
    /// Book carrier.
    pub books: Vec<String>,
}

impl Default for LibraryConfig {
    fn default() -> Self {
        LibraryConfig {
            members: vec!["mia".into(), "noa".into()],
            books: vec!["tao".into(), "sicp".into()],
        }
    }
}

impl LibraryConfig {
    /// Carrier sizes `m1…`, `b1…` for scaling.
    #[must_use]
    pub fn sized(members: usize, books: usize) -> Self {
        LibraryConfig {
            members: (1..=members).map(|i| format!("m{i}")).collect(),
            books: (1..=books).map(|i| format!("b{i}")).collect(),
        }
    }

    fn carriers(&self) -> CarrierSpec {
        let members: Vec<&str> = self.members.iter().map(String::as_str).collect();
        let books: Vec<&str> = self.books.iter().map(String::as_str).collect();
        CarrierSpec::new(&[("member", &members), ("book", &books)])
    }
}

/// The information-level theory: three static axioms and one transition
/// axiom.
///
/// # Errors
/// Propagates signature/parse errors.
pub fn information_level() -> Result<Theory> {
    let mut sig = Signature::new();
    let member = sig.add_sort("member")?;
    let book = sig.add_sort("book")?;
    sig.add_db_predicate("registered", &[member])?;
    sig.add_db_predicate("catalogued", &[book])?;
    sig.add_db_predicate("borrowed", &[member, book])?;
    sig.add_var("m", member)?;
    sig.add_var("b", book)?;

    let st_reg = parse_formula(
        &mut sig,
        "~exists m:member. exists b:book. borrowed(m, b) & ~registered(m)",
    )?;
    let st_cat = parse_formula(
        &mut sig,
        "~exists m:member. exists b:book. borrowed(m, b) & ~catalogued(b)",
    )?;
    let st_single = parse_formula(
        &mut sig,
        "forall b:book. forall m:member. forall m':member. borrowed(m, b) & borrowed(m', b) -> m = m'",
    )?;
    let tr_hold = parse_formula(
        &mut sig,
        "forall m:member. forall b:book. borrowed(m, b) -> box (registered(m) | ~borrowed(m, b))",
    )?;

    let mut theory = Theory::new(Arc::new(sig));
    theory.add_axiom("static-loan-registered", st_reg)?;
    theory.add_axiom("static-loan-catalogued", st_cat)?;
    theory.add_axiom("static-single-holder", st_single)?;
    theory.add_axiom("transition-holder-registered", tr_hold)?;
    Ok(theory)
}

/// The algebraic signature: queries `registered`/`catalogued`/`borrowed`,
/// updates `initiate`/`register`/`deregister`/`acquire`/`retire`/
/// `checkout`/`return_book`.
///
/// # Errors
/// Propagates signature errors.
pub fn functions_signature(config: &LibraryConfig) -> Result<AlgSignature> {
    let mut a = AlgSignature::new()?;
    let members: Vec<&str> = config.members.iter().map(String::as_str).collect();
    let books: Vec<&str> = config.books.iter().map(String::as_str).collect();
    let member = a.add_param_sort("member", &members)?;
    let book = a.add_param_sort("book", &books)?;
    a.add_query("registered", &[member], None)?;
    a.add_query("catalogued", &[book], None)?;
    a.add_query("borrowed", &[member, book], None)?;
    a.add_update("initiate", &[], false)?;
    a.add_update("register", &[member], true)?;
    a.add_update("deregister", &[member], true)?;
    a.add_update("acquire", &[book], true)?;
    a.add_update("retire", &[book], true)?;
    a.add_update("checkout", &[member, book], true)?;
    a.add_update("return_book", &[member, book], true)?;
    a.add_param_var("m", member)?;
    a.add_param_var("m'", member)?;
    a.add_param_var("b", book)?;
    a.add_param_var("b'", book)?;
    Ok(a)
}

/// The structured descriptions of the six updates.
///
/// # Errors
/// Propagates signature/parse errors.
pub fn structured_descriptions(
    a: &mut AlgSignature,
) -> Result<(InitialState, Vec<StructuredDescription>)> {
    let registered = a.logic().func_id("registered")?;
    let catalogued = a.logic().func_id("catalogued")?;
    let borrowed = a.logic().func_id("borrowed")?;
    let m = a.logic().var_id("m")?;
    let b = a.logic().var_id("b")?;

    let initial = InitialState {
        update: a.logic().func_id("initiate")?,
        defaults: vec![
            (registered, a.false_term()),
            (catalogued, a.false_term()),
            (borrowed, a.false_term()),
        ],
    };

    let mut descs = Vec::new();

    descs.push(StructuredDescription {
        update: a.logic().func_id("register")?,
        params: vec![m],
        comment: "member m joins the library".into(),
        precondition: Formula::True,
        effects: vec![Effect {
            query: registered,
            args: vec![Term::Var(m)],
            value: a.true_term(),
        }],
        side_effects: vec![],
    });

    let pre = parse_formula(a.logic_mut(), "forall b:book. borrowed(m, b, U) = False")?;
    descs.push(StructuredDescription {
        update: a.logic().func_id("deregister")?,
        params: vec![m],
        comment: "member m leaves, provided m holds no loans".into(),
        precondition: pre,
        effects: vec![Effect {
            query: registered,
            args: vec![Term::Var(m)],
            value: a.false_term(),
        }],
        side_effects: vec![],
    });

    descs.push(StructuredDescription {
        update: a.logic().func_id("acquire")?,
        params: vec![b],
        comment: "book b enters the catalogue".into(),
        precondition: Formula::True,
        effects: vec![Effect {
            query: catalogued,
            args: vec![Term::Var(b)],
            value: a.true_term(),
        }],
        side_effects: vec![],
    });

    let pre = parse_formula(a.logic_mut(), "forall m:member. borrowed(m, b, U) = False")?;
    descs.push(StructuredDescription {
        update: a.logic().func_id("retire")?,
        params: vec![b],
        comment: "book b is removed, provided nobody holds it".into(),
        precondition: pre,
        effects: vec![Effect {
            query: catalogued,
            args: vec![Term::Var(b)],
            value: a.false_term(),
        }],
        side_effects: vec![],
    });

    let pre = parse_formula(
        a.logic_mut(),
        "registered(m, U) = True & catalogued(b, U) = True & (forall m':member. borrowed(m', b, U) = False)",
    )?;
    descs.push(StructuredDescription {
        update: a.logic().func_id("checkout")?,
        params: vec![m, b],
        comment: "registered member m borrows catalogued, unheld book b".into(),
        precondition: pre,
        effects: vec![Effect {
            query: borrowed,
            args: vec![Term::Var(m), Term::Var(b)],
            value: a.true_term(),
        }],
        side_effects: vec![],
    });

    let pre = parse_formula(a.logic_mut(), "borrowed(m, b, U) = True")?;
    descs.push(StructuredDescription {
        update: a.logic().func_id("return_book")?,
        params: vec![m, b],
        comment: "member m returns book b".into(),
        precondition: pre,
        effects: vec![Effect {
            query: borrowed,
            args: vec![Term::Var(m), Term::Var(b)],
            value: a.false_term(),
        }],
        side_effects: vec![],
    });

    Ok((initial, descs))
}

/// The functions level, with equations synthesised from the descriptions.
///
/// # Errors
/// Propagates synthesis errors.
pub fn functions_level(config: &LibraryConfig) -> Result<AlgSpec> {
    let mut a = functions_signature(config)?;
    let (initial, descs) = structured_descriptions(&mut a)?;
    let eqs = synthesize(&mut a, &initial, &descs)?;
    Ok(AlgSpec::new(a, eqs)?)
}

/// The representation level, derived mechanically from the same structured
/// descriptions.
///
/// # Errors
/// Propagates derivation errors.
pub fn representation_level(
    config: &LibraryConfig,
) -> Result<(Schema, Arc<eclectic_logic::Domains>)> {
    let mut a = functions_signature(config)?;
    let (initial, descs) = structured_descriptions(&mut a)?;
    let schema = derive_schema(
        &a,
        &initial,
        &descs,
        &[
            ("registered", "REGISTERED"),
            ("catalogued", "CATALOGUED"),
            ("borrowed", "BORROWED"),
        ],
    )?;
    let domains = Arc::new(config.carriers().domains_for(schema.signature())?);
    Ok((schema, domains))
}

/// Assembles the full tri-level library specification.
///
/// # Errors
/// Propagates construction errors from all three levels.
pub fn library(config: &LibraryConfig) -> Result<TriLevelSpec> {
    let information = information_level()?;
    let info_domains = Arc::new(config.carriers().domains_for(&information.signature)?);
    let functions = functions_level(config)?;
    let (representation, repr_domains) = representation_level(config)?;

    let interp_i = InterpretationI::new(
        &information.signature,
        functions.signature(),
        &[
            ("registered", "registered"),
            ("catalogued", "catalogued"),
            ("borrowed", "borrowed"),
        ],
    )?;

    let rsig = representation.signature().clone();
    let m = rsig.var_id("m")?;
    let b = rsig.var_id("b")?;
    let q_registered = QueryDef::new(
        &rsig,
        "registered",
        vec![m],
        Formula::Pred(rsig.pred_id("REGISTERED")?, vec![Term::Var(m)]),
    )?;
    let q_catalogued = QueryDef::new(
        &rsig,
        "catalogued",
        vec![b],
        Formula::Pred(rsig.pred_id("CATALOGUED")?, vec![Term::Var(b)]),
    )?;
    let q_borrowed = QueryDef::new(
        &rsig,
        "borrowed",
        vec![m, b],
        Formula::Pred(rsig.pred_id("BORROWED")?, vec![Term::Var(m), Term::Var(b)]),
    )?;
    let interp_k = InterpretationK::new(
        &functions,
        &representation,
        vec![
            ("registered", QueryImpl::Bool(q_registered)),
            ("catalogued", QueryImpl::Bool(q_catalogued)),
            ("borrowed", QueryImpl::Bool(q_borrowed)),
        ],
        &[
            ("initiate", "initiate"),
            ("register", "register"),
            ("deregister", "deregister"),
            ("acquire", "acquire"),
            ("retire", "retire"),
            ("checkout", "checkout"),
            ("return_book", "return_book"),
        ],
    )?;

    let repr_template = eclectic_rpr::DbState::new(
        representation.signature().clone(),
        repr_domains.clone(),
    );
    let spec = TriLevelSpec {
        name: "library".into(),
        information,
        info_domains,
        functions,
        representation,
        repr_domains,
        interp_i,
        interp_k,
        repr_template,
    };
    spec.check_shape()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclectic_algebraic::Rewriter;

    #[test]
    fn assembles() {
        let spec = library(&LibraryConfig::default()).unwrap();
        assert_eq!(spec.information.axioms.len(), 4);
        assert_eq!(spec.functions.signature().queries().count(), 3);
        assert_eq!(spec.representation.procs().len(), 7);
    }

    #[test]
    fn synthesized_equations_behave() {
        let spec = functions_level(&LibraryConfig::default()).unwrap();
        let mut rw = Rewriter::new(&spec);
        let mut lsig = spec.signature().logic().clone();
        // checkout requires registration and cataloguing.
        let t = eclectic_logic::parse_term(
            &mut lsig,
            "borrowed(mia, tao, checkout(mia, tao, acquire(tao, register(mia, initiate))))",
        )
        .unwrap();
        assert!(rw.eval_bool(&t).unwrap());
        // without registration the checkout fails.
        let t = eclectic_logic::parse_term(
            &mut lsig,
            "borrowed(mia, tao, checkout(mia, tao, acquire(tao, initiate)))",
        )
        .unwrap();
        assert!(!rw.eval_bool(&t).unwrap());
        // a second member cannot take a held book.
        let t = eclectic_logic::parse_term(
            &mut lsig,
            "borrowed(noa, tao, checkout(noa, tao, checkout(mia, tao, acquire(tao, register(noa, register(mia, initiate))))))",
        )
        .unwrap();
        assert!(!rw.eval_bool(&t).unwrap());
    }

    #[test]
    fn derived_schema_validates_and_runs() {
        let (schema, domains) = representation_level(&LibraryConfig::default()).unwrap();
        // The derived schema is grammatical under the RPR W-grammar.
        eclectic_rpr::wgrammar::check_schema(&schema).unwrap();
        // And executable.
        let s0 = eclectic_rpr::DbState::new(schema.signature().clone(), domains);
        let borrowed = schema.signature().pred_id("BORROWED").unwrap();
        let st = eclectic_rpr::exec::replay(
            &schema,
            &s0,
            &[
                ("initiate", vec![]),
                ("register", vec![eclectic_logic::Elem(0)]),
                ("acquire", vec![eclectic_logic::Elem(0)]),
                ("checkout", vec![eclectic_logic::Elem(0), eclectic_logic::Elem(0)]),
            ],
        )
        .unwrap();
        assert!(st.contains(borrowed, &[eclectic_logic::Elem(0), eclectic_logic::Elem(0)]));
    }
}
