//! Worked domains specified at all three levels.
//!
//! - [`courses`](mod@courses): the paper's running example (§3.2/§4.2/§5.2);
//! - [`library`](mod@library): fully mechanised pipeline — equations *and* schema derived
//!   from structured descriptions;
//! - [`bank`](mod@bank): parameter functions, set-oriented procedures, absorbing-state
//!   transition constraint.

pub mod bank;
pub mod courses;
pub mod library;

pub use bank::{bank, BankConfig};
pub use courses::{courses, CoursesConfig, EquationStyle};
pub use library::{library, LibraryConfig};
