//! The tri-level specification bundle — the paper's conceptual design
//! framework (§2): one database application described at the information,
//! functions and representation levels, bound by the interpretations `I`
//! and `K`.

use std::sync::Arc;

use eclectic_algebraic::AlgSpec;
use eclectic_logic::{Domains, LogicError, Signature, Theory};
use eclectic_refine::{InterpretationI, InterpretationK};
use eclectic_rpr::{DbState, Schema};

use crate::error::{Result, SpecError};

/// Shared finite carriers, by sort name — instantiated into [`Domains`] for
/// each level's signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarrierSpec {
    entries: Vec<(String, Vec<String>)>,
}

impl CarrierSpec {
    /// Creates a carrier specification from `(sort, elements)` pairs.
    #[must_use]
    pub fn new(entries: &[(&str, &[&str])]) -> Self {
        CarrierSpec {
            entries: entries
                .iter()
                .map(|(s, es)| {
                    (
                        (*s).to_string(),
                        es.iter().map(|e| (*e).to_string()).collect(),
                    )
                })
                .collect(),
        }
    }

    /// The elements of a sort.
    #[must_use]
    pub fn elements(&self, sort: &str) -> Option<&[String]> {
        self.entries
            .iter()
            .find(|(s, _)| s == sort)
            .map(|(_, es)| es.as_slice())
    }

    /// Iterates over `(sort, elements)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.entries
            .iter()
            .map(|(s, es)| (s.as_str(), es.as_slice()))
    }

    /// Builds [`Domains`] over a signature (sorts missing from the carrier
    /// spec get empty carriers).
    ///
    /// # Errors
    /// Propagates domain-construction errors.
    pub fn domains_for(&self, sig: &Signature) -> std::result::Result<Domains, LogicError> {
        let mut carriers = vec![Vec::new(); sig.sort_count()];
        for (sort, elems) in &self.entries {
            if let Ok(id) = sig.sort_id(sort) {
                carriers[id.index()] = elems.clone();
            }
        }
        Domains::new(sig, carriers)
    }
}

/// A complete tri-level specification of one database application.
#[derive(Debug)]
pub struct TriLevelSpec {
    /// Human-readable name of the application.
    pub name: String,
    /// `T1`: the information-level theory (temporal first-order axioms).
    pub information: Theory,
    /// Domains over the information signature.
    pub info_domains: Arc<Domains>,
    /// `T2`: the functions-level algebraic specification.
    pub functions: AlgSpec,
    /// `T3`: the representation-level schema.
    pub representation: Schema,
    /// Domains over the representation signature.
    pub repr_domains: Arc<Domains>,
    /// The interpretation `I` (level 1 → level 2).
    pub interp_i: InterpretationI,
    /// The interpretation `K` (level 2 → level 3).
    pub interp_k: InterpretationK,
    /// Template database state on which `initiate` acts. Usually empty, but
    /// it may carry interpreted function tables (e.g. the bank domain's
    /// saturating arithmetic).
    pub repr_template: DbState,
}

impl TriLevelSpec {
    /// The information-level signature.
    #[must_use]
    pub fn info_signature(&self) -> &Arc<Signature> {
        &self.information.signature
    }

    /// An empty representation-level database state (all relations and
    /// scalar variables as in the template).
    #[must_use]
    pub fn empty_state(&self) -> DbState {
        self.repr_template.clone()
    }

    /// Sanity checks on the bundle: the information signature has at least
    /// one db-predicate, the functions level at least one update, the
    /// representation at least one procedure.
    ///
    /// # Errors
    /// Returns [`SpecError::Incomplete`] naming the missing piece.
    pub fn check_shape(&self) -> Result<()> {
        if self.info_signature().db_pred_ids().next().is_none() {
            return Err(SpecError::Incomplete(
                "information level declares no db-predicates".into(),
            ));
        }
        if self.functions.signature().updates().next().is_none() {
            return Err(SpecError::Incomplete(
                "functions level declares no updates".into(),
            ));
        }
        if self.representation.procs().is_empty() {
            return Err(SpecError::Incomplete(
                "representation level declares no procedures".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carrier_spec_lookup() {
        let cs = CarrierSpec::new(&[("student", &["ana", "bob"]), ("course", &["db"])]);
        assert_eq!(cs.elements("student").unwrap().len(), 2);
        assert!(cs.elements("nope").is_none());
        assert_eq!(cs.iter().count(), 2);
    }

    #[test]
    fn carrier_spec_builds_domains() {
        let cs = CarrierSpec::new(&[("course", &["db", "ai"])]);
        let mut sig = Signature::new();
        sig.add_sort("course").unwrap();
        sig.add_sort("unlisted").unwrap();
        let dom = cs.domains_for(&sig).unwrap();
        assert_eq!(dom.card(sig.sort_id("course").unwrap()), 2);
        assert_eq!(dom.card(sig.sort_id("unlisted").unwrap()), 0);
    }
}
