//! Replays every differential-fuzzing corpus fixture (`tests/corpus/*.toml`
//! at the workspace root) across the full backend × scheduler × worker-count
//! × battery-shape grid: the schedule-independent fingerprint must be
//! byte-identical for every combination.
//!
//! New fixtures are added automatically: drop a `fixture_toml`-format file
//! in the corpus directory and this test picks it up.

use std::fs;
use std::path::PathBuf;

use eclectic_kernel::{force_worker_cap, RelChoice, SchedMode};
use eclectic_spec::fuzz::{
    build_domain, engine_outcome, engine_outcome_shaped, outcome_difference, parse_fixture,
};
use eclectic_spec::DagShape;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn fixtures() -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("workspace tests/corpus directory")
        .map(|e| e.expect("corpus dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    out.sort();
    out
}

#[test]
fn corpus_fixtures_replay_identically_across_all_engines() {
    let paths = fixtures();
    assert!(!paths.is_empty(), "the corpus must contain anchor fixtures");
    let _cap = force_worker_cap(usize::MAX);
    for path in paths {
        let text = fs::read_to_string(&path).unwrap();
        let (seed, cfg) = parse_fixture(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let spec = build_domain(seed, &cfg)
            .unwrap_or_else(|e| panic!("{}: generation failed: {e}", path.display()));
        let vc = cfg.verify_config();

        let baseline = engine_outcome(&spec, &vc, RelChoice::Dense, SchedMode::Steal, 1);
        for backend in [RelChoice::Dense, RelChoice::Sparse, RelChoice::Compressed] {
            for mode in [SchedMode::Steal, SchedMode::Scoped] {
                for workers in [1usize, 2, 4, 8] {
                    for shape in [DagShape::Fine, DagShape::Chain] {
                        let outcome =
                            engine_outcome_shaped(&spec, &vc, backend, mode, workers, shape);
                        if let Some(detail) = outcome_difference(&baseline, &outcome) {
                            panic!(
                                "{}: {backend:?}/{mode:?}/{workers}/{shape:?} diverged from \
                                 dense/steal/1: {detail}",
                                path.display()
                            );
                        }
                    }
                }
            }
        }
    }
}
