//! Determinism of the parallel engines: on every packaged domain, the
//! level-synchronous parallel exploration, the parallel cross-level check
//! and the parallel RPR reachability must reproduce the serial results
//! bit-for-bit at every thread count.

use eclectic_refine::{
    cross_check_threads, explore_algebraic_threads, random_ops, AlgExploreLimits, InducedAlgebra,
};
use eclectic_spec::domains::{bank, courses, library};
use eclectic_spec::TriLevelSpec;

const THREADS: [usize; 3] = [2, 4, 8];

fn domains() -> Vec<(&'static str, TriLevelSpec, usize)> {
    vec![
        (
            "courses",
            courses::courses(&courses::CoursesConfig::default()).unwrap(),
            6,
        ),
        (
            "library",
            library::library(&library::LibraryConfig::default()).unwrap(),
            6,
        ),
        ("bank", bank::bank(&bank::BankConfig::default()).unwrap(), 8),
    ]
}

#[test]
fn parallel_exploration_matches_serial_on_every_domain() {
    for (name, spec, depth) in domains() {
        let limits = AlgExploreLimits {
            max_depth: depth,
            max_states: 10_000,
        };
        let serial = explore_algebraic_threads(
            &spec.functions,
            &spec.interp_i,
            spec.info_signature(),
            &spec.info_domains,
            limits,
            1,
        )
        .unwrap();
        for threads in THREADS {
            let par = explore_algebraic_threads(
                &spec.functions,
                &spec.interp_i,
                spec.info_signature(),
                &spec.info_domains,
                limits,
                threads,
            )
            .unwrap();
            assert_eq!(
                par.universe.state_count(),
                serial.universe.state_count(),
                "{name}: state count at {threads} threads"
            );
            assert_eq!(
                par.witnesses, serial.witnesses,
                "{name}: witness order at {threads} threads"
            );
            assert_eq!(
                par.depth, serial.depth,
                "{name}: witness depths at {threads} threads"
            );
            assert_eq!(
                par.truncated, serial.truncated,
                "{name}: truncation at {threads} threads"
            );
            assert_eq!(
                par.abstraction_collision, serial.abstraction_collision,
                "{name}: collision flag at {threads} threads"
            );
            assert_eq!(
                par.universe.edge_count(),
                serial.universe.edge_count(),
                "{name}: edge count at {threads} threads"
            );
            for s in serial.universe.state_indices() {
                assert_eq!(
                    par.universe.successors(s),
                    serial.universe.successors(s),
                    "{name}: successor sets at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn truncated_parallel_exploration_matches_serial() {
    // Limits low enough to trip both the depth and the state bound.
    let spec = courses::courses(&courses::CoursesConfig::default()).unwrap();
    for limits in [
        AlgExploreLimits {
            max_depth: 1,
            max_states: 10_000,
        },
        AlgExploreLimits {
            max_depth: 6,
            max_states: 3,
        },
    ] {
        let serial = explore_algebraic_threads(
            &spec.functions,
            &spec.interp_i,
            spec.info_signature(),
            &spec.info_domains,
            limits,
            1,
        )
        .unwrap();
        assert!(serial.truncated);
        for threads in THREADS {
            let par = explore_algebraic_threads(
                &spec.functions,
                &spec.interp_i,
                spec.info_signature(),
                &spec.info_domains,
                limits,
                threads,
            )
            .unwrap();
            assert_eq!(par.witnesses, serial.witnesses);
            assert_eq!(par.depth, serial.depth);
            assert_eq!(par.truncated, serial.truncated);
            assert_eq!(par.universe.edge_count(), serial.universe.edge_count());
        }
    }
}

#[test]
fn parallel_cross_check_matches_serial_on_every_domain() {
    for (name, spec, _) in domains() {
        let mut ind = InducedAlgebra::new(
            &spec.functions,
            &spec.representation,
            &spec.interp_k,
            spec.empty_state(),
        )
        .unwrap();
        let mut state = 0x5eed_cafe_u64;
        let mut rng = move |n: usize| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % n.max(1) as u64) as usize
        };
        let ops = random_ops(&spec.functions, &ind, "initiate", 20, &mut rng).unwrap();
        let (m1, s1) = cross_check_threads(&spec.functions, &mut ind, &ops, 1).unwrap();
        for threads in THREADS {
            let (m, s) = cross_check_threads(&spec.functions, &mut ind, &ops, threads).unwrap();
            assert_eq!(m, m1, "{name}: mismatch report at {threads} threads");
            assert_eq!(s, s1, "{name}: stats at {threads} threads");
        }
    }
}

#[test]
fn parallel_rpr_reachability_matches_serial_on_every_domain() {
    for (name, spec, depth) in domains() {
        let mk = || {
            InducedAlgebra::new(
                &spec.functions,
                &spec.representation,
                &spec.interp_k,
                spec.empty_state(),
            )
            .unwrap()
        };
        let (serial, t1) = mk().reachable_states_threads(depth, 10_000, 1).unwrap();
        for threads in THREADS {
            let (par, t) = mk()
                .reachable_states_threads(depth, 10_000, threads)
                .unwrap();
            assert_eq!(par, serial, "{name}: state order at {threads} threads");
            assert_eq!(t, t1, "{name}: truncation at {threads} threads");
        }
    }
}
