//! Determinism of the parallel engines: on every packaged domain, the
//! level-synchronous parallel exploration, the parallel cross-level check
//! and the parallel RPR reachability must reproduce the serial results
//! bit-for-bit at every thread count.

use eclectic_algebraic::{
    completeness, confluence, parse_equations, AlgSignature, AlgSpec,
};
use eclectic_refine::{
    check_dynamic_threads, cross_check_threads, explore_algebraic_threads, random_ops,
    AlgExploreLimits, InducedAlgebra,
};
use eclectic_spec::domains::{bank, courses, library};
use eclectic_spec::TriLevelSpec;

const THREADS: [usize; 3] = [2, 4, 8];

fn domains() -> Vec<(&'static str, TriLevelSpec, usize)> {
    vec![
        (
            "courses",
            courses::courses(&courses::CoursesConfig::default()).unwrap(),
            6,
        ),
        (
            "library",
            library::library(&library::LibraryConfig::default()).unwrap(),
            6,
        ),
        ("bank", bank::bank(&bank::BankConfig::default()).unwrap(), 8),
    ]
}

#[test]
fn parallel_exploration_matches_serial_on_every_domain() {
    for (name, spec, depth) in domains() {
        let limits = AlgExploreLimits {
            max_depth: depth,
            max_states: 10_000,
        };
        let serial = explore_algebraic_threads(
            &spec.functions,
            &spec.interp_i,
            spec.info_signature(),
            &spec.info_domains,
            limits,
            1,
        )
        .unwrap();
        for threads in THREADS {
            let par = explore_algebraic_threads(
                &spec.functions,
                &spec.interp_i,
                spec.info_signature(),
                &spec.info_domains,
                limits,
                threads,
            )
            .unwrap();
            assert_eq!(
                par.universe.state_count(),
                serial.universe.state_count(),
                "{name}: state count at {threads} threads"
            );
            assert_eq!(
                par.witnesses, serial.witnesses,
                "{name}: witness order at {threads} threads"
            );
            assert_eq!(
                par.depth, serial.depth,
                "{name}: witness depths at {threads} threads"
            );
            assert_eq!(
                par.truncated, serial.truncated,
                "{name}: truncation at {threads} threads"
            );
            assert_eq!(
                par.abstraction_collision, serial.abstraction_collision,
                "{name}: collision flag at {threads} threads"
            );
            assert_eq!(
                par.universe.edge_count(),
                serial.universe.edge_count(),
                "{name}: edge count at {threads} threads"
            );
            for s in serial.universe.state_indices() {
                assert_eq!(
                    par.universe.successors(s),
                    serial.universe.successors(s),
                    "{name}: successor sets at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn truncated_parallel_exploration_matches_serial() {
    // Limits low enough to trip both the depth and the state bound.
    let spec = courses::courses(&courses::CoursesConfig::default()).unwrap();
    for limits in [
        AlgExploreLimits {
            max_depth: 1,
            max_states: 10_000,
        },
        AlgExploreLimits {
            max_depth: 6,
            max_states: 3,
        },
    ] {
        let serial = explore_algebraic_threads(
            &spec.functions,
            &spec.interp_i,
            spec.info_signature(),
            &spec.info_domains,
            limits,
            1,
        )
        .unwrap();
        assert!(serial.truncated);
        for threads in THREADS {
            let par = explore_algebraic_threads(
                &spec.functions,
                &spec.interp_i,
                spec.info_signature(),
                &spec.info_domains,
                limits,
                threads,
            )
            .unwrap();
            assert_eq!(par.witnesses, serial.witnesses);
            assert_eq!(par.depth, serial.depth);
            assert_eq!(par.truncated, serial.truncated);
            assert_eq!(par.universe.edge_count(), serial.universe.edge_count());
        }
    }
}

#[test]
fn parallel_cross_check_matches_serial_on_every_domain() {
    for (name, spec, _) in domains() {
        let mut ind = InducedAlgebra::new(
            &spec.functions,
            &spec.representation,
            &spec.interp_k,
            spec.empty_state(),
        )
        .unwrap();
        let mut state = 0x5eed_cafe_u64;
        let mut rng = move |n: usize| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % n.max(1) as u64) as usize
        };
        let ops = random_ops(&spec.functions, &ind, "initiate", 20, &mut rng).unwrap();
        let (m1, s1) = cross_check_threads(&spec.functions, &mut ind, &ops, 1).unwrap();
        for threads in THREADS {
            let (m, s) = cross_check_threads(&spec.functions, &mut ind, &ops, threads).unwrap();
            assert_eq!(m, m1, "{name}: mismatch report at {threads} threads");
            assert_eq!(s, s1, "{name}: stats at {threads} threads");
        }
    }
}

/// Syntactically covered but semantically incomplete: `offer` on a
/// different course has no equation, so those ground instances get stuck.
fn stuck_spec() -> AlgSpec {
    let mut a = AlgSignature::new().unwrap();
    let course = a.add_param_sort("course", &["db", "ai"]).unwrap();
    a.add_query("offered", &[course], None).unwrap();
    a.add_update("initiate", &[], false).unwrap();
    a.add_update("offer", &[course], true).unwrap();
    a.add_update("cancel", &[course], true).unwrap();
    a.add_param_var("c", course).unwrap();
    a.add_param_var("c'", course).unwrap();
    let eqs = parse_equations(
        &mut a,
        &[
            ("eq1", "offered(c, initiate) = False"),
            ("eq3", "offered(c, offer(c, U)) = True"),
            ("eq6", "offered(c, cancel(c, U)) = False"),
            ("eq7", "c != c' ==> offered(c, cancel(c', U)) = offered(c, U)"),
        ],
    )
    .unwrap();
    AlgSpec::new(a, eqs).unwrap()
}

/// Two rules that genuinely disagree on ground instances.
fn conflicting_spec() -> AlgSpec {
    let mut a = AlgSignature::new().unwrap();
    let course = a.add_param_sort("course", &["db"]).unwrap();
    a.add_query("offered", &[course], None).unwrap();
    a.add_update("initiate", &[], false).unwrap();
    a.add_update("offer", &[course], true).unwrap();
    a.add_param_var("c", course).unwrap();
    let eqs = parse_equations(
        &mut a,
        &[
            ("good", "offered(c, offer(c, U)) = True"),
            ("evil", "offered(c, offer(c, U)) = False"),
            ("base", "offered(c, initiate) = False"),
        ],
    )
    .unwrap();
    AlgSpec::new(a, eqs).unwrap()
}

/// A single catch-all equation: no two left-hand sides overlap.
fn overlap_free_spec() -> AlgSpec {
    let mut a = AlgSignature::new().unwrap();
    let course = a.add_param_sort("course", &["db", "ai"]).unwrap();
    a.add_query("offered", &[course], None).unwrap();
    a.add_update("initiate", &[], false).unwrap();
    a.add_update("offer", &[course], true).unwrap();
    a.add_param_var("c", course).unwrap();
    let eqs = parse_equations(&mut a, &[("all", "offered(c, U) = False")]).unwrap();
    AlgSpec::new(a, eqs).unwrap()
}

#[test]
fn parallel_confluence_matches_serial_on_every_domain() {
    for (name, spec, _) in domains() {
        let alg = &spec.functions;
        let serial = confluence::critical_overlaps_threads(alg, 1).unwrap();
        for threads in THREADS {
            let par = confluence::critical_overlaps_threads(alg, threads).unwrap();
            assert_eq!(par, serial, "{name}: overlap report at {threads} threads");
        }
        for o in &serial {
            let e1 = alg.equation(&o.first).unwrap();
            let e2 = alg.equation(&o.second).unwrap();
            let r1 = confluence::resolve_overlap_on_ground_threads(alg, e1, e2, 2, 1).unwrap();
            for threads in THREADS {
                let r = confluence::resolve_overlap_on_ground_threads(alg, e1, e2, 2, threads)
                    .unwrap();
                assert_eq!(
                    r, r1,
                    "{name}: {}/{} ground resolution at {threads} threads",
                    o.first, o.second
                );
            }
        }

        // Pair-level parallelism: the whole overlap list resolved against a
        // shared ground space, workers striding over pairs.
        let space = eclectic_algebraic::induction::GroundSpace::new(alg.signature(), 2).unwrap();
        let pairs: Vec<_> = serial
            .iter()
            .map(|o| {
                (
                    alg.equation(&o.first).unwrap(),
                    alg.equation(&o.second).unwrap(),
                )
            })
            .collect();
        let batch1 = confluence::resolve_overlaps_in(alg, &space, &pairs, 1).unwrap();
        for threads in THREADS {
            let batch = confluence::resolve_overlaps_in(alg, &space, &pairs, threads).unwrap();
            assert_eq!(batch, batch1, "{name}: pair batch at {threads} threads");
        }
        // And it agrees with the one-pair-at-a-time entry point.
        for (pair, r) in pairs.iter().zip(&batch1) {
            let single =
                confluence::resolve_overlap_in(alg, &space, pair.0, pair.1, 1).unwrap();
            assert_eq!(&single, r, "{name}: batch vs single-pair resolution");
        }
    }
}

#[test]
fn parallel_confluence_edge_specs_match_serial() {
    // No overlaps at all: every thread count agrees on the empty report.
    let empty = overlap_free_spec();
    for threads in [1, 2, 4, 8] {
        assert!(confluence::critical_overlaps_threads(&empty, threads)
            .unwrap()
            .is_empty());
    }

    // A genuine disagreement: the stop event (fired count + rendering) must
    // be bit-identical at every thread count.
    let bad = conflicting_spec();
    let e1 = bad.equation("good").unwrap();
    let e2 = bad.equation("evil").unwrap();
    let serial = confluence::resolve_overlap_on_ground_threads(&bad, e1, e2, 2, 1).unwrap();
    assert!(serial.1.is_some());
    for threads in THREADS {
        let par = confluence::resolve_overlap_on_ground_threads(&bad, e1, e2, 2, threads).unwrap();
        assert_eq!(par, serial, "disagreement at {threads} threads");
    }
}

#[test]
fn parallel_completeness_matches_serial_on_every_domain() {
    for (name, spec, _) in domains() {
        let serial = completeness::exhaustive_threads(&spec.functions, 3, 20, 1).unwrap();
        assert!(serial.is_sufficiently_complete(), "{name}");
        for threads in THREADS {
            let par = completeness::exhaustive_threads(&spec.functions, 3, 20, threads).unwrap();
            assert_eq!(par, serial, "{name}: completeness report at {threads} threads");
        }
    }
}

#[test]
fn parallel_completeness_early_stop_matches_serial() {
    // The stuck spec trips the failure cap; the replay must stop at the
    // same instance (same `stuck` prefix, same `evaluated`) as serial.
    let spec = stuck_spec();
    for max_failures in [1, 3, 50] {
        let serial = completeness::exhaustive_threads(&spec, 3, max_failures, 1).unwrap();
        assert!(!serial.is_sufficiently_complete());
        for threads in THREADS {
            let par = completeness::exhaustive_threads(&spec, 3, max_failures, threads).unwrap();
            assert_eq!(
                par, serial,
                "stuck spec, cap {max_failures}, {threads} threads"
            );
        }
    }
}

#[test]
fn parallel_pdl_batch_obligations_match_serial_on_every_domain() {
    // The dynamic-logic obligations run through the batched PDL model
    // checker; verdicts must not depend on the worker count. (The bank
    // universe exceeds the cap and exercises the graceful-skip path.)
    for (name, spec, _) in domains() {
        let serial =
            check_dynamic_threads(&spec.representation, &spec.empty_state(), 1_024, 1).unwrap();
        assert!(serial.is_correct(), "{name}: {:?}", serial.failures);
        for threads in THREADS {
            let par =
                check_dynamic_threads(&spec.representation, &spec.empty_state(), 1_024, threads)
                    .unwrap();
            assert_eq!(par.failures, serial.failures, "{name} at {threads} threads");
            assert_eq!(par.checked, serial.checked, "{name} at {threads} threads");
            assert_eq!(
                par.universe_states, serial.universe_states,
                "{name} at {threads} threads"
            );
            assert_eq!(
                par.unchecked_procs, serial.unchecked_procs,
                "{name} at {threads} threads"
            );
            assert_eq!(par.skipped, serial.skipped, "{name} at {threads} threads");
        }
    }
}

#[test]
fn parallel_rpr_reachability_matches_serial_on_every_domain() {
    for (name, spec, depth) in domains() {
        let mk = || {
            InducedAlgebra::new(
                &spec.functions,
                &spec.representation,
                &spec.interp_k,
                spec.empty_state(),
            )
            .unwrap()
        };
        let (serial, t1) = mk().reachable_states_threads(depth, 10_000, 1).unwrap();
        for threads in THREADS {
            let (par, t) = mk()
                .reachable_states_threads(depth, 10_000, threads)
                .unwrap();
            assert_eq!(par, serial, "{name}: state order at {threads} threads");
            assert_eq!(t, t1, "{name}: truncation at {threads} threads");
        }
    }
}
