//! Determinism of the parallel engines: on every packaged domain, the
//! level-synchronous parallel exploration, the parallel cross-level check
//! and the parallel RPR reachability must reproduce the serial results
//! bit-for-bit at every thread count.

use std::sync::Arc;

use eclectic_algebraic::{
    completeness, confluence, parse_equations, AlgSignature, AlgSpec,
};
use eclectic_kernel::{Budget, BudgetExceeded};
use eclectic_logic::{Domains, Elem, Formula, Signature, Term as LogicTerm};
use eclectic_refine::{
    check_dynamic_budget, check_dynamic_threads, check_equations_budget, cross_check_budget,
    cross_check_threads, explore_algebraic_budget, explore_algebraic_threads, random_ops,
    AlgExploreLimits, InducedAlgebra,
};
use eclectic_rpr::{check_batch_budget, DbState, FiniteUniverse, Pdl, Stmt};
use eclectic_spec::domains::{bank, courses, library};
use eclectic_spec::{verify, TriLevelSpec, VerifyConfig};

const THREADS: [usize; 3] = [2, 4, 8];

fn domains() -> Vec<(&'static str, TriLevelSpec, usize)> {
    vec![
        (
            "courses",
            courses::courses(&courses::CoursesConfig::default()).unwrap(),
            6,
        ),
        (
            "library",
            library::library(&library::LibraryConfig::default()).unwrap(),
            6,
        ),
        ("bank", bank::bank(&bank::BankConfig::default()).unwrap(), 8),
    ]
}

#[test]
fn parallel_exploration_matches_serial_on_every_domain() {
    for (name, spec, depth) in domains() {
        let limits = AlgExploreLimits {
            max_depth: depth,
            max_states: 10_000,
        };
        let serial = explore_algebraic_threads(
            &spec.functions,
            &spec.interp_i,
            spec.info_signature(),
            &spec.info_domains,
            limits,
            1,
        )
        .unwrap();
        for threads in THREADS {
            let par = explore_algebraic_threads(
                &spec.functions,
                &spec.interp_i,
                spec.info_signature(),
                &spec.info_domains,
                limits,
                threads,
            )
            .unwrap();
            assert_eq!(
                par.universe.state_count(),
                serial.universe.state_count(),
                "{name}: state count at {threads} threads"
            );
            assert_eq!(
                par.witnesses, serial.witnesses,
                "{name}: witness order at {threads} threads"
            );
            assert_eq!(
                par.depth, serial.depth,
                "{name}: witness depths at {threads} threads"
            );
            assert_eq!(
                par.truncated, serial.truncated,
                "{name}: truncation at {threads} threads"
            );
            assert_eq!(
                par.abstraction_collision, serial.abstraction_collision,
                "{name}: collision flag at {threads} threads"
            );
            assert_eq!(
                par.universe.edge_count(),
                serial.universe.edge_count(),
                "{name}: edge count at {threads} threads"
            );
            for s in serial.universe.state_indices() {
                assert_eq!(
                    par.universe.successors(s),
                    serial.universe.successors(s),
                    "{name}: successor sets at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn truncated_parallel_exploration_matches_serial() {
    // Limits low enough to trip both the depth and the state bound.
    let spec = courses::courses(&courses::CoursesConfig::default()).unwrap();
    for limits in [
        AlgExploreLimits {
            max_depth: 1,
            max_states: 10_000,
        },
        AlgExploreLimits {
            max_depth: 6,
            max_states: 3,
        },
    ] {
        let serial = explore_algebraic_threads(
            &spec.functions,
            &spec.interp_i,
            spec.info_signature(),
            &spec.info_domains,
            limits,
            1,
        )
        .unwrap();
        assert!(serial.truncated);
        for threads in THREADS {
            let par = explore_algebraic_threads(
                &spec.functions,
                &spec.interp_i,
                spec.info_signature(),
                &spec.info_domains,
                limits,
                threads,
            )
            .unwrap();
            assert_eq!(par.witnesses, serial.witnesses);
            assert_eq!(par.depth, serial.depth);
            assert_eq!(par.truncated, serial.truncated);
            assert_eq!(par.universe.edge_count(), serial.universe.edge_count());
        }
    }
}

#[test]
fn parallel_cross_check_matches_serial_on_every_domain() {
    for (name, spec, _) in domains() {
        let mut ind = InducedAlgebra::new(
            &spec.functions,
            &spec.representation,
            &spec.interp_k,
            spec.empty_state(),
        )
        .unwrap();
        let mut state = 0x5eed_cafe_u64;
        let mut rng = move |n: usize| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % n.max(1) as u64) as usize
        };
        let ops = random_ops(&spec.functions, &ind, "initiate", 20, &mut rng).unwrap();
        let (m1, s1) = cross_check_threads(&spec.functions, &mut ind, &ops, 1).unwrap();
        for threads in THREADS {
            let (m, s) = cross_check_threads(&spec.functions, &mut ind, &ops, threads).unwrap();
            assert_eq!(m, m1, "{name}: mismatch report at {threads} threads");
            assert_eq!(s, s1, "{name}: stats at {threads} threads");
        }
    }
}

/// Syntactically covered but semantically incomplete: `offer` on a
/// different course has no equation, so those ground instances get stuck.
fn stuck_spec() -> AlgSpec {
    let mut a = AlgSignature::new().unwrap();
    let course = a.add_param_sort("course", &["db", "ai"]).unwrap();
    a.add_query("offered", &[course], None).unwrap();
    a.add_update("initiate", &[], false).unwrap();
    a.add_update("offer", &[course], true).unwrap();
    a.add_update("cancel", &[course], true).unwrap();
    a.add_param_var("c", course).unwrap();
    a.add_param_var("c'", course).unwrap();
    let eqs = parse_equations(
        &mut a,
        &[
            ("eq1", "offered(c, initiate) = False"),
            ("eq3", "offered(c, offer(c, U)) = True"),
            ("eq6", "offered(c, cancel(c, U)) = False"),
            ("eq7", "c != c' ==> offered(c, cancel(c', U)) = offered(c, U)"),
        ],
    )
    .unwrap();
    AlgSpec::new(a, eqs).unwrap()
}

/// Two rules that genuinely disagree on ground instances.
fn conflicting_spec() -> AlgSpec {
    let mut a = AlgSignature::new().unwrap();
    let course = a.add_param_sort("course", &["db"]).unwrap();
    a.add_query("offered", &[course], None).unwrap();
    a.add_update("initiate", &[], false).unwrap();
    a.add_update("offer", &[course], true).unwrap();
    a.add_param_var("c", course).unwrap();
    let eqs = parse_equations(
        &mut a,
        &[
            ("good", "offered(c, offer(c, U)) = True"),
            ("evil", "offered(c, offer(c, U)) = False"),
            ("base", "offered(c, initiate) = False"),
        ],
    )
    .unwrap();
    AlgSpec::new(a, eqs).unwrap()
}

/// A single catch-all equation: no two left-hand sides overlap.
fn overlap_free_spec() -> AlgSpec {
    let mut a = AlgSignature::new().unwrap();
    let course = a.add_param_sort("course", &["db", "ai"]).unwrap();
    a.add_query("offered", &[course], None).unwrap();
    a.add_update("initiate", &[], false).unwrap();
    a.add_update("offer", &[course], true).unwrap();
    a.add_param_var("c", course).unwrap();
    let eqs = parse_equations(&mut a, &[("all", "offered(c, U) = False")]).unwrap();
    AlgSpec::new(a, eqs).unwrap()
}

#[test]
fn parallel_confluence_matches_serial_on_every_domain() {
    for (name, spec, _) in domains() {
        let alg = &spec.functions;
        let serial = confluence::critical_overlaps_threads(alg, 1).unwrap();
        for threads in THREADS {
            let par = confluence::critical_overlaps_threads(alg, threads).unwrap();
            assert_eq!(par, serial, "{name}: overlap report at {threads} threads");
        }
        for o in &serial {
            let e1 = alg.equation(&o.first).unwrap();
            let e2 = alg.equation(&o.second).unwrap();
            let r1 = confluence::resolve_overlap_on_ground_threads(alg, e1, e2, 2, 1).unwrap();
            for threads in THREADS {
                let r = confluence::resolve_overlap_on_ground_threads(alg, e1, e2, 2, threads)
                    .unwrap();
                assert_eq!(
                    r, r1,
                    "{name}: {}/{} ground resolution at {threads} threads",
                    o.first, o.second
                );
            }
        }

        // Pair-level parallelism: the whole overlap list resolved against a
        // shared ground space, workers striding over pairs.
        let space = eclectic_algebraic::induction::GroundSpace::new(alg.signature(), 2).unwrap();
        let pairs: Vec<_> = serial
            .iter()
            .map(|o| {
                (
                    alg.equation(&o.first).unwrap(),
                    alg.equation(&o.second).unwrap(),
                )
            })
            .collect();
        let batch1 = confluence::resolve_overlaps_in(alg, &space, &pairs, 1).unwrap();
        for threads in THREADS {
            let batch = confluence::resolve_overlaps_in(alg, &space, &pairs, threads).unwrap();
            assert_eq!(batch, batch1, "{name}: pair batch at {threads} threads");
        }
        // And it agrees with the one-pair-at-a-time entry point.
        for (pair, r) in pairs.iter().zip(&batch1) {
            let single =
                confluence::resolve_overlap_in(alg, &space, pair.0, pair.1, 1).unwrap();
            assert_eq!(&single, r, "{name}: batch vs single-pair resolution");
        }
    }
}

#[test]
fn parallel_confluence_edge_specs_match_serial() {
    // No overlaps at all: every thread count agrees on the empty report.
    let empty = overlap_free_spec();
    for threads in [1, 2, 4, 8] {
        assert!(confluence::critical_overlaps_threads(&empty, threads)
            .unwrap()
            .is_empty());
    }

    // A genuine disagreement: the stop event (fired count + rendering) must
    // be bit-identical at every thread count.
    let bad = conflicting_spec();
    let e1 = bad.equation("good").unwrap();
    let e2 = bad.equation("evil").unwrap();
    let serial = confluence::resolve_overlap_on_ground_threads(&bad, e1, e2, 2, 1).unwrap();
    assert!(serial.1.is_some());
    for threads in THREADS {
        let par = confluence::resolve_overlap_on_ground_threads(&bad, e1, e2, 2, threads).unwrap();
        assert_eq!(par, serial, "disagreement at {threads} threads");
    }
}

#[test]
fn parallel_completeness_matches_serial_on_every_domain() {
    for (name, spec, _) in domains() {
        let serial = completeness::exhaustive_threads(&spec.functions, 3, 20, 1).unwrap();
        assert!(serial.is_sufficiently_complete(), "{name}");
        for threads in THREADS {
            let par = completeness::exhaustive_threads(&spec.functions, 3, 20, threads).unwrap();
            assert_eq!(par, serial, "{name}: completeness report at {threads} threads");
        }
    }
}

#[test]
fn parallel_completeness_early_stop_matches_serial() {
    // The stuck spec trips the failure cap; the replay must stop at the
    // same instance (same `stuck` prefix, same `evaluated`) as serial.
    let spec = stuck_spec();
    for max_failures in [1, 3, 50] {
        let serial = completeness::exhaustive_threads(&spec, 3, max_failures, 1).unwrap();
        assert!(!serial.is_sufficiently_complete());
        for threads in THREADS {
            let par = completeness::exhaustive_threads(&spec, 3, max_failures, threads).unwrap();
            assert_eq!(
                par, serial,
                "stuck spec, cap {max_failures}, {threads} threads"
            );
        }
    }
}

#[test]
fn parallel_pdl_batch_obligations_match_serial_on_every_domain() {
    // The dynamic-logic obligations run through the batched PDL model
    // checker; verdicts must not depend on the worker count. (The bank
    // universe exceeds the cap and exercises the graceful-skip path.)
    for (name, spec, _) in domains() {
        let serial =
            check_dynamic_threads(&spec.representation, &spec.empty_state(), 1_024, 1).unwrap();
        assert!(serial.is_correct(), "{name}: {:?}", serial.failures);
        for threads in THREADS {
            let par =
                check_dynamic_threads(&spec.representation, &spec.empty_state(), 1_024, threads)
                    .unwrap();
            assert_eq!(par.failures, serial.failures, "{name} at {threads} threads");
            assert_eq!(par.checked, serial.checked, "{name} at {threads} threads");
            assert_eq!(
                par.universe_states, serial.universe_states,
                "{name} at {threads} threads"
            );
            assert_eq!(
                par.unchecked_procs, serial.unchecked_procs,
                "{name} at {threads} threads"
            );
            assert_eq!(par.skipped, serial.skipped, "{name} at {threads} threads");
        }
    }
}

#[test]
fn parallel_rpr_reachability_matches_serial_on_every_domain() {
    for (name, spec, depth) in domains() {
        let mk = || {
            InducedAlgebra::new(
                &spec.functions,
                &spec.representation,
                &spec.interp_k,
                spec.empty_state(),
            )
            .unwrap()
        };
        let (serial, t1) = mk().reachable_states_threads(depth, 10_000, 1).unwrap();
        for threads in THREADS {
            let (par, t) = mk()
                .reachable_states_threads(depth, 10_000, threads)
                .unwrap();
            assert_eq!(par, serial, "{name}: state order at {threads} threads");
            assert_eq!(t, t1, "{name}: truncation at {threads} threads");
        }
    }
}

// ---------------------------------------------------------------------------
// Budget exhaustion: every governed sweep must produce the SAME partial
// report at every thread count when the (deterministic) node axis trips.
// ---------------------------------------------------------------------------

const BUDGET_THREADS: [usize; 4] = [1, 2, 4, 8];

fn node_budget(cap: usize) -> Budget {
    Budget::unlimited().with_max_nodes(cap)
}

#[test]
fn node_capped_exploration_partial_report_is_thread_invariant() {
    for (name, spec, depth) in domains() {
        let limits = AlgExploreLimits {
            max_depth: depth,
            max_states: 10_000,
        };
        let budget = node_budget(200);
        let base = explore_algebraic_budget(
            &spec.functions,
            &spec.interp_i,
            spec.info_signature(),
            &spec.info_domains,
            limits,
            &budget,
            1,
        )
        .unwrap();
        assert!(base.truncated, "{name}: cap 200 must trip");
        let exhausted = base.exhausted.clone().expect(name);
        assert_eq!(exhausted.stage, "explore", "{name}");
        assert_eq!(exhausted.reason, BudgetExceeded::Nodes, "{name}");
        for threads in BUDGET_THREADS {
            let par = explore_algebraic_budget(
                &spec.functions,
                &spec.interp_i,
                spec.info_signature(),
                &spec.info_domains,
                limits,
                &budget,
                threads,
            )
            .unwrap();
            assert_eq!(par.exhausted, base.exhausted, "{name} at {threads} threads");
            assert_eq!(
                par.universe.state_count(),
                base.universe.state_count(),
                "{name}: partial state count at {threads} threads"
            );
            assert_eq!(
                par.witnesses, base.witnesses,
                "{name}: partial witnesses at {threads} threads"
            );
            assert_eq!(par.depth, base.depth, "{name} at {threads} threads");
        }
    }
}

#[test]
fn node_capped_rpr_reachability_partial_report_is_thread_invariant() {
    for (name, spec, depth) in domains() {
        let mk = || {
            InducedAlgebra::new(
                &spec.functions,
                &spec.representation,
                &spec.interp_k,
                spec.empty_state(),
            )
            .unwrap()
        };
        let budget = node_budget(4);
        let base = mk()
            .reachable_states_budget(depth, 10_000, &budget, 1)
            .unwrap();
        assert!(base.1, "{name}: cap 4 must truncate");
        assert!(base.2.is_some(), "{name}: cap 4 must trip");
        assert_eq!(base.2.as_ref().unwrap().stage, "reach", "{name}");
        for threads in BUDGET_THREADS {
            let par = mk()
                .reachable_states_budget(depth, 10_000, &budget, threads)
                .unwrap();
            assert_eq!(par, base, "{name}: partial reach at {threads} threads");
        }
    }
}

#[test]
fn op_capped_cross_check_partial_report_is_thread_invariant() {
    for (name, spec, _) in domains() {
        let mut ind = InducedAlgebra::new(
            &spec.functions,
            &spec.representation,
            &spec.interp_k,
            spec.empty_state(),
        )
        .unwrap();
        let mut state = 0x5eed_cafe_u64;
        let mut rng = move |n: usize| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % n.max(1) as u64) as usize
        };
        let ops = random_ops(&spec.functions, &ind, "initiate", 20, &mut rng).unwrap();
        let budget = node_budget(7);
        let base = cross_check_budget(&spec.functions, &mut ind, &ops, &budget, 1).unwrap();
        assert!(base.2.is_some(), "{name}: cap 7 must trip on 20 ops");
        let e = base.2.as_ref().unwrap();
        assert_eq!((e.stage, e.completed_units), ("cross", 7), "{name}");
        for threads in BUDGET_THREADS {
            let par =
                cross_check_budget(&spec.functions, &mut ind, &ops, &budget, threads).unwrap();
            assert_eq!(par, base, "{name}: partial cross-check at {threads} threads");
        }
    }
}

#[test]
fn instance_capped_completeness_partial_report_is_thread_invariant() {
    for (name, spec, _) in domains() {
        let budget = node_budget(50);
        let base = completeness::exhaustive_budget(&spec.functions, 3, 20, &budget, 1).unwrap();
        let e = base.exhausted.clone().expect(name);
        assert_eq!(
            (e.stage, e.completed_units),
            ("completeness", 50),
            "{name}"
        );
        for threads in BUDGET_THREADS {
            let par =
                completeness::exhaustive_budget(&spec.functions, 3, 20, &budget, threads)
                    .unwrap();
            assert_eq!(par, base, "{name}: partial completeness at {threads} threads");
        }
    }
}

#[test]
fn pair_capped_confluence_partial_report_is_thread_invariant() {
    for (name, spec, _) in domains() {
        let alg = &spec.functions;
        let overlaps = confluence::critical_overlaps_threads(alg, 1).unwrap();
        if overlaps.is_empty() {
            continue;
        }
        let space = eclectic_algebraic::induction::GroundSpace::new(alg.signature(), 2).unwrap();
        let pairs: Vec<_> = overlaps
            .iter()
            .map(|o| {
                (
                    alg.equation(&o.first).unwrap(),
                    alg.equation(&o.second).unwrap(),
                )
            })
            .collect();
        for cap in [0, pairs.len().saturating_sub(1)] {
            let budget = node_budget(cap);
            let base = confluence::resolve_overlaps_budget_in(alg, &space, &pairs, &budget, 1)
                .unwrap();
            let e = base.1.clone().expect(name);
            assert_eq!((e.stage, e.completed_units), ("confluence", cap), "{name}");
            assert_eq!(base.0.len(), cap, "{name}: resolved prefix length");
            for threads in BUDGET_THREADS {
                let par =
                    confluence::resolve_overlaps_budget_in(alg, &space, &pairs, &budget, threads)
                        .unwrap();
                assert_eq!(
                    par, base,
                    "{name}: partial confluence, cap {cap}, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn application_capped_dynamic_partial_report_is_thread_invariant() {
    for (name, spec, _) in domains() {
        let budget = node_budget(5);
        let base =
            check_dynamic_budget(&spec.representation, &spec.empty_state(), 1_024, &budget, 1)
                .unwrap();
        if base.skipped.is_none() {
            let e = base.exhausted.clone().expect(name);
            assert_eq!((e.stage, e.completed_units), ("dynamic", 5), "{name}");
            assert_eq!(base.checked, 5, "{name}");
        }
        for threads in BUDGET_THREADS {
            let par = check_dynamic_budget(
                &spec.representation,
                &spec.empty_state(),
                1_024,
                &budget,
                threads,
            )
            .unwrap();
            assert_eq!(par.failures, base.failures, "{name} at {threads} threads");
            assert_eq!(par.checked, base.checked, "{name} at {threads} threads");
            assert_eq!(par.exhausted, base.exhausted, "{name} at {threads} threads");
            assert_eq!(par.skipped, base.skipped, "{name} at {threads} threads");
        }
    }
}

/// The tiny universe and formula batch of the rpr PDL unit tests: three
/// distinct programs to denote, four formulas to judge.
fn pdl_fixture() -> (FiniteUniverse, Vec<Pdl>) {
    let mut sig = Signature::new();
    let course = sig.add_sort("course").unwrap();
    let offered = sig.add_db_predicate("OFFERED", &[course]).unwrap();
    let x = sig.add_constant("x", course).unwrap();
    let dom = Domains::from_names(&sig, &[("course", &["db"])]).unwrap();
    let sig = Arc::new(sig);
    let mut template = DbState::new(sig.clone(), Arc::new(dom));
    template.set_scalar(x, Elem(0)).unwrap();
    let u = FiniteUniverse::enumerate(&template, &[offered], &[x], 100).unwrap();
    let insert = Stmt::Insert(offered, vec![LogicTerm::constant(x)]);
    let atom = Pdl::Atom(Formula::Pred(offered, vec![LogicTerm::constant(x)]));
    let formulas = vec![
        Pdl::after_all(insert.clone(), atom.clone()),
        Pdl::after_some(insert.clone(), atom.clone()),
        Pdl::after_all(Stmt::Skip, atom.clone()),
        Pdl::after_all(insert.seq(Stmt::Skip), atom),
    ];
    (u, formulas)
}

#[test]
fn unit_capped_pdl_batch_partial_report_is_thread_invariant() {
    let (u, formulas) = pdl_fixture();
    // Cap 2 trips during the denotation phase (3 distinct programs): no
    // verdicts. Cap 5 trips during the judgement phase (units 3 + j): a
    // two-formula verdict prefix survives.
    for (cap, verdicts) in [(2, 0), (5, 2)] {
        let budget = node_budget(cap);
        let base = check_batch_budget(&formulas, &u, &budget, 1).unwrap();
        let e = base.exhausted.clone().expect("cap must trip");
        assert_eq!((e.stage, e.completed_units), ("pdl", cap));
        assert_eq!(base.valid.len(), verdicts, "verdict prefix at cap {cap}");
        for threads in BUDGET_THREADS {
            let par = check_batch_budget(&formulas, &u, &budget, threads).unwrap();
            assert_eq!(par.satisfying, base.satisfying, "cap {cap}, {threads} threads");
            assert_eq!(par.valid, base.valid, "cap {cap}, {threads} threads");
            assert_eq!(par.exhausted, base.exhausted, "cap {cap}, {threads} threads");
        }
    }
}

#[test]
fn instance_capped_equation_check_reports_exhaustion() {
    let spec = courses::courses(&courses::CoursesConfig::default()).unwrap();
    let mk = || {
        InducedAlgebra::new(
            &spec.functions,
            &spec.representation,
            &spec.interp_k,
            spec.empty_state(),
        )
        .unwrap()
    };
    let budget = node_budget(100);
    let base = check_equations_budget(&mut mk(), 3, 2_000, 20, &budget).unwrap();
    let e = base.exhausted.clone().expect("cap 100 must trip");
    assert_eq!((e.stage, e.completed_units), ("equations", 100));
    assert_eq!(base.instances, 100);
    // Replay: the instance axis is deterministic.
    let again = check_equations_budget(&mut mk(), 3, 2_000, 20, &budget).unwrap();
    assert_eq!(again.exhausted, base.exhausted);
    assert_eq!(again.instances, base.instances);
    assert_eq!(again.failures, base.failures);
}

#[test]
fn deadline_interrupts_oversized_exploration_instead_of_hanging() {
    // A carrier far too large to finish in 100 ms: the budget's deadline
    // axis must stop the (iterative, level-synchronous) sweep gracefully,
    // on both the serial and the parallel path.
    let spec = bank::bank(&bank::BankConfig::sized(5, 6)).unwrap();
    let limits = AlgExploreLimits {
        max_depth: 1_000_000,
        max_states: 1_000_000,
    };
    for threads in [1, 4] {
        let budget = Budget::unlimited().with_deadline_ms(100);
        let started = std::time::Instant::now();
        let out = explore_algebraic_budget(
            &spec.functions,
            &spec.interp_i,
            spec.info_signature(),
            &spec.info_domains,
            limits,
            &budget,
            threads,
        )
        .unwrap();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "deadline ignored at {threads} threads"
        );
        let e = out.exhausted.expect("deadline must trip");
        assert_eq!(e.stage, "explore");
        assert_eq!(e.reason, BudgetExceeded::Deadline);
        assert!(out.truncated);
    }
}

#[test]
fn verify_under_tiny_node_cap_reports_deterministic_partial_outcome() {
    let spec = courses::courses(&courses::CoursesConfig::default()).unwrap();
    let mut config = VerifyConfig::quick();
    config.max_nodes = Some(200);
    let run = || {
        let outcome = verify(&spec, &config).unwrap();
        assert!(outcome.exhausted().is_some(), "cap 200 must trip");
        assert!(!outcome.is_correct(), "a partial run never claims success");
        outcome
            .stages
            .iter()
            .map(|s| (s.name, s.exhausted.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "per-stage exhaustion must replay identically");
}

#[test]
fn parallel_binrel_star_and_compose_match_serial() {
    use eclectic_rpr::BinRel;
    // Sizes straddling the kernel's serial threshold: small relations take
    // the serial path regardless of the thread argument, the 300/512 cases
    // genuinely fan rows across workers.
    let mut state = 0x05ee_d0b1_75e7_u64;
    let mut next = |n: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % n as u64) as usize
    };
    for n in [3usize, 64, 300, 512] {
        let mut r = BinRel::with_dim(n);
        for _ in 0..n * 2 {
            let (a, b) = (next(n), next(n));
            r.insert(a, b);
        }
        let star = r.star(n);
        let comp = r.compose(&r);
        for threads in [2, 4, 8] {
            assert_eq!(r.star_threads(n, threads), star, "star n={n} t={threads}");
            assert_eq!(
                r.compose_threads(&r, threads),
                comp,
                "compose n={n} t={threads}"
            );
        }
        // Governed variants under an unlimited budget are the same code
        // path with live polls; they must not perturb the output either.
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                r.star_governed(n, &Budget::unlimited(), threads).unwrap(),
                star,
                "governed star n={n} t={threads}"
            );
            assert_eq!(
                r.compose_governed(&r, &Budget::unlimited(), threads).unwrap(),
                comp,
                "governed compose n={n} t={threads}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler-specific cases. The tests above run under `effective_workers`,
// which clamps to the host's cores — on a small CI box "8 threads" can mean
// one real worker. Here the cap override lifts that clamp so 2/4/8 workers
// GENUINELY run on the shared pool, and the work-stealing executor is
// compared against the scoped-thread baseline bit for bit. The override
// guards serialize these tests against each other.
// ---------------------------------------------------------------------------

#[test]
fn work_stealing_matches_scoped_baseline_at_real_worker_counts() {
    use eclectic_kernel::{force_sched_mode, force_worker_cap, SchedMode};
    let _cap = force_worker_cap(usize::MAX);
    for (name, spec, depth) in domains() {
        let limits = AlgExploreLimits {
            // Bound the deepest domain: the point is scheduling, not volume.
            max_depth: depth.min(6),
            max_states: 10_000,
        };
        let explore = |threads: usize| {
            explore_algebraic_threads(
                &spec.functions,
                &spec.interp_i,
                spec.info_signature(),
                &spec.info_domains,
                limits,
                threads,
            )
            .unwrap()
        };
        let reference = {
            let _m = force_sched_mode(SchedMode::Scoped);
            explore(1)
        };
        let ref_dynamic = {
            let _m = force_sched_mode(SchedMode::Scoped);
            check_dynamic_threads(&spec.representation, &spec.empty_state(), 1_024, 1).unwrap()
        };
        let ref_complete = {
            let _m = force_sched_mode(SchedMode::Scoped);
            completeness::exhaustive_threads(&spec.functions, 3, 20, 1).unwrap()
        };
        // Work-stealing at every worker count, plus the scoped mode at 4
        // workers, must all reproduce the 1-worker scoped reference.
        let runs = [
            (SchedMode::Steal, 1),
            (SchedMode::Steal, 2),
            (SchedMode::Steal, 4),
            (SchedMode::Steal, 8),
            (SchedMode::Scoped, 4),
        ];
        for (mode, threads) in runs {
            let _m = force_sched_mode(mode);
            let par = explore(threads);
            assert_eq!(
                par.witnesses, reference.witnesses,
                "{name}: witnesses, {mode:?} at {threads} workers"
            );
            assert_eq!(
                par.universe.edge_count(),
                reference.universe.edge_count(),
                "{name}: edges, {mode:?} at {threads} workers"
            );
            assert_eq!(
                par.truncated, reference.truncated,
                "{name}: truncation, {mode:?} at {threads} workers"
            );
            let dynamic =
                check_dynamic_threads(&spec.representation, &spec.empty_state(), 1_024, threads)
                    .unwrap();
            assert_eq!(
                dynamic.failures, ref_dynamic.failures,
                "{name}: PDL verdicts, {mode:?} at {threads} workers"
            );
            assert_eq!(
                dynamic.checked, ref_dynamic.checked,
                "{name}: PDL volume, {mode:?} at {threads} workers"
            );
            let complete =
                completeness::exhaustive_threads(&spec.functions, 3, 20, threads).unwrap();
            assert_eq!(
                complete, ref_complete,
                "{name}: completeness, {mode:?} at {threads} workers"
            );
        }
    }
}

#[test]
fn node_capped_partials_are_bit_identical_under_real_stealing() {
    use eclectic_kernel::{force_sched_mode, force_worker_cap, SchedMode};
    let _cap = force_worker_cap(usize::MAX);
    let _m = force_sched_mode(SchedMode::Steal);
    for (name, spec, depth) in domains() {
        let limits = AlgExploreLimits {
            max_depth: depth,
            max_states: 10_000,
        };
        let budget = node_budget(200);
        let base = explore_algebraic_budget(
            &spec.functions,
            &spec.interp_i,
            spec.info_signature(),
            &spec.info_domains,
            limits,
            &budget,
            1,
        )
        .unwrap();
        assert!(base.truncated, "{name}: cap 200 must trip under stealing");
        assert_eq!(
            base.exhausted.as_ref().map(|e| e.reason),
            Some(BudgetExceeded::Nodes),
            "{name}"
        );
        for threads in [2, 4, 8] {
            let par = explore_algebraic_budget(
                &spec.functions,
                &spec.interp_i,
                spec.info_signature(),
                &spec.info_domains,
                limits,
                &budget,
                threads,
            )
            .unwrap();
            assert_eq!(
                par.exhausted, base.exhausted,
                "{name}: exhaustion at {threads} real workers"
            );
            assert_eq!(
                par.witnesses, base.witnesses,
                "{name}: partial witnesses at {threads} real workers"
            );
            assert_eq!(
                par.universe.state_count(),
                base.universe.state_count(),
                "{name}: partial states at {threads} real workers"
            );
        }
    }
    // The PDL batch's serial-unit cap must also replay exactly with real
    // workers stealing denotation and judgement items.
    let (u, formulas) = pdl_fixture();
    for (cap, verdicts) in [(2, 0), (5, 2)] {
        let budget = node_budget(cap);
        let base = check_batch_budget(&formulas, &u, &budget, 1).unwrap();
        assert_eq!(base.valid.len(), verdicts, "verdict prefix at cap {cap}");
        for threads in [2, 4, 8] {
            let par = check_batch_budget(&formulas, &u, &budget, threads).unwrap();
            assert_eq!(par.valid, base.valid, "cap {cap} at {threads} real workers");
            assert_eq!(
                par.exhausted, base.exhausted,
                "cap {cap} at {threads} real workers"
            );
        }
    }
}

#[test]
fn mid_sweep_cancel_leaves_shared_memos_unpoisoned() {
    use eclectic_kernel::{force_sched_mode, force_worker_cap, CancelToken, SchedMode};
    let _cap = force_worker_cap(usize::MAX);
    let _m = force_sched_mode(SchedMode::Steal);
    let spec = courses::courses(&courses::CoursesConfig::default()).unwrap();
    let mk_ind = || {
        InducedAlgebra::new(
            &spec.functions,
            &spec.representation,
            &spec.interp_k,
            spec.empty_state(),
        )
        .unwrap()
    };
    let mut state = 0x5eed_cafe_u64;
    let mut rng = move |n: usize| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % n.max(1) as u64) as usize
    };
    let ops = random_ops(&spec.functions, &mk_ind(), "initiate", 20, &mut rng).unwrap();

    // Pristine reference: a fresh algebra, no cancellation anywhere.
    let mut pristine = mk_ind();
    let expected =
        cross_check_budget(&spec.functions, &mut pristine, &ops, &Budget::unlimited(), 4).unwrap();
    assert!(expected.2.is_none(), "reference run must complete");

    let mut ind = mk_ind();
    // An already-flipped token trips at the first poll: a deterministic
    // partial at every real worker count.
    let token = CancelToken::new();
    token.cancel();
    let cancelled = Budget::unlimited().with_cancel(token);
    for threads in [1, 2, 4, 8] {
        let out = cross_check_budget(&spec.functions, &mut ind, &ops, &cancelled, threads).unwrap();
        assert_eq!(
            out.2.as_ref().map(|e| e.reason),
            Some(BudgetExceeded::Cancelled),
            "pre-tripped token at {threads} workers"
        );
    }
    // A token flipped WHILE the sweep runs: whether or not workers observe
    // it in time, the run must not corrupt the shared rewrite memos.
    let racing = CancelToken::new();
    let budget = Budget::unlimited().with_cancel(racing.clone());
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_micros(200));
        racing.cancel();
    });
    let _ = cross_check_budget(&spec.functions, &mut ind, &ops, &budget, 8).unwrap();
    canceller.join().unwrap();

    // The same (warmed, repeatedly interrupted) algebra must now finish the
    // sweep and agree bit-for-bit with the pristine reference: cancellation
    // may cut a sweep short but never poisons what the memos retain.
    let redo =
        cross_check_budget(&spec.functions, &mut ind, &ops, &Budget::unlimited(), 4).unwrap();
    assert_eq!(redo, expected, "memos must be unpoisoned after cancellation");
}

// ---------------------------------------------------------------------------
// Obligation-DAG battery shape. The fine shape decomposes the staged battery
// into per-obligation pool tasks (per-procedure dynamic units, per-pair
// overlaps, completeness strips, refine12 obligations with dependency edges
// into witness enumeration); its reports must be bit-identical to the
// chain-shaped battery and the serial reference at every genuine worker
// count, under both scheduler modes, including budget-capped partials.
// ---------------------------------------------------------------------------

#[test]
fn obligation_dag_battery_matches_serial_reference_on_every_domain() {
    use eclectic_kernel::{force_worker_cap, RelChoice, SchedMode};
    use eclectic_spec::fuzz::{engine_outcome_shaped, outcome_difference};
    use eclectic_spec::DagShape;
    let _cap = force_worker_cap(usize::MAX);
    let vc = VerifyConfig::quick();
    for (name, spec, _) in domains() {
        let reference = engine_outcome_shaped(
            &spec,
            &vc,
            RelChoice::Dense,
            SchedMode::Steal,
            1,
            DagShape::Chain,
        );
        for mode in [SchedMode::Steal, SchedMode::Scoped] {
            for workers in BUDGET_THREADS {
                let fine =
                    engine_outcome_shaped(&spec, &vc, RelChoice::Dense, mode, workers, DagShape::Fine);
                if let Some(detail) = outcome_difference(&reference, &fine) {
                    panic!("{name}: fine DAG under {mode:?} at {workers} workers diverged: {detail}");
                }
            }
        }
    }
}

#[test]
fn node_capped_exhaustion_partial_is_shape_and_worker_invariant() {
    // A node cap tripping mid-grid inside refine12: the partial outcome —
    // which stages ran, which stage recorded the Exhaustion, and the
    // truncated exploration itself — must not depend on the battery shape
    // or the number of genuine workers, because the cap is polled at
    // serial slot indices and the merge replays slots in serial order.
    use eclectic_kernel::{force_sched_mode, force_worker_cap, SchedMode};
    use eclectic_spec::{force_dag_shape, verify_with_threads, DagShape};
    let _cap = force_worker_cap(usize::MAX);
    let _m = force_sched_mode(SchedMode::Steal);
    let mut config = VerifyConfig::quick();
    config.max_nodes = Some(200);
    for (name, spec, _) in domains() {
        let fingerprint = |shape: DagShape, workers: usize| {
            let _s = force_dag_shape(shape);
            let o = verify_with_threads(&spec, &config, workers).unwrap();
            (
                o.is_correct(),
                format!("{:?}", o.report.refine12.exploration.exhausted),
                o.stages
                    .iter()
                    .map(|s| (s.name, s.exhausted.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        let base = fingerprint(DagShape::Chain, 1);
        assert!(
            base.2.iter().any(|(_, e)| e.is_some()),
            "{name}: cap 200 must trip a stage"
        );
        for shape in [DagShape::Chain, DagShape::Fine] {
            for workers in BUDGET_THREADS {
                assert_eq!(
                    fingerprint(shape, workers),
                    base,
                    "{name}: capped partial, {shape:?} at {workers} workers"
                );
            }
        }
    }
}

#[test]
fn mid_sweep_cancel_trips_dynamic_units_without_poisoning_shared_state() {
    // The per-procedure dynamic units of the obligation DAG under a
    // CancelToken: a pre-tripped token stops every unit at its first slot
    // and the merge reports the cancellation at slot 0; a token flipped
    // while units are in flight may cut the sweep anywhere, but must leave
    // the schema and template reusable — a fresh uncancelled run must
    // reproduce the pristine report bit for bit.
    use eclectic_kernel::{force_sched_mode, force_worker_cap, CancelToken, SchedMode};
    use eclectic_refine::{plan_dynamic, DynamicPrep};
    let _cap = force_worker_cap(usize::MAX);
    let _m = force_sched_mode(SchedMode::Steal);
    let spec = courses::courses(&courses::CoursesConfig::default()).unwrap();
    let pristine =
        check_dynamic_budget(&spec.representation, &spec.empty_state(), 1_024, &Budget::unlimited(), 4)
            .unwrap();
    assert!(pristine.exhausted.is_none(), "reference run must complete");

    let plan = |budget: &Budget| match plan_dynamic(
        &spec.representation,
        &spec.empty_state(),
        1_024,
        budget,
    )
    .unwrap()
    {
        DynamicPrep::Plan(p) => p,
        DynamicPrep::Done(r) => panic!("courses must leave per-procedure units, got {r:?}"),
    };

    // Pre-tripped token: every unit stops at the first slot of its range,
    // so the merged stop replays at global slot 0 with nothing checked.
    let token = CancelToken::new();
    token.cancel();
    let cancelled = Budget::unlimited().with_cancel(token);
    let p = plan(&Budget::unlimited());
    let outcomes: Vec<_> = (0..p.procs())
        .map(|i| p.run_proc(i, &cancelled, 1).unwrap())
        .collect();
    let report = p.merge(outcomes, &cancelled);
    assert_eq!(
        report.exhausted.as_ref().map(|e| e.reason),
        Some(BudgetExceeded::Cancelled),
        "pre-tripped token must surface as a cancellation partial"
    );
    assert_eq!(report.checked, 0, "no slot may complete under a tripped token");
    assert!(report.failures.is_empty());

    // Token flipped WHILE units run on the pool: whatever prefix survives,
    // the shared inputs must not be poisoned.
    let racing = CancelToken::new();
    let budget = Budget::unlimited().with_cancel(racing.clone());
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_micros(200));
        racing.cancel();
    });
    let p = plan(&budget);
    let outcomes: Vec<_> = (0..p.procs())
        .map(|i| p.run_proc(i, &budget, 4).unwrap())
        .collect();
    let _ = p.merge(outcomes, &budget);
    canceller.join().unwrap();

    // A fresh uncancelled plan over the same schema and template must agree
    // with the monolithic pristine reference exactly.
    let p = plan(&Budget::unlimited());
    let outcomes: Vec<_> = (0..p.procs())
        .map(|i| p.run_proc(i, &Budget::unlimited(), 4).unwrap())
        .collect();
    let redo = p.merge(outcomes, &Budget::unlimited());
    assert_eq!(redo.failures, pristine.failures, "verdicts after cancellation");
    assert_eq!(redo.checked, pristine.checked, "volume after cancellation");
    assert_eq!(redo.universe_states, pristine.universe_states);
    assert_eq!(redo.unchecked_procs, pristine.unchecked_procs);
    assert_eq!(redo.skipped, pristine.skipped);
    assert!(redo.exhausted.is_none(), "uncancelled replay must complete");
}

#[test]
fn sparse_backend_star_compose_and_capped_pdl_are_thread_invariant() {
    use eclectic_kernel::{force_rel_backend, RelChoice};
    use eclectic_rpr::BinRel;
    // Pin every relation to the sparse adjacency backend: the same
    // bit-identity guarantees the dense kernel gives must hold on the
    // semi-naive sparse kernels at every worker count.
    let _g = force_rel_backend(RelChoice::Sparse);
    let mut state = 0x0005_a7e1_117e_u64;
    let mut next = |n: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % n as u64) as usize
    };
    // 512 straddles the parallel threshold: rows genuinely fan out.
    for n in [64usize, 512] {
        let mut r = BinRel::with_dim(n);
        for _ in 0..n * 2 {
            let (a, b) = (next(n), next(n));
            r.insert(a, b);
        }
        let star = r.star_threads(n, 1);
        let comp = r.compose_threads(&r, 1);
        for threads in BUDGET_THREADS {
            assert_eq!(r.star_threads(n, threads), star, "star n={n} t={threads}");
            assert_eq!(
                r.compose_threads(&r, threads),
                comp,
                "compose n={n} t={threads}"
            );
        }
    }
    // Node caps are enforced at serial-order units in the PDL batch, so
    // the partial report stays bit-identical on the sparse backend too.
    let (u, formulas) = pdl_fixture();
    for (cap, verdicts) in [(2, 0), (5, 2)] {
        let budget = node_budget(cap);
        let base = check_batch_budget(&formulas, &u, &budget, 1).unwrap();
        let e = base.exhausted.clone().expect("cap must trip on sparse");
        assert_eq!((e.stage, e.completed_units), ("pdl", cap));
        assert_eq!(base.valid.len(), verdicts, "sparse verdict prefix, cap {cap}");
        for threads in BUDGET_THREADS {
            let par = check_batch_budget(&formulas, &u, &budget, threads).unwrap();
            assert_eq!(par.satisfying, base.satisfying, "cap {cap}, {threads} threads");
            assert_eq!(par.valid, base.valid, "cap {cap}, {threads} threads");
            assert_eq!(par.exhausted, base.exhausted, "cap {cap}, {threads} threads");
        }
    }
}

#[test]
fn compressed_backend_closure_and_capped_pdl_are_thread_invariant() {
    use eclectic_kernel::{force_rel_backend, RelChoice};
    use eclectic_rpr::BinRel;
    // Pin every relation to the compressed container backend: the chunked
    // row representation must give the same bit-identity guarantees the
    // dense and sparse kernels do, at every worker count, including for
    // the semi-naive closure's row fan-out and node-capped PDL partials.
    let _g = force_rel_backend(RelChoice::Compressed);
    let mut state = 0x000c_a7e1_117e_u64;
    let mut next = |n: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % n as u64) as usize
    };
    // 512 straddles the parallel threshold: rows genuinely fan out across
    // workers; 64 stays serial — both must agree with the 1-worker run.
    for n in [64usize, 512] {
        let mut r = BinRel::with_dim(n);
        for _ in 0..n * 2 {
            let (a, b) = (next(n), next(n));
            r.insert(a, b);
        }
        let star = r.star_threads(n, 1);
        let comp = r.compose_threads(&r, 1);
        for threads in BUDGET_THREADS {
            assert_eq!(r.star_threads(n, threads), star, "star n={n} t={threads}");
            assert_eq!(
                r.compose_threads(&r, threads),
                comp,
                "compose n={n} t={threads}"
            );
        }
    }
    // The node-capped partial must stop after the same serial unit and
    // report bit-identically at 1/2/4/8 workers on this backend too.
    let (u, formulas) = pdl_fixture();
    for (cap, verdicts) in [(2, 0), (5, 2)] {
        let budget = node_budget(cap);
        let base = check_batch_budget(&formulas, &u, &budget, 1).unwrap();
        let e = base.exhausted.clone().expect("cap must trip on compressed");
        assert_eq!((e.stage, e.completed_units), ("pdl", cap));
        assert_eq!(
            base.valid.len(),
            verdicts,
            "compressed verdict prefix, cap {cap}"
        );
        for threads in BUDGET_THREADS {
            let par = check_batch_budget(&formulas, &u, &budget, threads).unwrap();
            assert_eq!(par.satisfying, base.satisfying, "cap {cap}, {threads} threads");
            assert_eq!(par.valid, base.valid, "cap {cap}, {threads} threads");
            assert_eq!(par.exhausted, base.exhausted, "cap {cap}, {threads} threads");
        }
    }
}
