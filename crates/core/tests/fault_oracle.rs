//! Validates that the differential harness has teeth: a deliberately
//! injected relation-kernel fault must surface as a divergence (or an
//! outright verification failure) on at least one fuzzed domain.
//!
//! Kept in its own integration-test binary because the fault flag is
//! process-global — no other test may share this process.

use eclectic_spec::fuzz::{run_differential, FuzzConfig};

#[test]
fn injected_sparse_union_fault_is_caught() {
    let cfg = FuzzConfig::default();
    let _fault = eclectic_kernel::force_rel_fault();
    let caught = (0..16u64).any(|seed| {
        run_differential(seed, &cfg)
            .map(|r| !r.divergences.is_empty())
            // A verification error under the fault also counts as caught.
            .unwrap_or(true)
    });
    assert!(
        caught,
        "the harness reported zero divergence across 16 seeds despite a \
         deliberately corrupted sparse union"
    );
}
