//! Quickstart: specify the paper's courses database at all three levels and
//! verify every refinement obligation in one call.
//!
//! Run with: `cargo run --example quickstart`

use eclectic::spec::domains::{courses, CoursesConfig};
use eclectic::spec::{verify, VerifyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: students and courses, with
    //   T1 — two temporal first-order axioms (§3.2),
    //   T2 — the sixteen conditional equations (§4.2),
    //   T3 — the five-procedure relational schema (§5.2),
    // bound by the interpretations I and K.
    let spec = courses(&CoursesConfig::default())?;

    println!("specification: {}", spec.name);
    println!(
        "  information level : {} axioms ({} static, {} transition)",
        spec.information.axioms.len(),
        spec.information.static_axioms().count(),
        spec.information.transition_axioms().count(),
    );
    println!(
        "  functions level   : {} queries, {} updates, {} equations",
        spec.functions.signature().queries().count(),
        spec.functions.signature().updates().count(),
        spec.functions.equations().len(),
    );
    println!(
        "  representation    : {} relations, {} procedures",
        spec.representation.relations().len(),
        spec.representation.procs().len(),
    );
    println!();
    println!("{}", eclectic::rpr::schema_str(&spec.representation));

    // Verify: W-grammar syntax, obligations (a)-(d) of §4.4, the 2→3
    // equation check of §5.4, and randomized cross-level agreement.
    let mut config = VerifyConfig::quick();
    config.refine12.limits.max_depth = 8;
    let outcome = verify(&spec, &config)?;

    println!("W-grammar syntax check: {}", if outcome.grammar_ok { "ok" } else { "FAILED" });
    println!("{}", outcome.report);
    println!(
        "cross-level testing: {} ops, {} query comparisons, {}",
        outcome.cross_stats.ops,
        outcome.cross_stats.comparisons,
        match &outcome.cross_mismatch {
            None => "all agree".to_string(),
            Some(m) => format!("MISMATCH: {m:?}"),
        }
    );

    assert!(outcome.is_correct());
    println!("\nthe representation correctly refines the functions level,");
    println!("which correctly refines the information level. □");
    Ok(())
}
