//! A registrar session: drive the courses database through a term's worth
//! of operations at *both* the functions level (term rewriting) and the
//! representation level (procedure execution), showing the levels agree
//! step by step and that rejected operations leave the state unchanged.
//!
//! Run with: `cargo run --example university_registrar`

use eclectic::algebraic::{observe, Rewriter};
use eclectic::logic::{Elem, Term};
use eclectic::rpr::exec;
use eclectic::spec::domains::courses::{courses, CoursesConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CoursesConfig {
        students: vec!["ana".into(), "bob".into(), "cy".into()],
        courses: vec!["db".into(), "logic".into(), "ai".into()],
        ..CoursesConfig::default()
    };
    let spec = courses(&config)?;
    let alg = spec.functions.signature().clone();
    let schema = &spec.representation;

    // The session script: (operation, arguments by name).
    let session: Vec<(&str, Vec<&str>)> = vec![
        ("initiate", vec![]),
        ("offer", vec!["db"]),
        ("offer", vec!["logic"]),
        ("enroll", vec!["ana", "db"]),
        ("enroll", vec!["bob", "db"]),
        ("enroll", vec!["cy", "ai"]),      // rejected: ai is not offered
        ("cancel", vec!["db"]),            // rejected: db has students
        ("transfer", vec!["ana", "db", "logic"]),
        ("transfer", vec!["bob", "db", "ai"]), // rejected: ai not offered
        ("cancel", vec!["ai"]),            // no-op: ai was never offered
        ("transfer", vec!["bob", "db", "logic"]),
        ("cancel", vec!["db"]),            // accepted now: nobody left in db
    ];

    // Replay at level 2: build the trace term and evaluate by rewriting.
    let mut trace: Option<Term> = None;
    // Replay at level 3: run the procedures.
    let mut state = spec.empty_state();

    let name_to_elem = |sort: &str, name: &str| -> Elem {
        let s = schema.signature().sort_id(sort).unwrap();
        spec.repr_domains.elem_by_name(s, name).unwrap()
    };

    for (op, args) in &session {
        // Level 2.
        let u = alg.logic().func_id(op)?;
        let mut targs: Vec<Term> = args
            .iter()
            .map(|a| Term::constant(alg.logic().func_id(a).unwrap()))
            .collect();
        let takes_state = alg.update_takes_state(u)?;
        if takes_state {
            targs.push(trace.take().expect("initiate first"));
        }
        let new_trace = Term::App(u, targs);

        // Level 3.
        let elems: Vec<Elem> = {
            let proc = schema.proc(op).unwrap();
            proc.params
                .iter()
                .zip(args)
                .map(|(&p, a)| {
                    let sort = schema.signature().var(p).sort;
                    let sort_name = schema.signature().sort_name(sort).to_string();
                    name_to_elem(&sort_name, a)
                })
                .collect()
        };
        let before = state.clone();
        state = exec::call_deterministic(schema, &state, op, &elems)?;
        let changed = state != before;

        println!(
            "{op}({}) {}",
            args.join(", "),
            if changed { "-> applied" } else { "-> no effect (precondition failed)" },
        );

        trace = Some(new_trace);
    }

    // Final comparison: every simple observation agrees between levels.
    let trace = trace.unwrap();
    let mut rw = Rewriter::new(&spec.functions);
    let obs = observe::observations(&mut rw, &trace)?;
    println!("\nfinal state ({} simple observations):", obs.len());
    let offered_rel = schema.signature().pred_id("OFFERED")?;
    let takes_rel = schema.signature().pred_id("TAKES")?;
    println!("{}", state.render()?);

    let mut agreements = 0;
    for ((q, params), value) in &obs {
        let qname = &alg.logic().func(*q).name;
        let level2_true = *value == alg.true_term();
        let elems: Vec<Elem> = params
            .iter()
            .map(|p| {
                let Term::App(c, _) = p else { unreachable!() };
                let cname = &alg.logic().func(*c).name;
                let sort = alg.logic().func(*c).range;
                let sort_name = alg.logic().sort_name(sort).to_string();
                name_to_elem(&sort_name, cname)
            })
            .collect();
        let level3_true = match qname.as_str() {
            "offered" => state.contains(offered_rel, &elems),
            "takes" => state.contains(takes_rel, &elems),
            _ => unreachable!(),
        };
        assert_eq!(level2_true, level3_true, "{qname}({params:?})");
        agreements += 1;
    }
    println!("level 2 (rewriting) and level 3 (execution) agree on all {agreements} observations. □");
    println!(
        "rewriting statistics: {} rule applications, {} cache hits",
        rw.stats().steps,
        rw.stats().cache_hits
    );
    Ok(())
}
