//! The bank domain: saturating-arithmetic balances, an absorbing `closed`
//! state, set-oriented procedures, and a functional (non-Boolean) query at
//! the representation level.
//!
//! Run with: `cargo run --example bank_accounts`

use eclectic::logic::{Elem, Formula, Term};
use eclectic::rpr::{exec, FuncQueryDef};
use eclectic::spec::domains::bank::{self, BankConfig};
use eclectic::spec::{verify, VerifyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = BankConfig::default();
    let spec = bank::bank(&config)?;
    let schema = &spec.representation;
    let sig = schema.signature().clone();

    // A functional query at level 3: balance(a) = the unique n with BAL(a,n).
    let a_var = sig.var_id("a")?;
    let n_var = sig.var_id("n")?;
    let bal_rel = sig.pred_id("BAL")?;
    let balance = FuncQueryDef::new(
        &sig,
        "balance",
        vec![a_var],
        n_var,
        Formula::Pred(bal_rel, vec![Term::Var(a_var), Term::Var(n_var)]),
    )?;

    let acc1 = Elem(0);
    let acc2 = Elem(1);
    let mut state = spec.empty_state();
    let show_balance = |state: &eclectic::rpr::DbState, who: &str, a: Elem| {
        match balance.eval(state, &[a]) {
            Ok(n) => println!("    balance({who}) = n{}", n.0),
            Err(_) => println!("    balance({who}) undefined (not open)"),
        }
    };

    println!("== a banking session ==");
    for (op, args, label) in [
        ("initiate", vec![], "reset the bank"),
        ("open_acct", vec![acc1], "open acc1 (balance starts at n0)"),
        ("deposit", vec![acc1], "deposit one unit"),
        ("deposit", vec![acc1], "deposit another"),
        ("open_acct", vec![acc2], "open acc2"),
        ("withdraw", vec![acc2], "withdraw at zero: saturates (no effect)"),
        ("close_acct", vec![acc1], "close acc1: rejected, balance not zero"),
        ("withdraw", vec![acc1], "withdraw"),
        ("withdraw", vec![acc1], "withdraw to zero"),
        ("close_acct", vec![acc1], "close acc1: accepted"),
        ("open_acct", vec![acc1], "reopen acc1: rejected, closed is absorbing"),
    ] {
        let before = state.clone();
        state = exec::call_deterministic(schema, &state, op, &args)?;
        println!(
            "  {op:<10} — {label} [{}]",
            if state == before { "no effect" } else { "applied" }
        );
    }
    show_balance(&state, "acc1", acc1);
    show_balance(&state, "acc2", acc2);
    println!("\nfinal state:\n{}", state.render()?);

    // Saturation at the top: deposits beyond the maximum are no-ops, so the
    // level-2 equations and level-3 procedures agree even at the boundary.
    println!("== saturation at n{} ==", config.amounts - 1);
    let mut st = exec::replay(
        schema,
        &spec.empty_state(),
        &[("initiate", vec![]), ("open_acct", vec![acc1])],
    )?;
    for i in 0..config.amounts + 2 {
        st = exec::call_deterministic(schema, &st, "deposit", &[acc1])?;
        let n = balance.eval(&st, &[acc1])?;
        println!("  after {} deposits: balance = n{}", i + 1, n.0);
    }

    // Full verification, including the absorbing-closure transition axiom.
    let mut vconfig = VerifyConfig::quick();
    vconfig.refine12.limits.max_depth = 10;
    let outcome = verify(&spec, &vconfig)?;
    println!("\n{}", outcome.report);
    assert!(outcome.is_correct());
    Ok(())
}
