//! The constructive methodology end-to-end on a *new* domain written from
//! scratch in this example: a conference paper-review system. The designer
//! supplies only the information-level axioms and the structured
//! descriptions; equations, schema, and all refinement proofs come out
//! mechanically.
//!
//! Run with: `cargo run --example derive_spec`

use std::sync::Arc;

use eclectic::algebraic::{
    equation_str, synthesize, AlgSignature, AlgSpec, Effect, InitialState, StructuredDescription,
};
use eclectic::logic::{parse_formula, Formula, Signature, Term, Theory};
use eclectic::refine::{InterpretationI, InterpretationK, QueryImpl};
use eclectic::rpr::QueryDef;
use eclectic::spec::methodology::derive_schema;
use eclectic::spec::{verify, CarrierSpec, TriLevelSpec, VerifyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Level 1: what the designer writes ------------------------------
    let mut isig = Signature::new();
    let reviewer = isig.add_sort("reviewer")?;
    let paper = isig.add_sort("paper")?;
    isig.add_db_predicate("submitted", &[paper])?;
    isig.add_db_predicate("assigned", &[reviewer, paper])?;
    isig.add_var("r", reviewer)?;
    isig.add_var("p", paper)?;

    let st = parse_formula(
        &mut isig,
        "~exists r:reviewer. exists p:paper. assigned(r, p) & ~submitted(p)",
    )?;
    let tr = parse_formula(
        &mut isig,
        "forall r:reviewer. forall p:paper. assigned(r, p) -> box (assigned(r, p) | ~submitted(p))",
    )?;
    let mut information = Theory::new(Arc::new(isig));
    information.add_axiom("static-assigned-submitted", st)?;
    // an assignment only disappears when the paper is withdrawn.
    information.add_axiom("transition-assignment-sticky", tr)?;

    // ---- structured descriptions ----------------------------------------
    let mut alg = AlgSignature::new()?;
    let r_sort = alg.add_param_sort("reviewer", &["rev1", "rev2"])?;
    let p_sort = alg.add_param_sort("paper", &["p1", "p2"])?;
    let q_submitted = alg.add_query("submitted", &[p_sort], None)?;
    let q_assigned = alg.add_query("assigned", &[r_sort, p_sort], None)?;
    let u_init = alg.add_update("initiate", &[], false)?;
    let u_submit = alg.add_update("submit", &[p_sort], true)?;
    let u_withdraw = alg.add_update("withdraw", &[p_sort], true)?;
    let u_assign = alg.add_update("assign", &[r_sort, p_sort], true)?;
    let rv = alg.add_param_var("r", r_sort)?;
    let pv = alg.add_param_var("p", p_sort)?;

    let initial = InitialState {
        update: u_init,
        defaults: vec![
            (q_submitted, alg.false_term()),
            (q_assigned, alg.false_term()),
        ],
    };
    let descs = vec![
        StructuredDescription {
            update: u_submit,
            params: vec![pv],
            comment: "paper p enters the system".into(),
            precondition: Formula::True,
            effects: vec![Effect {
                query: q_submitted,
                args: vec![Term::Var(pv)],
                value: alg.true_term(),
            }],
            side_effects: vec![],
        },
        StructuredDescription {
            update: u_withdraw,
            params: vec![pv],
            comment: "paper p is withdrawn; its assignments disappear too".into(),
            precondition: Formula::True,
            effects: vec![Effect {
                query: q_submitted,
                args: vec![Term::Var(pv)],
                value: alg.false_term(),
            }],
            // the side-effect clears every reviewer's assignment: one
            // effect per reviewer constant (finite carrier).
            side_effects: alg
                .param_names(r_sort)
                .into_iter()
                .map(|c| Effect {
                    query: q_assigned,
                    args: vec![Term::constant(c), Term::Var(pv)],
                    value: alg.false_term(),
                })
                .collect(),
        },
        StructuredDescription {
            update: u_assign,
            params: vec![rv, pv],
            comment: "reviewer r takes submitted paper p".into(),
            precondition: parse_formula(alg.logic_mut(), "submitted(p, U) = True")?,
            effects: vec![Effect {
                query: q_assigned,
                args: vec![Term::Var(rv), Term::Var(pv)],
                value: alg.true_term(),
            }],
            side_effects: vec![],
        },
    ];

    // ---- everything below is derived ------------------------------------
    let eqs = synthesize(&mut alg, &initial, &descs)?;
    println!("derived {} equations, e.g.:", eqs.len());
    let schema_input_alg = alg.clone();
    let functions = AlgSpec::new(alg, eqs)?;
    for eq in functions.equations().iter().take(5) {
        println!("  {}", equation_str(functions.signature(), eq));
    }

    let representation = derive_schema(
        &schema_input_alg,
        &initial,
        &descs,
        &[("submitted", "SUBMITTED"), ("assigned", "ASSIGNED")],
    )?;
    println!("\nderived schema:\n{}", eclectic::rpr::schema_str(&representation));

    // interpretations are the identity on names.
    let interp_i = InterpretationI::new(
        &information.signature,
        functions.signature(),
        &[("submitted", "submitted"), ("assigned", "assigned")],
    )?;
    let rsig = representation.signature().clone();
    let rv3 = rsig.var_id("r")?;
    let pv3 = rsig.var_id("p")?;
    let interp_k = InterpretationK::new(
        &functions,
        &representation,
        vec![
            (
                "submitted",
                QueryImpl::Bool(QueryDef::new(
                    &rsig,
                    "submitted",
                    vec![pv3],
                    Formula::Pred(rsig.pred_id("SUBMITTED")?, vec![Term::Var(pv3)]),
                )?),
            ),
            (
                "assigned",
                QueryImpl::Bool(QueryDef::new(
                    &rsig,
                    "assigned",
                    vec![rv3, pv3],
                    Formula::Pred(
                        rsig.pred_id("ASSIGNED")?,
                        vec![Term::Var(rv3), Term::Var(pv3)],
                    ),
                )?),
            ),
        ],
        &[
            ("initiate", "initiate"),
            ("submit", "submit"),
            ("withdraw", "withdraw"),
            ("assign", "assign"),
        ],
    )?;

    let carriers = CarrierSpec::new(&[
        ("reviewer", &["rev1", "rev2"]),
        ("paper", &["p1", "p2"]),
    ]);
    let info_domains = Arc::new(carriers.domains_for(&information.signature)?);
    let repr_domains = Arc::new(carriers.domains_for(representation.signature())?);
    let mut repr_template =
        eclectic::rpr::DbState::new(representation.signature().clone(), repr_domains.clone());
    // The derived withdraw procedure mentions the reviewer parameter names
    // as constants; bind them to the carrier elements of the same name.
    repr_template.bind_named_constants()?;

    let spec = TriLevelSpec {
        name: "conference-reviews".into(),
        information,
        info_domains,
        functions,
        representation,
        repr_domains,
        interp_i,
        interp_k,
        repr_template,
    };

    let mut config = VerifyConfig::quick();
    config.refine12.limits.max_depth = 7;
    let outcome = verify(&spec, &config)?;
    println!("{}", outcome.report);
    assert!(outcome.is_correct());
    println!("a brand-new domain, specified once, verified at all three levels. □");
    Ok(())
}
