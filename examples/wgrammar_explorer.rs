//! W-grammar explorer: prints the RPR schema grammar's two levels, builds
//! the derivation tree of the paper's schema, and demonstrates the
//! context-sensitive declared-before-use check that puts W-grammars "beyond
//! BNF" (§5.1.1).
//!
//! Run with: `cargo run --example wgrammar_explorer`

use std::sync::Arc;

use eclectic::logic::Signature;
use eclectic::rpr::wgrammar::{self, validate, Child, DerivTree};
use eclectic::rpr::{parse_schema, Schema, PAPER_COURSES_SCHEMA};

fn show_tree(t: &DerivTree, indent: usize, budget: &mut usize) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    println!("{:indent$}{}", "", t.notion.join(" "), indent = indent);
    for c in &t.children {
        match c {
            Child::Node(n) => show_tree(n, indent + 2, budget),
            Child::Leaf(tok) => {
                if *budget > 0 {
                    *budget -= 1;
                    println!("{:indent$}'{tok}'", "", indent = indent + 2);
                }
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = wgrammar::rpr_wgrammar();

    println!("== metagrammar (first level) ==");
    for m in ["ALPHA", "NUM", "DEC", "DECS"] {
        println!("  {m}: {} production(s)", g.meta.productions_of(m).len());
    }
    println!("== hyperrules (second level): {} ==", g.rules.len());
    for r in g.rules.iter().take(6) {
        let lhs: Vec<String> = r
            .lhs
            .iter()
            .map(|s| match s {
                wgrammar::HyperSym::Mark(m) => m.clone(),
                wgrammar::HyperSym::Meta(m) => format!("<{m}>"),
            })
            .collect();
        println!("  {:<16} : {}", r.name, lhs.join(" "));
    }
    println!("  …");

    // The paper's schema and its derivation.
    let mut sig = Signature::new();
    sig.add_sort("student")?;
    sig.add_sort("course")?;
    let (rels, procs) = parse_schema(&mut sig, PAPER_COURSES_SCHEMA)?;
    let schema = Schema::new(Arc::new(sig), rels, procs)?;

    let tree = wgrammar::check_schema(&schema)?;
    println!(
        "\nthe §5.2 schema derives from the grammar: {} nodes, yield {} tokens",
        tree.node_count(),
        tree.terminal_yield().len()
    );
    println!("derivation tree (truncated):");
    let mut budget = 40;
    show_tree(&tree, 2, &mut budget);
    println!("  …");

    // Context sensitivity: the same statement shape is accepted or rejected
    // purely by what the declaration list (carried in the metanotion DECS)
    // contains.
    println!("\n== context-sensitive declaredness ==");
    {
        let decl_text =
            "schema GOOD(course); proc touch(c: course) = insert GOOD(c) end-schema";
        let mut sig = Signature::new();
        sig.add_sort("student")?;
        sig.add_sort("course")?;
        let (rels, procs) = parse_schema(&mut sig, decl_text)?;
        let schema = Schema::new(Arc::new(sig), rels, procs)?;
        let ok = wgrammar::check_schema(&schema).is_ok();
        println!("  declared relation used       : {}", if ok { "accepted" } else { "rejected" });
        assert!(ok);
    }
    // An undeclared usage cannot even be written through the parser (it
    // resolves names), so tamper at the AST level to show the grammar alone
    // rejects it.
    {
        let mut sig = Signature::new();
        sig.add_sort("course")?;
        let course = sig.sort_id("course")?;
        let ghost = sig.add_db_predicate("GHOST", &[course])?;
        let (rels, mut procs) = parse_schema(
            &mut sig,
            "schema R(course); proc touch(c: course) = insert R(c) end-schema",
        )?;
        let c = sig.var_id("c")?;
        procs[0].body = eclectic::rpr::Stmt::Insert(ghost, vec![eclectic::logic::Term::Var(c)]);
        let schema = Schema::new(Arc::new(sig), rels, procs)?;
        let err = wgrammar::check_schema(&schema).unwrap_err();
        println!("  undeclared relation used     : rejected ({err})");
    }
    // Arity mismatch is caught by the non-linear NUM metanotion.
    {
        let decs = vec![("R".to_string(), 1usize)];
        let good = wgrammar_node("R", 1, &decs);
        let bad = wgrammar_node("R", 2, &decs);
        println!(
            "  declared arity used          : {}",
            if validate(&g, &good).is_ok() { "accepted" } else { "rejected" }
        );
        println!(
            "  wrong arity used             : {}",
            if validate(&g, &bad).is_ok() { "accepted" } else { "rejected" }
        );
        assert!(validate(&g, &good).is_ok());
        assert!(validate(&g, &bad).is_err());
    }
    Ok(())
}

/// Builds an `rname` witness chain by hand (mirrors the library's internal
/// construction) so arity mismatches can be demonstrated in isolation.
fn wgrammar_node(name: &str, arity: usize, decs: &[(String, usize)]) -> DerivTree {
    fn ident(name: &str) -> Vec<String> {
        name.chars().map(|c| c.to_string()).collect()
    }
    let mut notion: Vec<String> = vec!["rname".into()];
    notion.extend(ident(name));
    notion.push("has".into());
    notion.extend(std::iter::repeat_with(|| "i".to_string()).take(arity));
    notion.push("in".into());
    for (n, k) in decs {
        notion.push("rel".into());
        notion.extend(ident(n));
        notion.push("has".into());
        notion.extend(std::iter::repeat_with(|| "i".to_string()).take(*k));
    }
    let mut name_notion: Vec<String> = vec!["name".into()];
    name_notion.extend(ident(name));
    let name_node = DerivTree::node(
        name_notion,
        ident(name).into_iter().map(Child::Leaf).collect(),
    );
    DerivTree::node(notion, vec![Child::Node(name_node)])
}
