//! The fully mechanised pipeline on the library domain: one set of
//! structured descriptions (intended effects / preconditions / not-affected)
//! yields the level-2 equations *and* the level-3 schema, which are then
//! verified against the hand-written information-level axioms.
//!
//! Run with: `cargo run --example library_loans`

use eclectic::algebraic::equation_str;
use eclectic::spec::domains::library::{self, LibraryConfig};
use eclectic::spec::{verify, VerifyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = LibraryConfig::default();

    // Stage 1: the designer writes structured descriptions only.
    let mut alg = library::functions_signature(&config)?;
    let (_initial, descs) = library::structured_descriptions(&mut alg)?;
    println!("structured descriptions ({}):", descs.len());
    for d in &descs {
        println!(
            "  {:<12} /* {} */",
            alg.logic().func(d.update).name,
            d.comment
        );
    }

    // Stage 2: equations are synthesised (the §4.2 methodology).
    let functions = library::functions_level(&config)?;
    println!("\nsynthesised Q-equations ({}):", functions.equations().len());
    for eq in functions.equations().iter().take(8) {
        println!("  {}", equation_str(functions.signature(), eq));
    }
    println!("  … and {} more", functions.equations().len() - 8);

    // Stage 3: the schema is derived (the §5.2 constructive strategy) and
    // is grammatical under the RPR W-grammar.
    let (schema, _domains) = library::representation_level(&config)?;
    println!("\nderived schema:\n{}", eclectic::rpr::schema_str(&schema));
    let tree = eclectic::rpr::wgrammar::check_schema(&schema)?;
    println!(
        "W-grammar derivation: {} nodes, yield of {} tokens",
        tree.node_count(),
        tree.terminal_yield().len()
    );

    // Stage 4: the whole bundle verifies against the hand-written axioms.
    let spec = library::library(&config)?;
    let mut vconfig = VerifyConfig::quick();
    vconfig.refine12.limits.max_depth = 8;
    let outcome = verify(&spec, &vconfig)?;
    println!("\n{}", outcome.report);
    assert!(outcome.is_correct());

    // Stage 5: drive a small scenario.
    let mut state = spec.empty_state();
    let schema = &spec.representation;
    let m = |name: &str| {
        let s = schema.signature().sort_id("member").unwrap();
        spec.repr_domains.elem_by_name(s, name).unwrap()
    };
    let b = |name: &str| {
        let s = schema.signature().sort_id("book").unwrap();
        spec.repr_domains.elem_by_name(s, name).unwrap()
    };
    for (op, args) in [
        ("initiate", vec![]),
        ("register", vec![m("mia")]),
        ("acquire", vec![b("tao")]),
        ("checkout", vec![m("mia"), b("tao")]),
        ("deregister", vec![m("mia")]), // rejected: mia holds a loan
        ("return_book", vec![m("mia"), b("tao")]),
        ("deregister", vec![m("mia")]), // accepted now
    ] {
        let before = state.clone();
        state = eclectic::rpr::exec::call_deterministic(schema, &state, op, &args)?;
        println!(
            "{op:<12} {}",
            if state == before { "no effect" } else { "applied" }
        );
    }
    println!("\nfinal state:\n{}", state.render()?);
    Ok(())
}
