//! `eclectic` — command-line front end for the tri-level specification
//! framework.
//!
//! ```text
//! eclectic axioms    <domain>                    print the T1 axioms
//! eclectic equations <domain> [--style paper|synth]
//! eclectic schema    <domain>                    print the T3 schema
//! eclectic verify    <domain> [--depth N] [--deadline-ms N] [--max-nodes N]
//! eclectic trace     <domain> op[:a,b] …         replay operations
//! ```
//!
//! Domains: `courses`, `library`, `bank`.

use std::process::ExitCode;

use eclectic::algebraic::equation_str;
use eclectic::logic::{formula_display, Elem};
use eclectic::rpr::{exec, schema_str};
use eclectic::spec::domains::{bank, courses, library};
use eclectic::spec::{verify, TriLevelSpec, VerifyConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: eclectic <axioms|equations|schema|verify|trace> <courses|library|bank> [args]\n\
         \n\
         eclectic axioms courses\n\
         eclectic equations courses --style synth\n\
         eclectic schema bank\n\
         eclectic verify library --depth 8 --deadline-ms 5000 --max-nodes 100000\n\
         (env fallbacks: ECLECTIC_DEADLINE_MS, ECLECTIC_MAX_NODES)\n\
         eclectic trace courses initiate offer:db enroll:ana,db cancel:db"
    );
    ExitCode::FAILURE
}

fn build(domain: &str, style: &str) -> Result<TriLevelSpec, String> {
    match domain {
        "courses" => {
            let style = match style {
                "synth" | "synthesized" => courses::EquationStyle::Synthesized,
                _ => courses::EquationStyle::Paper,
            };
            courses::courses(&courses::CoursesConfig {
                style,
                ..courses::CoursesConfig::default()
            })
            .map_err(|e| e.to_string())
        }
        "library" => library::library(&library::LibraryConfig::default()).map_err(|e| e.to_string()),
        "bank" => bank::bank(&bank::BankConfig::default()).map_err(|e| e.to_string()),
        other => Err(format!("unknown domain `{other}`")),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// A numeric limit from a command-line flag, falling back to an environment
/// variable. A value that fails to parse is diagnosed and treated as unset.
fn limit_value(args: &[String], flag: &str, env: &str) -> Option<u64> {
    let (source, raw) = match flag_value(args, flag) {
        Some(v) => (flag.to_string(), v),
        None => (env.to_string(), std::env::var(env).ok()?),
    };
    match raw.parse() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("warning: ignoring unparseable {source}={raw:?}");
            None
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(domain)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let style = flag_value(&args, "--style").unwrap_or_else(|| "paper".into());
    let spec = match build(domain, &style) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "axioms" => {
            for ax in &spec.information.axioms {
                println!(
                    "{:<32} [{}]  {}",
                    ax.name,
                    match ax.kind() {
                        eclectic::logic::ConstraintKind::Static => "static",
                        eclectic::logic::ConstraintKind::Transition => "transition",
                    },
                    formula_display(&spec.information.signature, &ax.formula)
                );
            }
            ExitCode::SUCCESS
        }
        "equations" => {
            for eq in spec.functions.equations() {
                println!("{}", equation_str(spec.functions.signature(), eq));
            }
            ExitCode::SUCCESS
        }
        "schema" => {
            print!("{}", schema_str(&spec.representation));
            ExitCode::SUCCESS
        }
        "verify" => {
            let mut config = VerifyConfig::quick();
            config.refine12.limits.max_depth = flag_value(&args, "--depth")
                .and_then(|d| d.parse().ok())
                .unwrap_or(8);
            config.deadline_ms = limit_value(&args, "--deadline-ms", "ECLECTIC_DEADLINE_MS");
            config.max_nodes = limit_value(&args, "--max-nodes", "ECLECTIC_MAX_NODES")
                .map(|n| usize::try_from(n).unwrap_or(usize::MAX));
            config.print_stages = true;
            match verify(&spec, &config) {
                Ok(outcome) => {
                    println!(
                        "W-grammar syntax check: {}",
                        if outcome.grammar_ok { "ok" } else { "FAILED" }
                    );
                    println!("{}", outcome.report);
                    match &outcome.dynamic.skipped {
                        Some(reason) => println!("dynamic (PDL) obligations: skipped ({reason})"),
                        None => println!(
                            "dynamic (PDL) obligations: {} ({} applications over {} states, {} failures, {} denotations computed / {} cache hits)",
                            if outcome.dynamic.is_correct() { "ok" } else { "FAILED" },
                            outcome.dynamic.checked,
                            outcome.dynamic.universe_states,
                            outcome.dynamic.failures.len(),
                            outcome.dynamic.cache_stats.computed,
                            outcome.dynamic.cache_stats.hits,
                        ),
                    }
                    println!(
                        "cross-level testing: {} comparisons, {}",
                        outcome.cross_stats.comparisons,
                        if outcome.cross_mismatch.is_none() {
                            "all agree"
                        } else {
                            "MISMATCH"
                        }
                    );
                    if let Some(e) = outcome.exhausted() {
                        println!("budget exhausted: {e} (partial report)");
                    }
                    if outcome.is_correct() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "trace" => {
            let schema = &spec.representation;
            let mut state = spec.empty_state();
            for call in &args[2..] {
                if call.starts_with("--") {
                    break;
                }
                let (name, argtext) = match call.split_once(':') {
                    Some((n, a)) => (n, a),
                    None => (call.as_str(), ""),
                };
                let Some(proc) = schema.proc(name) else {
                    eprintln!("error: unknown procedure `{name}`");
                    return ExitCode::FAILURE;
                };
                let names: Vec<&str> =
                    argtext.split(',').filter(|s| !s.is_empty()).collect();
                if names.len() != proc.params.len() {
                    eprintln!(
                        "error: `{name}` takes {} argument(s), got {}",
                        proc.params.len(),
                        names.len()
                    );
                    return ExitCode::FAILURE;
                }
                let mut elems: Vec<Elem> = Vec::new();
                for (&p, n) in proc.params.iter().zip(&names) {
                    let sort = schema.signature().var(p).sort;
                    match spec.repr_domains.elem_by_name(sort, n) {
                        Some(e) => elems.push(e),
                        None => {
                            eprintln!(
                                "error: `{n}` is not a {}",
                                schema.signature().sort_name(sort)
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                }
                let before = state.clone();
                state = match exec::call_deterministic(schema, &state, name, &elems) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                println!(
                    "{call:<28} {}",
                    if state == before {
                        "no effect (precondition failed)"
                    } else {
                        "applied"
                    }
                );
            }
            println!("\n{}", state.render().unwrap_or_default());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
