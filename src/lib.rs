//! # eclectic
//!
//! A complete Rust implementation of Casanova, Veloso & Furtado, *"Formal
//! Data Base Specification — An Eclectic Perspective"* (PODS 1984): formal
//! database specification across logical, algebraic, programming-language,
//! grammatical and denotational formalisms, with machine-checked refinement
//! between the three levels.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`logic`] — many-sorted first-order logic with finite structures;
//! - [`temporal`] — the modal extension and Kripke universes (§3);
//! - [`algebraic`] — algebraic specifications and conditional term
//!   rewriting (§4);
//! - [`rpr`] — Regular Programs over Relations, W-grammars, denotational
//!   semantics and PDL (§5);
//! - [`refine`] — the interpretations `I`/`K` and every proof obligation
//!   (§4.3–4.4, §5.3–5.4);
//! - [`spec`] — the tri-level framework, the constructive methodology and
//!   three worked domains (§2, §6).
//!
//! # Quickstart
//!
//! ```
//! use eclectic::spec::domains::{courses, CoursesConfig};
//! use eclectic::spec::{verify, VerifyConfig};
//!
//! let spec = courses(&CoursesConfig::default())?;
//! let outcome = verify(&spec, &VerifyConfig::quick())?;
//! assert!(outcome.is_correct());
//! # Ok::<(), eclectic::spec::SpecError>(())
//! ```

pub use eclectic_algebraic as algebraic;
pub use eclectic_logic as logic;
pub use eclectic_refine as refine;
pub use eclectic_rpr as rpr;
pub use eclectic_spec as spec;
pub use eclectic_temporal as temporal;
